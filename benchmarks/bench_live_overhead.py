"""Cost of the live-observability tier on a campaign worker's hot path.

A campaign worker with heartbeats armed pays, per cell: two throttled
``beat`` calls (claim + complete -- between actual writes each is one
monotonic-clock read and a compare), at most one atomic heartbeat file
write (tmp + rename; the 1s throttle caps the write rate for sub-second
cells, and for slower cells one write disappears into >= 1s of real
work), and -- when ``REPRO_LEDGER_DIR`` is armed -- one ``O_APPEND``
run-ledger line.  Disarmed (``REPRO_HEARTBEAT=0``, no ledger dir) costs
are a couple of env/attribute checks and are not what this gate bounds.

As with the other ``*_overhead`` benches the estimate is compositional --
worst-case per-cell live cost over the measured cost of a deliberately
small reference cell -- because an end-to-end A/B of a multi-process
campaign is too noisy to gate at single percents.  The heartbeat *write*
term is modelled at the throttle's actual cap of one write per second of
work (``write_ns / 1e9``): for sub-second cells the 1s throttle, not the
per-cell verbs, bounds the write rate, and for slower cells one write
per cell is even less.  The committed baseline gates the estimate at
<= 3% (``live_overhead_pct_max`` in ``perf_baseline.json``).
"""

import time

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.obs.ledger import RunLedger
from repro.obs.live import HeartbeatWriter

#: Throttled (non-writing) ``beat`` entries per cell: one from ``claim``
#: before the run, one from ``complete`` after, plus the per-pass keepalive
#: -- rounded up to be generous.
BEATS_PER_CELL = 4

#: Run-ledger lines per cell when armed (one per completed scenario).
APPENDS_PER_CELL = 1


def _best_s(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_live_overhead(benchmark, perf_record, tmp_path):
    """Heartbeat + ledger cost as a fraction of real per-cell work."""
    # -- throttled beat: the no-write fast path ----------------------------
    n = 100_000
    hb = HeartbeatWriter(tmp_path / "hb", "bench", min_interval_s=3600.0)

    def beat_loop():
        for _ in range(n):
            hb.beat()

    beat_ns = _best_s(beat_loop) / n * 1e9

    # -- forced write: payload build + tmp + atomic rename -----------------
    n_writes = 200

    def write_loop():
        for _ in range(n_writes):
            hb.beat(force=True)

    write_ns = _best_s(write_loop, repeats=3) / n_writes * 1e9

    # -- ledger append: one O_APPEND line ----------------------------------
    ledger = RunLedger(tmp_path / "ledger")
    n_appends = 200

    def append_loop():
        for _ in range(n_appends):
            ledger.append(kind="bench", key="probe",
                          metrics={"throughput_kBps": 1.0, "duration_s": 2.0},
                          t=0.0, host="h", salt="s" * 16)

    append_ns = _best_s(append_loop, repeats=3) / n_appends * 1e9

    # -- reference cell: small even by test-suite standards (200 frames;
    # real campaign cells run thousands), so the ratio is pessimistic ------
    cfg = ScenarioConfig(workload="greedy", n_frames=200, time_cap=60.0)

    def cell():
        return run_scenario(cfg).detach()

    cell_ns = _best_s(cell) * 1e9
    per_cell_live_ns = (BEATS_PER_CELL * beat_ns
                        + APPENDS_PER_CELL * append_ns)
    # Writes are throttle-capped at one per second of work, independent of
    # how many cells fit in that second.
    live_overhead_pct = 100.0 * (per_cell_live_ns / cell_ns
                                 + write_ns / 1e9)

    perf_record("live_overhead",
                beat_ns=round(beat_ns, 1),
                write_ns=round(write_ns, 1),
                append_ns=round(append_ns, 1),
                cell_ns=round(cell_ns, 1),
                live_overhead_pct=round(live_overhead_pct, 4))
    assert live_overhead_pct < 3.0, (
        f"live-tier overhead {live_overhead_pct:.2f}% of per-cell work "
        "exceeds the 3% budget")
    assert benchmark(cell).summary["completed"] == 1.0


def bench_live_disarmed_noop(benchmark, perf_record, monkeypatch, tmp_path):
    """The disarmed paths must stay negligible: ``REPRO_HEARTBEAT=0``
    makes every writer construction a no-op and an unset
    ``REPRO_LEDGER_DIR`` makes ``record_run`` one env lookup."""
    from repro.obs.ledger import record_run
    from repro.obs.live import heartbeat_enabled
    monkeypatch.setenv("REPRO_HEARTBEAT", "0")
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)

    n = 100_000

    def disarmed_loop():
        for _ in range(n):
            heartbeat_enabled()
            record_run("bench", "noop", {"x": 1.0})

    disarmed_ns = _best_s(disarmed_loop) / n * 1e9
    perf_record("live_overhead", disarmed_ns=round(disarmed_ns, 1))
    assert disarmed_ns < 5_000, (
        f"disarmed live-tier check costs {disarmed_ns:.0f}ns; expected "
        "sub-microsecond env lookups")
    assert benchmark(heartbeat_enabled) is False
