"""Micro-benchmarks of the substrate itself (engine event rate, timer-churn
rate, transport packet rate, parallel batch throughput) -- the knobs that
bound how large an experiment the harness can simulate per wall-clock
second.

Each bench also records a machine-readable rate into
``benchmarks/results/bench_perf.json`` (via the ``perf_record`` fixture) so
``check_regression.py`` can compare runs against the committed baseline and
future PRs inherit a performance trajectory.
"""

import os
import time

import pytest

from repro.experiments.common import ScenarioConfig
from repro.middleware.receiver import DeliveryLog
from repro.obs.bus import NULL_BUS, TraceBus
from repro.obs.sinks import JsonlTraceSink, RingBufferSink
from repro.runner import run_batch
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection


def _best_rate(fn, work_units: int, repeats: int = 3) -> float:
    """Best-of-N units/second for ``fn`` (min wall time wins: least noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return work_units / best


def bench_engine_event_rate(benchmark, perf_record):
    """Schedule+fire cost of the event loop (100k events per round)."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    perf_record("engine_event_rate", events_per_s=_best_rate(run, 100_000))
    assert benchmark(run) == 100_000


def bench_engine_cancel_churn(benchmark, perf_record):
    """Retransmission-timer pattern: schedule a timer, cancel it, repeat.

    Cancellations dominate firings in every congestion-controlled run; the
    lazy-deletion heap must absorb 100k of them without growing, which is
    what keeps long runs O(live events) instead of O(history).
    """

    def run():
        sim = Simulator()
        fired = [0]

        def noop():
            fired[0] += 1

        for i in range(100_000):
            ev = sim.schedule(10.0, noop)
            sim.schedule(0.0, noop)
            ev.cancel()
            sim.run(max_events=1)
        peak = len(sim._heap)
        sim.run()
        assert fired[0] == 100_000
        return peak

    peak = run()
    assert peak < 4096, f"dead timers accumulated: heap peaked at {peak}"
    perf_record("engine_cancel_churn", timers_per_s=_best_rate(run, 100_000))
    assert benchmark(run) < 4096


def bench_engine_burst_rate(benchmark, perf_record):
    """Throughput of the coalesced burst path (repro.sim.batch).

    A 50k-packet back-to-back burst enters a :class:`BatchLink` via the
    bulk ``send_burst`` API and drains into a terminal ``receive_burst``
    sink, so the whole run costs O(1) engine events instead of ~3 per
    packet.  The recorded rate counts 3 per-packet-equivalent events per
    packet (serialization completion + propagation arrival + their heap
    traffic), making it directly comparable to ``engine_event_rate``; the
    ISSUE acceptance bar is >= 10x the per-packet rate, asserted against
    a same-host, same-run, same-workload measurement: the identical blast
    through the plain per-packet :class:`Link`.  Same host and same work
    on both sides, so the ratio is host-speed independent and measures
    exactly what the tier replaces.
    """
    from repro.sim.batch import BatchLink, load_numpy
    from repro.sim.link import Link
    from repro.sim.packet import Packet

    class TerminalSink:
        """Terminal-sink contract twin of UdpSink: schedules nothing,
        reads nothing but its arguments."""
        __slots__ = ("packets_received", "bytes_received")

        def __init__(self):
            self.packets_received = 0
            self.bytes_received = 0

        def receive(self, pkt):
            self.packets_received += 1
            self.bytes_received += pkt.size

        def receive_burst(self, pkts, times):
            self.packets_received += len(pkts)
            self.bytes_received += sum(p.size for p in pkts)

    n_pkts = 50_000
    pkts = [Packet(flow_id=1, seq=i, size=1400) for i in range(n_pkts)]

    def run_burst(accel):
        sim = Simulator()
        sink = TerminalSink()
        link = BatchLink(sim, 1e9, 0.001, sink, accel=accel,
                         queue_bytes=10**9)
        sim.at(0.0, link.send_burst, pkts)
        sim.run()
        assert sink.packets_received == n_pkts
        return sink.packets_received

    def run_per_packet():
        # Same-host, same-workload reference: the identical blast through
        # the plain per-packet Link (the path the burst tier replaces).
        sim = Simulator()
        sink = TerminalSink()
        link = Link(sim, 1e9, 0.001, sink, queue_bytes=10**9)

        def feed():
            send = link.send
            for p in pkts:
                send(p)

        sim.at(0.0, feed)
        sim.run()
        assert sink.packets_received == n_pkts
        return sink.packets_received

    pure_rate = _best_rate(lambda: run_burst(""), 3 * n_pkts)
    numpy_rate = (pure_rate if load_numpy() is None
                  else _best_rate(lambda: run_burst("numpy"), 3 * n_pkts))
    per_packet_rate = _best_rate(run_per_packet, 3 * n_pkts)
    speedup = max(pure_rate, numpy_rate) / per_packet_rate

    perf_record("engine_burst_rate",
                events_per_s=pure_rate,
                numpy_events_per_s=numpy_rate,
                per_packet_events_per_s=per_packet_rate,
                speedup_vs_per_packet=round(speedup, 2),
                numpy_available=load_numpy() is not None)
    assert speedup >= 10.0, (
        f"burst path is only {speedup:.1f}x the per-packet event rate "
        "(acceptance bar: 10x)")
    assert benchmark(lambda: run_burst("")) == n_pkts


def bench_rudp_transfer_rate(benchmark, perf_record):
    """Full-stack packet cost: a 5k-packet RUDP transfer on the dumbbell."""

    def run():
        sim = Simulator()
        net = Dumbbell(sim)
        snd, rcv = net.add_flow_hosts("m")
        log = DeliveryLog()
        conn = RudpConnection(sim, snd, rcv, on_deliver=log.on_deliver)
        for i in range(5000):
            conn.submit(1400, frame_id=i)
        conn.finish()
        sim.run(until=120.0)
        assert conn.completed
        return len(log)

    perf_record("rudp_transfer", packets_per_s=_best_rate(run, 5000))
    assert benchmark(run) == 5000


def bench_parallel_batch_throughput(benchmark, perf_record):
    """Serial vs process-pool wall clock for a batch of independent runs.

    Records both timings plus the speedup; on a single-core host the
    parallel path only pays pool overhead, so the bench *skips* there and
    annotates the JSON (``"skipped": true``), which ``check_regression.py``
    honours by ignoring the bench entirely.
    """
    if (os.cpu_count() or 1) == 1:
        perf_record("parallel_batch", skipped=True, cpu_count=1)
        pytest.skip("single-core host: pool speedup is unmeasurable")
    cfgs = [ScenarioConfig(workload="greedy", n_frames=1500, seed=s,
                           cbr_bps=10e6, time_cap=120.0)
            for s in range(1, 5)]
    jobs = min(4, os.cpu_count() or 1)

    t0 = time.perf_counter()
    serial = run_batch(cfgs, jobs=1, cache=False)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_batch(cfgs, jobs=jobs, cache=False)
    parallel_s = time.perf_counter() - t0

    for a, b in zip(serial, parallel):
        assert a.summary == b.summary, "worker count changed results"

    perf_record("parallel_batch", serial_s=round(serial_s, 3),
                parallel_s=round(parallel_s, 3), jobs=jobs,
                speedup=round(serial_s / max(parallel_s, 1e-9), 3),
                cpu_count=os.cpu_count())
    benchmark.pedantic(lambda: run_batch(cfgs, jobs=jobs, cache=False),
                       rounds=1, iterations=1)


#: Trace hook points a data packet crosses on the instrumented fast path
#: (transmit, ack, queue-peak checks on both dumbbell hops, plus its share
#: of retransmit/period/callback guards).  Deliberately generous: the
#: disabled-overhead estimate below multiplies by it.
HOOKS_PER_PACKET = 8


def bench_trace_overhead(benchmark, perf_record, tmp_path):
    """Cost of the observability layer, three ways.

    * ``emit_ring_events_per_s`` / ``emit_jsonl_events_per_s`` -- enabled
      ``TraceBus.emit`` throughput into the in-memory ring buffer vs the
      streaming JSONL writer.
    * ``disabled_overhead_pct`` -- estimated whole-run overhead of the
      *disabled* path, i.e. what every untraced experiment pays for the
      ``if tr.enabled`` guards.  Measured compositionally (per-guard cost x
      generous hooks-per-packet, against the measured per-packet cost of a
      full RUDP transfer) because the guards cannot be compiled out at
      runtime; the committed baseline gates it at <= 3%.
    """
    # -- per-guard cost: guarded loop minus the identical plain loop -------
    n = 200_000
    bus = NULL_BUS

    def guarded_loop():
        tr = bus
        acc = 0
        for _ in range(n):
            if tr.enabled:
                acc += 1
        return acc

    def plain_loop():
        acc = 0
        for _ in range(n):
            acc += 1
        return acc

    def best_s(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    guard_ns = max(best_s(guarded_loop) - best_s(plain_loop), 0.0) / n * 1e9

    # -- per-packet cost of the instrumented full stack (untraced) ---------
    n_pkts = 5000

    def transfer():
        sim = Simulator()
        net = Dumbbell(sim)
        snd, rcv = net.add_flow_hosts("t")
        log = DeliveryLog()
        conn = RudpConnection(sim, snd, rcv, on_deliver=log.on_deliver)
        for i in range(n_pkts):
            conn.submit(1400, frame_id=i)
        conn.finish()
        sim.run(until=120.0)
        assert conn.completed

    packet_ns = best_s(transfer) / n_pkts * 1e9
    disabled_overhead_pct = 100.0 * guard_ns * HOOKS_PER_PACKET / packet_ns

    # -- enabled emit throughput, per sink ---------------------------------
    n_emit = 50_000

    def emit_ring():
        sim = Simulator()
        tr = TraceBus(sim, sinks=[RingBufferSink(capacity=1024)])
        emit = tr.emit
        for i in range(n_emit):
            emit("transport", "PACKET_SEND", flow=1, pkt=i, size=1400)
        return tr.events_emitted

    def emit_jsonl():
        sim = Simulator()
        with JsonlTraceSink(tmp_path / "bench_trace.jsonl") as sink:
            tr = TraceBus(sim, sinks=[sink])
            emit = tr.emit
            for i in range(n_emit):
                emit("transport", "PACKET_SEND", flow=1, pkt=i, size=1400)
        return tr.events_emitted

    perf_record("trace_overhead",
                guard_ns=round(guard_ns, 3),
                packet_ns=round(packet_ns, 1),
                disabled_overhead_pct=round(disabled_overhead_pct, 4),
                emit_ring_events_per_s=_best_rate(emit_ring, n_emit),
                emit_jsonl_events_per_s=_best_rate(emit_jsonl, n_emit))
    assert disabled_overhead_pct < 3.0, (
        f"disabled-tracing guard overhead {disabled_overhead_pct:.2f}% "
        "exceeds the 3% budget")
    assert benchmark(emit_ring) == n_emit


@pytest.mark.perf_regression
def bench_perf_regression_gate():
    """Opt-in gate (``pytest -m perf_regression benchmarks/bench_micro.py``):
    fails when bench_perf.json regresses >25% against the committed
    baseline.  Run the other micro-benches first to produce fresh numbers.
    ``REPRO_PERF_THRESHOLD`` widens/narrows the tolerance (a fraction,
    e.g. ``0.4``) so slower or noisier CI hosts can gate without flaking.
    """
    import check_regression
    args = []
    threshold = os.environ.get("REPRO_PERF_THRESHOLD")
    if threshold:
        args = ["--threshold", threshold]
    rc = check_regression.main(args)
    assert rc == 0, "performance regression against committed baseline"
