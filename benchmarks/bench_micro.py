"""Micro-benchmarks of the substrate itself (engine event rate, transport
packet rate) -- the knobs that bound how large an experiment the harness
can simulate per wall-clock second."""

from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection


def bench_engine_event_rate(benchmark):
    """Schedule+fire cost of the event loop (100k events per round)."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000


def bench_rudp_transfer_rate(benchmark):
    """Full-stack packet cost: a 5k-packet RUDP transfer on the dumbbell."""

    def run():
        sim = Simulator()
        net = Dumbbell(sim)
        snd, rcv = net.add_flow_hosts("m")
        log = DeliveryLog()
        conn = RudpConnection(sim, snd, rcv, on_deliver=log.on_deliver)
        for i in range(5000):
            conn.submit(1400, frame_id=i)
        conn.finish()
        sim.run(until=120.0)
        assert conn.completed
        return len(log)

    assert benchmark(run) == 5000
