"""Cost of the FEC repair tier on the *disarmed* path.

A scenario without a :class:`~repro.transport.fec.FecConfig` must not pay
for the repair machinery it is not using.  The machinery cannot be
compiled out, though: every datagram the sender pumps passes the falsy
``pkt.deadline`` check and the ``fec_tx is None`` enrollment guard, every
packet the receiver accepts passes the ``pkt.fec is None`` routing check
and the ``fec is None`` progress-recheck guard, and every
:class:`~repro.sim.packet.Packet` construction/copy initialises the two
extra ``fec``/``deadline`` slots.

As with ``bench_fault_overhead`` the overhead is measured compositionally
-- per-guard cost x a generous guards-per-packet count, against the
measured per-packet cost of a full RUDP transfer -- because the guards
are interleaved with real work and cannot be toggled at runtime.  The
committed baseline gates the estimate at <= 3%
(``fec_overhead_pct_max`` in ``perf_baseline.json``).
"""

import time

from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection

#: Disarmed guard points a data packet crosses end to end: the deadline
#: check and the ``fec_tx is None`` enrollment guard in the sender's
#: pump, the ``pkt.fec is None`` routing check and the ``fec is None``
#: progress guard on the receive path, plus the two extra slot
#: initialisations per Packet construction and per retransmit copy.
#: Deliberately generous -- the estimate below multiplies by it.
GUARDS_PER_PACKET = 8


def _best_s(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_fec_overhead(benchmark, perf_record):
    """Disarmed-path FEC guard cost as a fraction of real per-packet
    work."""
    # -- per-guard cost: slot read + None/falsy check -----------------------
    n = 200_000

    class _PacketShape:
        __slots__ = ("fec", "deadline")

        def __init__(self):
            self.fec = None
            self.deadline = 0.0

    pkt = _PacketShape()

    def guarded_loop():
        acc = 0
        for _ in range(n):
            if pkt.fec is None and not pkt.deadline:
                acc += 1
        return acc

    def plain_loop():
        acc = 0
        for _ in range(n):
            acc += 1
        return acc

    # guarded_loop performs two checks per iteration; normalise to one.
    guard_ns = max(_best_s(guarded_loop) - _best_s(plain_loop), 0.0) \
        / (2 * n) * 1e9

    # -- per-packet cost of the full stack (FEC disarmed) -------------------
    n_pkts = 5000

    def transfer():
        sim = Simulator()
        net = Dumbbell(sim)
        snd, rcv = net.add_flow_hosts("f")
        log = DeliveryLog()
        conn = RudpConnection(sim, snd, rcv, on_deliver=log.on_deliver)
        assert conn.fec is None
        for i in range(n_pkts):
            conn.submit(1400, frame_id=i)
        conn.finish()
        sim.run(until=120.0)
        assert conn.completed
        return len(log)

    packet_ns = _best_s(transfer) / n_pkts * 1e9
    fec_overhead_pct = 100.0 * guard_ns * GUARDS_PER_PACKET / packet_ns

    perf_record("fec_overhead",
                guard_ns=round(guard_ns, 3),
                packet_ns=round(packet_ns, 1),
                fec_overhead_pct=round(fec_overhead_pct, 4))
    assert fec_overhead_pct < 3.0, (
        f"disarmed-path FEC guard overhead {fec_overhead_pct:.2f}% exceeds "
        "the 3% budget")
    assert benchmark(transfer) == n_pkts
