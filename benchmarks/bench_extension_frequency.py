"""Extension bench: frequency adaptation (paper section 2.3.2, described
but never evaluated).

A frequency adaptation sends the same bytes per message but less often;
the paper's coordination rule is that IQ-RUDP performs *no* window change
for it ("the reduction of application frame frequency has the same
effect").  This bench evaluates that rule: frequency adaptation under
congestion, on IQ-RUDP vs plain RUDP, plus the invariant that the
coordinator logged the adaptation without rescaling the window.
"""

from conftest import cached

from repro.analysis.tables import render_table
from repro.experiments.common import ScenarioConfig, run_scenario
from repro.middleware.adaptation import FrequencyAdaptation


def _cfg(transport: str) -> ScenarioConfig:
    return ScenarioConfig(
        transport=transport, workload="fixed_clocked", n_frames=4000,
        frame_rate=200, base_frame_size=1400,
        adaptation=lambda: FrequencyAdaptation(upper=0.05, lower=0.005),
        cbr_bps=17e6, metric_period=0.5, seed=2, time_cap=600.0)


def bench_extension_frequency_adaptation(benchmark, report):
    def run():
        return {
            "IQ-RUDP": run_scenario(_cfg("iq")),
            "RUDP": run_scenario(_cfg("rudp")),
        }

    results = benchmark.pedantic(lambda: cached("ext_freq", run),
                                 rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        s = r.summary
        rows.append((name, round(s["throughput_kBps"], 1),
                     round(s["duration_s"], 1), round(s["delay_ms"], 2),
                     round(s["jitter_ms"], 2),
                     round(r.strategy.freq_scale, 2)))
    report("extension_frequency", render_table(
        ("", "Thr KB/s", "Dur(s)", "Delay(ms)", "Jitter", "final freq x"),
        rows, title="Extension: frequency adaptation under 17 Mb cross "
                    "traffic (section 2.3.2, unevaluated in the paper)"))

    iq = results["IQ-RUDP"]
    # The adaptation ran...
    assert iq.strategy.upper_events > 0
    # ...the coordinator saw it as a frequency adaptation...
    assert iq.conn.coordinator.freq_adaptations > 0
    # ...and, per the paper's rule, performed no window rescale for it.
    assert iq.conn.coordinator.window_rescales == 0
