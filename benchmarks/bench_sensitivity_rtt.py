"""Sensitivity bench: coordination value vs path RTT.

Paper section 2.3.1 argues the transport's instant re-adaptation matters
most when application adaptation is slow relative to the network -- "we
expect to see better performance in IQ-RUDP with its immediate change of
the sending window, especially when the round-trip time is relatively
large" (section 3.5).  This bench sweeps the path RTT under the
over-reaction scenario and reports the IQ-vs-RUDP duration gap per RTT.
"""

from conftest import cached

from repro.analysis.tables import render_table
from repro.experiments.common import run_scenario
from repro.experiments.overreaction import (_changing_net_config,
                                            overreaction_metrics)

RTTS = (0.030, 0.120, 0.250)


def bench_sensitivity_rtt(benchmark, report):
    def run():
        out = {}
        for rtt in RTTS:
            base = _changing_net_config(16e6, 8000, 2).replace(rtt_s=rtt)
            out[rtt] = {
                "iq": run_scenario(base.replace(transport="iq")),
                "rudp": run_scenario(base.replace(transport="rudp")),
            }
        return out

    results = benchmark.pedantic(lambda: cached("sens_rtt", run),
                                 rounds=1, iterations=1)
    rows = []
    for rtt, pair in results.items():
        iq = overreaction_metrics(pair["iq"])
        ru = overreaction_metrics(pair["rudp"])
        gain = 100.0 * (1 - iq[1] / max(ru[1], 1e-9))
        rows.append((f"{rtt*1e3:.0f} ms", round(iq[1], 1), round(ru[1], 1),
                     f"{gain:+.0f}%"))
    report("sensitivity_rtt", render_table(
        ("path RTT", "IQ duration(s)", "RUDP duration(s)",
         "IQ gain"), rows,
        title="Sensitivity: over-reaction coordination win vs path RTT "
              "(16 Mb cross traffic)"))

    # Both schemes must complete everywhere; the coordinated transport
    # must not lose badly at any RTT.
    for rtt, pair in results.items():
        assert pair["iq"].completed and pair["rudp"].completed
        iq_d = overreaction_metrics(pair["iq"])[1]
        ru_d = overreaction_metrics(pair["rudp"])[1]
        assert iq_d < ru_d * 1.3, f"IQ regressed at RTT {rtt}"
