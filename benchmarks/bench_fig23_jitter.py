"""Figures 2/3: per-packet delay jitter under the conflict scenario, with
the cross traffic starting mid-run ("the sharp increase around the 500th
packet")."""

import numpy as np
from conftest import cached

from repro.analysis.timeseries import ascii_chart, bin_series
from repro.experiments.conflict import run_figure23


def bench_fig23_delay_jitter(benchmark, report):
    results = benchmark.pedantic(
        lambda: cached("fig23", run_figure23), rounds=1, iterations=1)
    series = {}
    onset = {}
    for name, res in results.items():
        jit = res.log.jitter_series() * 1e3  # ms
        idx = np.arange(jit.size, dtype=float)
        series[name] = bin_series(idx, jit, bins=60)
        # Locate the congestion onset: first delivery after cbr_start.
        times = res.log.times
        onset[name] = int(np.searchsorted(times, 2.0))
    chart = ascii_chart(series,
                        title="Figures 2/3: per-packet delay jitter (ms, "
                              "binned)", ylabel="ms")
    note = "\n".join(f"{k}: cross traffic bites around packet {v}"
                     for k, v in onset.items())
    report("fig23_jitter", chart + "\n" + note)

    # Shape: the figures' defining feature -- jitter jumps sharply when the
    # cross traffic starts biting (the paper's "sharp increase around the
    # 500th packet").  The IQ-vs-RUDP average ordering on the *all-packet*
    # series is seed-dependent on this substrate because the coordinated
    # sender deliberately thins the stream (see EXPERIMENTS.md); Table 4
    # carries the tagged-stream comparison.
    for name, res in results.items():
        j = res.log.jitter_series()
        k = onset[name]
        if 10 < k < j.size - 10:
            assert j[k:].mean() > 1.5 * j[:k].mean()
