"""Ablation benches for the design choices DESIGN.md calls out:

* LDA-style proportional decrease vs TCP-style halving inside RUDP,
* window re-inflation on/off (over-reaction scheme),
* sender-side discard of unmarked datagrams on/off (conflict scheme),
* receiver loss-tolerance sweep.
"""

from conftest import cached

from repro.analysis.tables import render_table
from repro.experiments.common import run_scenario
from repro.experiments.conflict import (_changing_net_config,
                                        conflict_metrics)
from repro.experiments.overreaction import (_changing_net_config as
                                            _over_net_config,
                                            overreaction_metrics)


def bench_ablation_cc_law(benchmark, report):
    """RUDP with LDA vs RUDP with Reno-style halving (same scenario)."""
    def run():
        base = _over_net_config(16e6, 6000, 2).replace(transport="rudp",
                                                       adaptation=None)
        lda = run_scenario(base)
        reno = run_scenario(base.replace(transport="rudp_reno"))
        return lda, reno

    lda, reno = benchmark.pedantic(lambda: cached("ablation_cc", run),
                                   rounds=1, iterations=1)
    rows = [("LDA (paper)", *(round(x, 2)
                              for x in overreaction_metrics(lda))),
            ("Reno halving", *(round(x, 2)
                               for x in overreaction_metrics(reno)))]
    report("ablation_cc", render_table(
        ("CC law", "Throughput(KB/s)", "Duration(s)", "Delay(ms)", "Jitter"),
        rows, title="Ablation: RUDP congestion law (16 Mb cross traffic)"))
    # Both laws must complete; LDA should not be grossly worse.
    assert lda.completed and reno.completed
    assert overreaction_metrics(lda)[0] > 0.5 * overreaction_metrics(reno)[0]


def bench_ablation_discard_unmarked(benchmark, report):
    """Conflict scheme with and without the sender-side discard."""
    def run():
        base = _changing_net_config(6000, 1)
        return {
            "IQ (discard on)": run_scenario(base.replace(transport="iq")),
            "IQ (discard off)": run_scenario(
                base.replace(transport="iq_nodiscard")),
            "RUDP": run_scenario(base.replace(transport="rudp")),
        }

    results = benchmark.pedantic(
        lambda: cached("ablation_discard", run), rounds=1, iterations=1)
    rows = [(k, *(round(x, 2) for x in conflict_metrics(r)))
            for k, r in results.items()]
    report("ablation_discard", render_table(
        ("", "Duration(s)", "Recvd(%)", "TagDelay(ms)", "TagJitter",
         "Delay(ms)", "Jitter"), rows,
        title="Ablation: sender-side discard of unmarked datagrams"))

    on = conflict_metrics(results["IQ (discard on)"])
    off = conflict_metrics(results["IQ (discard off)"])
    # Discarding is the mechanism that shortens the run & thins delivery.
    assert on[0] < off[0]
    assert on[1] < off[1]
    assert results["IQ (discard off)"].conn.sender.stats.discarded_msgs == 0


def bench_ablation_reinflation(benchmark, report):
    """Over-reaction scheme: window re-inflation on vs off."""
    def run():
        base = _over_net_config(18e6, 12000, 2)
        return {
            "IQ (reinflate on)": run_scenario(base.replace(transport="iq")),
            "IQ (reinflate off)": run_scenario(
                base.replace(transport="iq_noreinflate")),
        }

    results = benchmark.pedantic(
        lambda: cached("ablation_reinflate", run), rounds=1, iterations=1)
    rows = [(k, *(round(x, 2) for x in overreaction_metrics(r)))
            for k, r in results.items()]
    report("ablation_reinflation", render_table(
        ("", "Throughput(KB/s)", "Duration(s)", "Delay(ms)", "Jitter"), rows,
        title="Ablation: window re-inflation after resolution adaptation "
              "(18 Mb cross traffic)"))
    on = results["IQ (reinflate on)"]
    off = results["IQ (reinflate off)"]
    assert on.conn.coordinator.window_rescales > 0
    assert off.conn.coordinator.window_rescales == 0


def bench_ablation_loss_tolerance(benchmark, report):
    """Receiver loss-tolerance sweep on a genuinely lossy path.

    Unmarked datagrams over a 10%-loss wire: the tolerance caps how much
    the sender may skip instead of retransmit, trading delivery percentage
    for completion time.
    """
    def run():
        import random

        from repro.middleware.receiver import DeliveryLog
        from repro.sim.engine import Simulator
        from repro.sim.link import BernoulliLoss
        from repro.sim.topology import Dumbbell
        from repro.transport.rudp import RudpConnection

        out = {}
        for tol in (0.02, 0.10, 0.50):
            sim = Simulator()
            net = Dumbbell(sim)
            snd, rcv = net.add_flow_hosts("tol")
            net.forward.loss = BernoulliLoss(0.10, random.Random(5))
            log = DeliveryLog()
            conn = RudpConnection(sim, snd, rcv, loss_tolerance=tol,
                                  on_deliver=log.on_deliver)
            n = 3000
            for i in range(n):
                conn.submit(1400, marked=(i % 10 == 0), frame_id=i)
            conn.finish()
            sim.run(until=900.0)
            out[tol] = (log.duration, 100.0 * len(log) / n,
                        conn.sender.stats.skips_sent,
                        conn.sender.stats.retransmissions)
        return out

    results = benchmark.pedantic(
        lambda: cached("ablation_tolerance", run), rounds=1, iterations=1)
    rows = [(f"{tol:.0%}", round(d, 2), round(pct, 1), skips, rtx)
            for tol, (d, pct, skips, rtx) in results.items()]
    report("ablation_tolerance", render_table(
        ("Tolerance", "Duration(s)", "Recvd(%)", "Skips", "Retransmits"),
        rows, title="Ablation: receiver loss tolerance on a 10%-loss wire"))

    # Looser tolerance -> more skips, fewer datagrams delivered,
    # and never a slower transfer.
    d = results
    assert d[0.02][2] <= d[0.10][2] <= d[0.50][2]
    assert d[0.02][1] >= d[0.10][1] >= d[0.50][1]
    assert d[0.50][0] <= d[0.02][0] * 1.05
