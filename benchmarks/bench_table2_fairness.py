"""Table 2: fairness test -- the application flow over TCP vs over IQ-RUDP,
competing against a greedy TCP cross flow on the shared bottleneck."""

from conftest import cached

from repro.analysis.tables import render_comparison
from repro.experiments.baseline import (PAPER_TABLE2, run_table2,
                                        table_metrics)

HEADERS = ("Transport Tested", "Time", "Throughput KB/s", "Inter-arrival",
           "Jitter")


def bench_table2_fairness(benchmark, report):
    results = benchmark.pedantic(
        lambda: cached("table2", run_table2), rounds=1, iterations=1)
    paper_rows = [(k, *v) for k, v in PAPER_TABLE2.items()]
    measured_rows = [(k, *(round(x, 4) for x in table_metrics(r)))
                     for k, r in results.items()]
    # Also report the cross flow's share for context.
    extra = []
    for k, r in results.items():
        xlog = r.tcp_cross.cross_log
        xthr = xlog.total_bytes / 1e3 / max(xlog.duration, 1e-9)
        extra.append(f"{k}: competing TCP flow achieved {xthr:.0f} KB/s")
    report("table2_fairness", render_comparison(
        "Table 2: fairness test", HEADERS, paper_rows, measured_rows)
        + "\n" + "\n".join(extra))

    tcp = table_metrics(results["TCP"])
    iq = table_metrics(results["IQ-RUDP"])
    # Shape: throughputs are close, TCP somewhat ahead (paper: 118 vs 99).
    assert abs(tcp[1] - iq[1]) / tcp[1] < 0.35
    assert iq[1] > 0.5 * tcp[1]
    # Shape: neither flow starves the TCP competitor.
    for k, r in results.items():
        xlog = r.tcp_cross.cross_log
        assert xlog.total_bytes > 0
