"""Table 3: coordination against conflicting interests, changing
application.  IQ-RUDP discards unmarked datagrams before the network;
RUDP keeps sending everything within its window."""

from conftest import cached

from repro.analysis.tables import render_comparison
from repro.experiments.conflict import (PAPER_TABLE3, conflict_metrics,
                                        run_table3)

HEADERS = ("", "Duration(s)", "Mesgs Recvd(%)", "Tagged Delay(ms)",
           "Tagged Jitter", "Delay(ms)", "Jitter")


def bench_table3_conflict_changing_app(benchmark, report):
    results = benchmark.pedantic(
        lambda: cached("table3", run_table3), rounds=1, iterations=1)
    paper_rows = [(k, *v) for k, v in PAPER_TABLE3.items()]
    measured_rows = [(k, *(round(x, 2) for x in conflict_metrics(r)))
                     for k, r in results.items()]
    report("table3_conflict_app", render_comparison(
        "Table 3: coordination against conflict -- changing application",
        HEADERS, paper_rows, measured_rows))

    iq = conflict_metrics(results["IQ-RUDP"])
    ru = conflict_metrics(results["RUDP"])
    # Shape: IQ-RUDP finishes sooner with lower tagged delay...
    assert iq[0] < ru[0]
    assert iq[2] < ru[2]
    # ...delivering fewer messages (it discards droppable data)...
    assert iq[1] < ru[1]
    # ...but within the 40% receiver loss tolerance.
    assert iq[1] >= 60.0
    # IQ-RUDP's sender really discarded; RUDP's never does.
    assert results["IQ-RUDP"].conn.sender.stats.discarded_msgs > 0
    assert results["RUDP"].conn.sender.stats.discarded_msgs == 0
