"""Table 4: coordination against conflicting interests, changing network
(greedy source, CBR + MBone-VBR cross traffic)."""

from conftest import cached

from repro.analysis.tables import render_comparison
from repro.experiments.conflict import (PAPER_TABLE4, conflict_metrics,
                                        run_table4)

HEADERS = ("", "Duration(s)", "Mesgs Recvd(%)", "Tagged Delay(ms)",
           "Tagged Jitter", "Delay(ms)", "Jitter")


def bench_table4_conflict_changing_net(benchmark, report):
    results = benchmark.pedantic(
        lambda: cached("table4", run_table4), rounds=1, iterations=1)
    paper_rows = [(k, *v) for k, v in PAPER_TABLE4.items()]
    measured_rows = [(k, *(round(x, 2) for x in conflict_metrics(r)))
                     for k, r in results.items()]
    report("table4_conflict_net", render_comparison(
        "Table 4: coordination against conflict -- changing network",
        HEADERS, paper_rows, measured_rows))

    iq = conflict_metrics(results["IQ-RUDP"])
    ru = conflict_metrics(results["RUDP"])
    assert iq[0] < ru[0]            # duration
    assert iq[2] < ru[2]            # tagged delay
    assert iq[3] <= ru[3] * 1.1     # tagged jitter
    assert iq[1] < ru[1]            # fewer messages delivered
    assert iq[1] >= 60.0            # still within the 40% tolerance
