"""Shared infrastructure for the table/figure benches.

Each bench regenerates one artifact from the paper's evaluation section,
prints a paper-vs-measured block, writes it under ``benchmarks/results/``
and asserts the robust parts of the expected *shape* (who wins; large
factors).  Absolute numbers are not compared -- our substrate is a
simulator, not the authors' 2002 Emulab testbed (see EXPERIMENTS.md).

Expensive experiment runs are memoised twice over: a per-session dict (so
e.g. the Figure 4 bench reuses the Table 6 sweep within one pytest run)
backed by the persistent on-disk cache in :mod:`repro.runner` (so a rerun
with unchanged code and parameters is a cache hit across sessions).  Set
``REPRO_NO_CACHE=1`` to force fresh runs, ``REPRO_CACHE_DIR`` to relocate
the cache (default ``~/.cache/repro-iq-rudp``).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.runner import memo

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
PERF_JSON = RESULTS_DIR / "bench_perf.json"

_cache: dict[str, object] = {}


def cached(key: str, fn):
    """Memoise an experiment run for the session *and* across sessions.

    The persistent layer keys on ``key`` plus a digest of the ``repro``
    sources, so editing any simulator code invalidates stored results.
    """
    if key not in _cache:
        _cache[key] = memo(key, fn)
    return _cache[key]


def record_perf(name: str, **fields) -> None:
    """Merge one bench's machine-readable timings into bench_perf.json.

    Accumulates across benches in the same file so a full run leaves one
    JSON artifact; ``check_regression.py`` compares it to the committed
    baseline.  When ``REPRO_LEDGER_DIR`` is armed, the same row is also
    appended to the persistent run ledger -- ``bench_perf.json`` is
    overwritten on every rerun, the ledger keeps the trajectory
    (``repro history NAME`` / ``repro sentinel``).
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    data: dict = {}
    if PERF_JSON.exists():
        try:
            data = json.loads(PERF_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    data.setdefault(name, {}).update(fields)
    # Atomic replace: concurrent/interrupted benches never leave a torn
    # (half-written) JSON for check_regression.py to choke on.
    tmp = PERF_JSON.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, PERF_JSON)
    from repro.obs.ledger import record_run
    record_run("bench", name, fields)


@pytest.fixture()
def report():
    """Returns a writer: report(name, text) prints and persists a block."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _write(name: str, text: str) -> None:
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _write


@pytest.fixture()
def perf_record():
    """Fixture handle on :func:`record_perf` for the micro-benches."""
    return record_perf
