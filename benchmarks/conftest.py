"""Shared infrastructure for the table/figure benches.

Each bench regenerates one artifact from the paper's evaluation section,
prints a paper-vs-measured block, writes it under ``benchmarks/results/``
and asserts the robust parts of the expected *shape* (who wins; large
factors).  Absolute numbers are not compared -- our substrate is a
simulator, not the authors' 2002 Emulab testbed (see EXPERIMENTS.md).

Expensive experiment runs are memoised per pytest session so that e.g. the
Figure 4 bench reuses the Table 6 sweep instead of re-simulating it.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_cache: dict[str, object] = {}


def cached(key: str, fn):
    """Memoise an experiment run for the benchmark session."""
    if key not in _cache:
        _cache[key] = fn()
    return _cache[key]


@pytest.fixture()
def report():
    """Returns a writer: report(name, text) prints and persists a block."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _write
