"""Figure 4: relative improvement of IQ-RUDP over RUDP vs congestion level
(derived from the Table 6 sweep; paper reports throughput +6..25% and
jitter -20..76% as congestion grows)."""

import numpy as np
from conftest import cached

from repro.analysis.tables import render_table
from repro.analysis.timeseries import ascii_chart
from repro.experiments.overreaction import figure4_improvements, run_table6


def bench_fig4_improvement_vs_congestion(benchmark, report):
    table6 = cached("table6", run_table6)
    imp = benchmark.pedantic(lambda: figure4_improvements(table6),
                             rounds=1, iterations=1)
    rates = sorted(imp)
    rows = [(f"{r}Mbps", round(imp[r]["throughput_pct"], 1),
             round(imp[r]["duration_pct"], 1),
             round(imp[r]["delay_pct"], 1),
             round(imp[r]["jitter_pct"], 1)) for r in rates]
    table = render_table(
        ("iperf", "thr +%", "duration -%", "delay -%", "jitter -%"), rows,
        title="Figure 4: IQ-RUDP improvement over RUDP vs congestion\n"
              "(paper: throughput +6..+25%, jitter -20..-76%)")
    x = np.array(rates, dtype=float)
    chart = ascii_chart(
        {"duration -%": (x, np.array([imp[r]["duration_pct"]
                                      for r in rates])),
         "delay -%": (x, np.array([imp[r]["delay_pct"] for r in rates]))},
        title="improvement (%) vs iperf rate (Mbps)", ylabel="%")
    report("fig4_improvement", table + "\n\n" + chart)

    # Shape: the duration/delay improvement is largest under the most
    # severe congestion.
    assert imp[18]["duration_pct"] > imp[12]["duration_pct"]
    assert imp[18]["duration_pct"] > 0
