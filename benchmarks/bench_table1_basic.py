"""Table 1: basic performance comparison (TCP / IQ-RUDP / app-adaptation
only / IQ-RUDP with app adaptation) on the changing-application workload
against 18 Mb CBR cross traffic."""

from conftest import cached

from repro.analysis.tables import render_comparison
from repro.experiments.baseline import (PAPER_TABLE1, run_table1,
                                        table_metrics)

HEADERS = ("Transport Tested", "Time", "Throughput KB/s", "Inter-arrival",
           "Jitter")


def bench_table1_basic_comparison(benchmark, report):
    results = benchmark.pedantic(
        lambda: cached("table1", run_table1), rounds=1, iterations=1)
    paper_rows = [(k, *v) for k, v in PAPER_TABLE1.items()]
    measured_rows = [(k, *(round(x, 3) for x in table_metrics(r)))
                     for k, r in results.items()]
    report("table1_basic", render_comparison(
        "Table 1: basic performance comparison", HEADERS, paper_rows,
        measured_rows))

    t = {k: table_metrics(r) for k, r in results.items()}
    tcp, iq = t["TCP(1)"], t["IQ-RUDP(2)"]
    app3 = t["App adaptation only(3)"]
    app4 = t["IQ-RUDP w/ app adaptation(4)"]
    # Shape: IQ-RUDP matches-or-beats TCP on throughput and jitter (the
    # paper's Table 1 rows 1-2), and finishes no later.
    assert iq[1] > 0.9 * tcp[1]
    assert iq[3] < 1.2 * tcp[3]
    assert iq[0] <= tcp[0] * 1.05
    # Shape: adaptation without congestion control (row 3) trails the
    # coordinated stack (row 4) badly on throughput -- the paper's 8%
    # deficit, amplified on our substrate (see EXPERIMENTS.md).
    assert app3[1] < app4[1] * 1.05
    # Shape: rows with a congestion-controlled transport do not lose to
    # the uncontrolled row on duration.
    assert app4[0] <= app3[0] * 1.1
