"""Cost of the invariant-checking subsystem on the *disarmed* path.

A scenario that does not arm :mod:`repro.invariants` must not pay for the
checks it is not running.  The design makes that structural rather than a
promise: arming swaps :class:`~repro.sim.engine.Simulator` for its
:class:`~repro.invariants.CheckedSimulator` subclass, so the disarmed
event loop contains *zero* added branches.  What remains on the disarmed
path is per-scenario, not per-packet: the one ``cfg.invariants or
REPRO_INVARIANTS`` arm check in ``run_scenario`` plus the class-attribute
defaults (``failed`` / ``invariant_checks``) a result carries.

As with ``bench_fault_overhead`` the overhead is therefore measured
compositionally -- per-arm-check cost (generously multiplied) against the
measured cost of a whole scenario -- and gated at <= 3%
(``invariant_overhead_pct_max`` in ``perf_baseline.json``).  The bench
also asserts the subsystem's central purity property end-to-end: an armed
run's summary is bit-identical to the disarmed run's.
"""

import os
import time

from repro.experiments.common import ScenarioConfig, run_scenario

#: Disarmed-path guard points per scenario: the ``cfg.invariants`` read,
#: the ``os.environ.get("REPRO_INVARIANTS")`` lookup, the class-attribute
#: reads on the result.  Deliberately generous (the real count is ~4) --
#: the estimate below multiplies by it.
GUARDS_PER_SCENARIO = 64


def _best_s(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_invariant_overhead(benchmark, perf_record):
    """Disarmed arm-check cost as a fraction of real per-scenario work."""
    # -- per-guard cost: the arm check run_scenario performs once ----------
    n = 100_000
    cfg = ScenarioConfig(transport="rudp", workload="fixed_clocked",
                         n_frames=60, time_cap=20.0)

    def guarded_loop():
        acc = 0
        for _ in range(n):
            if cfg.invariants or bool(os.environ.get("REPRO_INVARIANTS")):
                acc += 1
        return acc

    def plain_loop():
        acc = 0
        for _ in range(n):
            acc += 1
        return acc

    guard_ns = max(_best_s(guarded_loop) - _best_s(plain_loop), 0.0) \
        / n * 1e9

    # -- per-scenario cost of the disarmed path ----------------------------
    def scenario():
        res = run_scenario(cfg)
        assert not res.failed
        return res

    scenario_ns = _best_s(scenario, repeats=3) * 1e9
    invariant_overhead_pct = \
        100.0 * guard_ns * GUARDS_PER_SCENARIO / scenario_ns

    # -- purity: arming must not change a single summary bit ---------------
    disarmed = run_scenario(cfg)
    armed = run_scenario(cfg.replace(invariants=True))
    assert armed.invariant_checks > 0, "armed run performed no checks"
    assert armed.summary == disarmed.summary, (
        "armed and disarmed summaries differ -- the checker perturbed the "
        "simulation it was only supposed to observe")
    armed_ns = _best_s(lambda: run_scenario(cfg.replace(invariants=True)),
                       repeats=3) * 1e9

    perf_record("invariant_overhead",
                guard_ns=round(guard_ns, 3),
                scenario_ns=round(scenario_ns, 1),
                invariant_overhead_pct=round(invariant_overhead_pct, 6),
                armed_cost_pct=round(
                    100.0 * (armed_ns - scenario_ns) / scenario_ns, 2))
    assert invariant_overhead_pct < 3.0, (
        f"disarmed arm-check overhead {invariant_overhead_pct:.4f}% "
        "exceeds the 3% budget")
    assert benchmark(scenario).completed
