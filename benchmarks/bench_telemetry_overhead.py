"""Cost of the telemetry subsystem on the *disarmed* path.

A scenario without ``ScenarioConfig(telemetry=...)`` must not pay for the
sampling machinery: telemetry is pull-based (a periodic engine tick reads
``telemetry_probe()`` state), so nothing runs per packet, and the only
guards left in hot-adjacent code are the ``snd.telemetry is None`` checks
on coordination actions and stall transitions -- cold paths that fire per
adaptation, not per packet.

As with ``bench_trace_overhead``/``bench_fault_overhead`` the disarmed
overhead is measured compositionally -- per-guard attribute-check cost x a
deliberately generous guards-per-packet count, against the measured
per-packet cost of a full RUDP transfer -- because the checks are
interleaved with real work.  The committed baseline gates the estimate at
<= 3% (``telemetry_overhead_pct_max`` in ``perf_baseline.json``); the
armed sampling cost is recorded alongside for information but not gated
(it scales with the chosen cadence, not the packet rate).
"""

import time

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.middleware.receiver import DeliveryLog
from repro.obs.telemetry import TelemetryConfig
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection

#: ``telemetry is None`` guard points charged to each packet.  In truth
#: the guards sit on coordination actions (per adaptation, i.e. per
#: metric period) and stall transitions -- orders of magnitude rarer than
#: packets -- so charging 4 per packet overstates the real cost heavily.
GUARDS_PER_PACKET = 4


def _best_s(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_telemetry_overhead(benchmark, perf_record):
    """Disarmed-path guard cost as a fraction of real per-packet work."""
    # -- per-guard cost: a class-attribute None check -----------------------
    n = 200_000

    class _SenderShape:
        __slots__ = ()
        telemetry = None  # class attribute, exactly like WindowedSender

    snd = _SenderShape()

    def guarded_loop():
        acc = 0
        for _ in range(n):
            if snd.telemetry is None:
                acc += 1
        return acc

    def plain_loop():
        acc = 0
        for _ in range(n):
            acc += 1
        return acc

    guard_ns = max(_best_s(guarded_loop) - _best_s(plain_loop), 0.0) \
        / n * 1e9

    # -- per-packet cost of the full stack (telemetry disarmed) ------------
    n_pkts = 5000

    def transfer():
        sim = Simulator()
        net = Dumbbell(sim)
        snd_h, rcv_h = net.add_flow_hosts("f")
        log = DeliveryLog()
        conn = RudpConnection(sim, snd_h, rcv_h, on_deliver=log.on_deliver)
        for i in range(n_pkts):
            conn.submit(1400, frame_id=i)
        conn.finish()
        sim.run(until=120.0)
        assert conn.completed
        return len(log)

    packet_ns = _best_s(transfer) / n_pkts * 1e9
    telemetry_overhead_pct = 100.0 * guard_ns * GUARDS_PER_PACKET / packet_ns

    # -- armed cost, for information (not gated) ---------------------------
    cfg = ScenarioConfig(transport="rudp", workload="greedy", n_frames=2000,
                         base_frame_size=1400, time_cap=120.0)

    def run_disarmed():
        return run_scenario(cfg)

    def run_armed():
        return run_scenario(
            cfg.replace(telemetry=TelemetryConfig(cadence_s=0.1)))

    disarmed_s = _best_s(run_disarmed, repeats=3)
    armed_s = _best_s(run_armed, repeats=3)
    armed_overhead_pct = 100.0 * max(armed_s - disarmed_s, 0.0) / disarmed_s

    perf_record("telemetry_overhead",
                guard_ns=round(guard_ns, 3),
                packet_ns=round(packet_ns, 1),
                telemetry_overhead_pct=round(telemetry_overhead_pct, 4),
                armed_overhead_pct=round(armed_overhead_pct, 2))
    assert telemetry_overhead_pct < 3.0, (
        f"disarmed-path telemetry overhead {telemetry_overhead_pct:.2f}% "
        "exceeds the 3% budget")
    assert benchmark(transfer) == n_pkts
