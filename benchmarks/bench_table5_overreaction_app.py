"""Table 5: coordination against over-reaction, changing application
(sub-MSS trace frames; window re-inflation after resolution cuts)."""

from conftest import cached

from repro.analysis.tables import render_comparison
from repro.experiments.overreaction import (PAPER_TABLE5,
                                            overreaction_metrics, run_table5)

HEADERS = ("", "Throughput(KB/s)", "Duration(s)", "Delay(ms)", "Jitter")


def bench_table5_overreaction_changing_app(benchmark, report):
    results = benchmark.pedantic(
        lambda: cached("table5", run_table5), rounds=1, iterations=1)
    paper_rows = [(k, *v) for k, v in PAPER_TABLE5.items()]
    measured_rows = [(k, *(round(x, 2) for x in overreaction_metrics(r)))
                     for k, r in results.items()]
    report("table5_overreaction_app", render_comparison(
        "Table 5: coordination against over-reaction -- changing app",
        HEADERS, paper_rows, measured_rows))

    iq = overreaction_metrics(results["IQ-RUDP"])
    ru = overreaction_metrics(results["RUDP"])
    # Shape: both schemes complete a clocked workload in comparable time;
    # the coordinated transport must not lose on duration.
    assert iq[1] <= ru[1] * 1.1
    # Coordination really engaged: the window was re-inflated.
    assert results["IQ-RUDP"].conn.coordinator.window_rescales > 0
