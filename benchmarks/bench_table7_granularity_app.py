"""Table 7: limited application adaptation granularity, changing
application -- IQ-RUDP (w/o ADAPT_COND) vs RUDP when the app can only
adapt at coarse frame boundaries."""

from conftest import cached

from repro.analysis.tables import render_comparison
from repro.experiments.granularity import (PAPER_TABLE7, granularity_metrics,
                                           run_table7)

HEADERS = ("", "Duration(s)", "Throughput(KB/s)", "Delay(ms)", "Jitter")


def bench_table7_granularity_changing_app(benchmark, report):
    results = benchmark.pedantic(
        lambda: cached("table7", run_table7), rounds=1, iterations=1)
    paper_rows = [(k, *v) for k, v in PAPER_TABLE7.items()]
    measured_rows = [(k, *(round(x, 2) for x in granularity_metrics(r)))
                     for k, r in results.items()]
    report("table7_granularity_app", render_comparison(
        "Table 7: limited adaptation granularity -- changing app",
        HEADERS, paper_rows, measured_rows))

    iq = granularity_metrics(results["IQ-RUDP w/o ADAPT_COND"])
    ru = granularity_metrics(results["RUDP"])
    # Shape: the paper finds the two schemes close here ("the performance
    # differences ... are less noticeable in Table 7"); require parity
    # within 15% on duration and throughput.
    assert abs(iq[0] - ru[0]) / ru[0] < 0.15
    assert abs(iq[1] - ru[1]) / ru[1] < 0.15
    # The boundary-limited adaptation really ran.
    assert results["IQ-RUDP w/o ADAPT_COND"].strategy.applied_adaptations > 0
