"""Cost of the fault-injection subsystem on the *no-faults* path.

A scenario without a :class:`~repro.faults.FaultSchedule` must not pay for
the dynamics machinery it is not using.  The machinery cannot be compiled
out, though: every packet that crosses a :class:`~repro.sim.link.Link`
passes the administrative ``up`` flag check (``send`` and ``_tx_done``) and
the ``jitter is None`` check, and every retransmission-timer arm passes the
falsy ``rto_jitter`` / ``stall_threshold`` guards that transport hardening
hangs off.

As with ``bench_trace_overhead`` the overhead is measured compositionally
-- per-guard cost x a generous guards-per-packet count, against the
measured per-packet cost of a full RUDP transfer -- because the guards are
interleaved with real work and cannot be toggled at runtime.  The committed
baseline gates the estimate at <= 3% (``fault_overhead_pct_max`` in
``perf_baseline.json``).
"""

import time

from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection

#: Fault-path guard points a data packet (and its share of the ACK path)
#: crosses when no schedule is installed: per link traversal the ``up``
#: check in ``send``, the ``up`` check in ``_tx_done`` and the
#: ``jitter is None`` check (3), over ~2 links each way (12), plus the
#: falsy ``rto_jitter`` / ``stall_threshold`` guards on the timer path.
#: Deliberately generous -- the estimate below multiplies by it.
GUARDS_PER_PACKET = 16


def _best_s(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_fault_overhead(benchmark, perf_record):
    """No-faults-path guard cost as a fraction of real per-packet work."""
    # -- per-guard cost: flag checks on a Link-shaped object ---------------
    n = 200_000

    class _LinkShape:
        __slots__ = ("up", "jitter")

        def __init__(self):
            self.up = True
            self.jitter = None

    lk = _LinkShape()

    def guarded_loop():
        acc = 0
        for _ in range(n):
            if lk.up and lk.jitter is None:
                acc += 1
        return acc

    def plain_loop():
        acc = 0
        for _ in range(n):
            acc += 1
        return acc

    # guarded_loop performs two checks per iteration; normalise to one.
    guard_ns = max(_best_s(guarded_loop) - _best_s(plain_loop), 0.0) \
        / (2 * n) * 1e9

    # -- per-packet cost of the full stack (no schedule installed) ---------
    n_pkts = 5000

    def transfer():
        sim = Simulator()
        net = Dumbbell(sim)
        snd, rcv = net.add_flow_hosts("f")
        log = DeliveryLog()
        conn = RudpConnection(sim, snd, rcv, on_deliver=log.on_deliver)
        for i in range(n_pkts):
            conn.submit(1400, frame_id=i)
        conn.finish()
        sim.run(until=120.0)
        assert conn.completed
        return len(log)

    packet_ns = _best_s(transfer) / n_pkts * 1e9
    fault_overhead_pct = 100.0 * guard_ns * GUARDS_PER_PACKET / packet_ns

    perf_record("fault_overhead",
                guard_ns=round(guard_ns, 3),
                packet_ns=round(packet_ns, 1),
                fault_overhead_pct=round(fault_overhead_pct, 4))
    assert fault_overhead_pct < 3.0, (
        f"no-faults-path guard overhead {fault_overhead_pct:.2f}% exceeds "
        "the 3% budget")
    assert benchmark(transfer) == n_pkts
