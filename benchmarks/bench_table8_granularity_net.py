"""Table 8: limited application adaptation granularity, changing network --
the long-RTT (125 ms one-way) path where ADAPT_COND's obsolete-information
correction is the paper's headline claim."""

from conftest import cached

from repro.analysis.tables import render_comparison
from repro.experiments.granularity import (PAPER_TABLE8, granularity_metrics,
                                           run_table8)

HEADERS = ("", "Duration(s)", "Throughput(KB/s)", "Delay(ms)", "Jitter")


def bench_table8_granularity_changing_net(benchmark, report):
    results = benchmark.pedantic(
        lambda: cached("table8", run_table8), rounds=1, iterations=1)
    paper_rows = [(k, *v) for k, v in PAPER_TABLE8.items()]
    measured_rows = [(k, *(round(x, 2) for x in granularity_metrics(r)))
                     for k, r in results.items()]
    report("table8_granularity_net", render_comparison(
        "Table 8: limited adaptation granularity -- changing network",
        HEADERS, paper_rows, measured_rows))

    cond = granularity_metrics(results["IQ-RUDP w/ ADAPT_COND"])
    nocond = granularity_metrics(results["IQ-RUDP w/o ADAPT_COND"])
    # Shape (the section's key claim): the ADAPT_COND drift correction
    # improves throughput and duration over plain pending-notification
    # coordination (paper: ~+18% throughput, large jitter win).
    assert cond[1] > nocond[1]
    assert cond[0] <= nocond[0] * 1.05
    # And the correction actually fired.
    assert results["IQ-RUDP w/ ADAPT_COND"].conn.coordinator \
        .cond_corrections > 0
    assert results["IQ-RUDP w/o ADAPT_COND"].conn.coordinator \
        .cond_corrections == 0
