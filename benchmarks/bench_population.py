"""Population-scale wall-clock budget: 1,000 concurrent flows under 60 s.

The two-level speed tier exists so the harness can run population studies
(ROADMAP: thousands of concurrent adaptive sessions) on a laptop: every
foreground flow is a real windowed transport on burst-coalescing links
(:mod:`repro.sim.batch`), the background aggregate is a tick-coupled
:class:`~repro.sim.fluid.FluidSource`.  This bench runs the default
:func:`~repro.experiments.population.run_population` scenario -- 1,000
flows, mixed iq/rudp/tcp, 50 Mbps fluid cross traffic on a 200 Mbps
bottleneck -- and gates:

* the hard ISSUE budget, ``wall_s`` < 60 on a 1-core host (also enforced
  as a ``wall_s_max`` ceiling in ``perf_baseline.json``);
* throughput floors ``flows_per_s`` / ``datagrams_per_s`` via
  ``check_regression.py``;
* scenario sanity: every flow completes, and the summary is a pure
  function of the seed (two runs, identical summaries).
"""

import time

from repro.experiments.population import run_population

#: Hard wall-clock budget from the ISSUE acceptance criteria (seconds).
WALL_BUDGET_S = 60.0


def bench_population_scale(benchmark, perf_record):
    """1,000-flow population run: wall budget + determinism + floors."""
    t0 = time.perf_counter()
    res = run_population()
    wall_s = time.perf_counter() - t0

    s = res.summary
    assert s["completion_ratio"] == 1.0, (
        f"only {s['completed']:.0f}/{s['flows']:.0f} flows completed "
        f"within the {s['duration_s']:.0f}s time cap")
    assert wall_s < WALL_BUDGET_S, (
        f"1k-flow population took {wall_s:.1f}s wall "
        f"(budget {WALL_BUDGET_S:.0f}s)")

    # Determinism: the summary must be a pure function of the arguments.
    res2 = run_population()
    assert res2.summary == s, "population summary is not deterministic"

    perf_record("bench_population",
                wall_s=round(wall_s, 3),
                flows_per_s=s["flows"] / wall_s,
                datagrams_per_s=s["datagrams"] / wall_s,
                flows=s["flows"],
                completed=s["completed"],
                duration_s=round(s["duration_s"], 3),
                events=s["events"],
                fairness=round(s["fairness"], 4))
    benchmark.pedantic(run_population, rounds=1, iterations=1)
