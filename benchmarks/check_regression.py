#!/usr/bin/env python
"""Compare fresh micro-bench timings against the committed baseline.

Usage::

    python benchmarks/check_regression.py            # default 25% threshold
    python benchmarks/check_regression.py --threshold 0.10

Reads ``benchmarks/results/bench_perf.json`` (produced by running
``bench_micro.py``) and ``benchmarks/perf_baseline.json`` (committed).
Exits nonzero when any *rate* metric (``*_per_s``) drops more than the
threshold below baseline, or when a metric gated by a ``*_max`` ceiling
key exceeds it (e.g. baseline ``disabled_overhead_pct_max: 3.0`` fails
the run if current ``disabled_overhead_pct`` > 3.0 -- ceilings are
absolute budgets, not ratios, so ``--threshold`` does not apply).
Benches annotated ``"skipped": true`` on either side (e.g.
``parallel_batch`` on a single-core host) are exempt entirely.
Wall-clock metrics (``*_s``) and metadata are reported but never gate:
they depend on batch composition and host load far more than the
per-event rates do.

When a run ledger is armed (``REPRO_LEDGER_DIR`` or ``--ledger-dir``) the
rolling-window sentinel runs alongside the static gate: each bench key's
newest ledger record is judged against the median of its previous runs
(``repro sentinel`` semantics, see :mod:`repro.obs.ledger`), so drift
that stays inside the frozen baseline's generous threshold but trends
away across runs is still caught.  With fewer than two runs per key the
sentinel reports ``insufficient-data`` and does not gate.

Also exposed as an opt-in pytest gate:
``pytest -m perf_regression benchmarks/bench_micro.py``.

Baselines are host-dependent; after an intentional engine change (or on a
new CI host), refresh with ``--update-baseline``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
CURRENT = HERE / "results" / "bench_perf.json"
BASELINE = HERE / "perf_baseline.json"

DEFAULT_THRESHOLD = 0.25


def sentinel(ledger_dir: str, *, window: int, tolerance: float
             ) -> tuple[list[str], list[str]]:
    """Rolling-window verdicts for the bench keys in the run ledger."""
    try:
        from repro.obs.ledger import RunLedger, sentinel_verdicts
    except ImportError:
        sys.path.insert(0, str(HERE.parent / "src"))
        try:
            from repro.obs.ledger import RunLedger, sentinel_verdicts
        except ImportError:
            return (["  (repro not importable; sentinel skipped)"], [])
    records = RunLedger(ledger_dir).read(kind="bench")
    verdicts = sentinel_verdicts(records, window=window,
                                 tolerance=tolerance)
    lines: list[str] = []
    failures: list[str] = []
    for v in verdicts:
        if v["verdict"] == "insufficient-data":
            lines.append(f"  {v['key']}: insufficient-data "
                         f"(first run for this key)")
            continue
        lines.append(f"  {v['key']}.{v['metric']}: {v['newest']:g} vs "
                     f"window median {v['baseline']:g} "
                     f"({v['delta_pct']:+.1f}%) {v['verdict']}")
        if v["verdict"] == "regression":
            failures.append(f"{v['key']}.{v['metric']}: {v['newest']:g} "
                            f"drifted {v['delta_pct']:+.1f}% from the "
                            f"{v['window_n']}-run median {v['baseline']:g}")
    if not verdicts:
        lines.append("  (ledger has no bench records yet)")
    return lines, failures


def compare(current: dict, baseline: dict, threshold: float
            ) -> tuple[list[str], list[str]]:
    """Returns (report lines, failure lines)."""
    lines: list[str] = []
    failures: list[str] = []
    for bench, base_fields in sorted(baseline.items()):
        cur_fields = current.get(bench)
        if not isinstance(base_fields, dict):
            continue
        # A bench may annotate itself out of the comparison (e.g.
        # parallel_batch on a single-core host records "skipped": true);
        # a skip on either side exempts the whole bench.
        if base_fields.get("skipped") or (
                isinstance(cur_fields, dict) and cur_fields.get("skipped")):
            lines.append(f"  {bench}: skipped")
            continue
        for metric, base_val in sorted(base_fields.items()):
            if not isinstance(base_val, (int, float)):
                continue
            if metric.endswith("_max"):
                gated = metric[:-len("_max")]
                cur_val = (cur_fields or {}).get(gated)
                if cur_val is None:
                    failures.append(f"{bench}.{gated}: missing from current "
                                    f"run (ceiling {base_val:g})")
                    continue
                status = "ok"
                if cur_val > base_val:
                    status = "OVER CEILING"
                    failures.append(f"{bench}.{gated}: {cur_val:g} exceeds "
                                    f"ceiling {base_val:g}")
                lines.append(f"  {bench}.{gated}: {cur_val:g} "
                             f"(ceiling {base_val:g}) {status}")
                continue
            if not metric.endswith("_per_s") or base_val <= 0:
                continue
            cur_val = (cur_fields or {}).get(metric)
            if cur_val is None:
                failures.append(f"{bench}.{metric}: missing from current run")
                continue
            ratio = cur_val / base_val
            status = "ok"
            if ratio < 1.0 - threshold:
                status = f"REGRESSION (>{threshold:.0%} below baseline)"
                failures.append(f"{bench}.{metric}: {cur_val:,.0f}/s vs "
                                f"baseline {base_val:,.0f}/s ({ratio:.2f}x)")
            lines.append(f"  {bench}.{metric}: {cur_val:,.0f}/s "
                         f"(baseline {base_val:,.0f}/s, {ratio:.2f}x) "
                         f"{status}")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="max tolerated fractional rate drop (default 0.25)")
    ap.add_argument("--current", type=pathlib.Path, default=CURRENT)
    ap.add_argument("--baseline", type=pathlib.Path, default=BASELINE)
    ap.add_argument("--update-baseline", action="store_true",
                    help="overwrite the baseline with the current numbers")
    ap.add_argument("--ledger-dir", default=os.environ.get(
                        "REPRO_LEDGER_DIR") or None,
                    help="run-ledger directory for the rolling-window "
                         "sentinel (default: $REPRO_LEDGER_DIR; omit to "
                         "skip the sentinel)")
    ap.add_argument("--window", type=int, default=5,
                    help="sentinel reference runs per key (default 5)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="sentinel fractional drift tolerance "
                         "(default 0.10)")
    args = ap.parse_args(argv)

    if not args.current.exists():
        print(f"no current timings at {args.current}; "
              "run benchmarks/bench_micro.py first", file=sys.stderr)
        return 2
    current = json.loads(args.current.read_text())

    if args.update_baseline:
        # Ceiling keys are policy, not measurements: carry them over so a
        # baseline refresh never silently drops a committed budget.
        if args.baseline.exists():
            old = json.loads(args.baseline.read_text())
            for bench, fields in old.items():
                if not isinstance(fields, dict):
                    continue
                for metric, val in fields.items():
                    if metric.endswith("_max"):
                        current.setdefault(bench, {}).setdefault(metric, val)
        args.baseline.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated from {args.current}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; seed one with "
              "--update-baseline", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())

    lines, failures = compare(current, baseline, args.threshold)
    print("bench_perf vs baseline:")
    for line in lines:
        print(line)
    if args.ledger_dir:
        s_lines, s_failures = sentinel(args.ledger_dir, window=args.window,
                                       tolerance=args.tolerance)
        print(f"\nrolling-window sentinel ({args.ledger_dir}):")
        for line in s_lines:
            print(line)
        failures.extend(s_failures)
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("no regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
