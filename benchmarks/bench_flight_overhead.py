"""Cost of the flight recorder (armed, its default) and of disarmed spans.

The flight recorder is *always on* (``REPRO_FLIGHT`` unset arms a
256-event ring), so unlike trace/telemetry/faults the number that matters
is the **armed** cost: its event vocabulary deliberately excludes the
per-packet send/ack firehose, leaving only cold-adjacent notes (drops,
retransmissions, coordination actions, phase edges), and the committed
baseline gates the measured armed-vs-disarmed scenario delta at <= 3%
(``flight_overhead_pct_max`` in ``perf_baseline.json``).

Span recording is opt-in (``ScenarioConfig(spans=True)``), so for it the
gated number is the usual **disarmed** compositional estimate: per-guard
attribute-check cost x a generous guards-per-packet count against the
measured per-packet cost of a full RUDP transfer
(``spans_overhead_pct_max``).  The armed span cost is recorded for
information but not gated -- it buys the lineage artifact and scales with
frame count, not packet rate.
"""

import os
import time

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection

#: ``spans is None`` guard points charged to each packet.  The real guards
#: sit on segment submit, first transmission, drop, deliver and skip --
#: at most ~4 fire for a typical delivered packet -- so 6 is generous.
GUARDS_PER_PACKET = 6


def _best_s(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_flight_overhead(benchmark, perf_record):
    """Armed-recorder scenario delta + disarmed-spans guard estimate."""
    # -- per-guard cost: a class-attribute None check -----------------------
    n = 200_000

    class _SenderShape:
        __slots__ = ()
        spans = None   # class attributes, exactly like WindowedSender
        flight = None

    snd = _SenderShape()

    def guarded_loop():
        acc = 0
        for _ in range(n):
            if snd.spans is None:
                acc += 1
        return acc

    def plain_loop():
        acc = 0
        for _ in range(n):
            acc += 1
        return acc

    guard_ns = max(_best_s(guarded_loop) - _best_s(plain_loop), 0.0) \
        / n * 1e9

    # -- per-packet cost of the full stack ---------------------------------
    n_pkts = 5000

    def transfer():
        sim = Simulator()
        net = Dumbbell(sim)
        snd_h, rcv_h = net.add_flow_hosts("f")
        log = DeliveryLog()
        conn = RudpConnection(sim, snd_h, rcv_h, on_deliver=log.on_deliver)
        for i in range(n_pkts):
            conn.submit(1400, frame_id=i)
        conn.finish()
        sim.run(until=120.0)
        assert conn.completed
        return len(log)

    packet_ns = _best_s(transfer) / n_pkts * 1e9
    spans_overhead_pct = 100.0 * guard_ns * GUARDS_PER_PACKET / packet_ns

    # -- armed recorder cost: full-scenario delta (the gated number) -------
    cfg = ScenarioConfig(transport="rudp", workload="greedy", n_frames=2000,
                         base_frame_size=1400, time_cap=120.0)
    run_scenario(cfg)  # warm-up: first-call setup must not bias the delta
    saved = os.environ.pop("REPRO_FLIGHT", None)
    armed_s = disarmed_s = float("inf")
    try:
        # Interleave the two sides so clock drift / neighbour load hits
        # both equally instead of biasing whichever block ran second.
        for _ in range(7):
            os.environ.pop("REPRO_FLIGHT", None)            # default: armed
            t0 = time.perf_counter()
            run_scenario(cfg)
            armed_s = min(armed_s, time.perf_counter() - t0)
            os.environ["REPRO_FLIGHT"] = "0"
            t0 = time.perf_counter()
            run_scenario(cfg)
            disarmed_s = min(disarmed_s, time.perf_counter() - t0)
    finally:
        if saved is None:
            os.environ.pop("REPRO_FLIGHT", None)
        else:
            os.environ["REPRO_FLIGHT"] = saved
    flight_overhead_pct = 100.0 * max(armed_s - disarmed_s, 0.0) / disarmed_s

    # -- armed span cost, for information (not gated) ----------------------
    spans_armed_s = _best_s(lambda: run_scenario(cfg.replace(spans=True)),
                            repeats=3)
    spans_armed_pct = 100.0 * max(spans_armed_s - disarmed_s, 0.0) \
        / disarmed_s

    perf_record("flight_overhead",
                guard_ns=round(guard_ns, 3),
                packet_ns=round(packet_ns, 1),
                flight_overhead_pct=round(flight_overhead_pct, 4),
                spans_overhead_pct=round(spans_overhead_pct, 4),
                spans_armed_pct=round(spans_armed_pct, 2))
    assert flight_overhead_pct < 3.0, (
        f"armed flight-recorder overhead {flight_overhead_pct:.2f}% "
        "exceeds the 3% budget")
    assert spans_overhead_pct < 3.0, (
        f"disarmed-path span overhead {spans_overhead_pct:.2f}% "
        "exceeds the 3% budget")
    assert benchmark(transfer) == n_pkts
