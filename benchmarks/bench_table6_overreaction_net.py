"""Table 6: coordination against over-reaction, changing network -- the
iperf cross-traffic sweep (12/16/18 Mbps)."""

from conftest import cached

from repro.analysis.tables import render_comparison
from repro.experiments.overreaction import (PAPER_TABLE6,
                                            overreaction_metrics, run_table6)

HEADERS = ("iperf", "Transport", "Throughput(KB/s)", "Duration(s)",
           "Delay(ms)", "Jitter")


def bench_table6_overreaction_changing_net(benchmark, report):
    results = benchmark.pedantic(
        lambda: cached("table6", run_table6), rounds=1, iterations=1)
    paper_rows = []
    measured_rows = []
    for rate, rows in results.items():
        for name in ("IQ-RUDP", "RUDP"):
            paper_rows.append((f"{rate}Mbps", name,
                               *PAPER_TABLE6[rate][name]))
            measured_rows.append(
                (f"{rate}Mbps", name,
                 *(round(x, 2) for x in overreaction_metrics(rows[name]))))
    report("table6_overreaction_net", render_comparison(
        "Table 6: coordination against over-reaction -- changing network",
        HEADERS, paper_rows, measured_rows))

    # Shape: throughput decays sharply as the cross traffic grows.
    for name in ("IQ-RUDP", "RUDP"):
        t12 = overreaction_metrics(results[12][name])[0]
        t18 = overreaction_metrics(results[18][name])[0]
        assert t18 < 0.5 * t12
    # Shape: under severe congestion (18 Mb) coordination wins on
    # duration and delay -- the paper's headline effect.
    iq18 = overreaction_metrics(results[18]["IQ-RUDP"])
    ru18 = overreaction_metrics(results[18]["RUDP"])
    assert iq18[1] < ru18[1]
    assert iq18[2] < ru18[2]
