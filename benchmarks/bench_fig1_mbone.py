"""Figure 1: MBone membership dynamics (synthetic trace).

Regenerates the group-size-over-time series that drives the changing-
application workload and the VBR cross traffic, and charts it in ASCII.
"""

import numpy as np

from repro.analysis.timeseries import ascii_chart
from repro.traffic.mbone import mbone_trace


def bench_fig1_membership_dynamics(benchmark, report):
    trace = benchmark.pedantic(lambda: mbone_trace(600, seed=7),
                               rounds=1, iterations=1)
    x = np.arange(trace.size, dtype=float)
    chart = ascii_chart({"group size": (x, trace.astype(float))},
                        title="Figure 1: membership dynamics (synthetic)",
                        ylabel="members")
    stats = ("mean=%.1f min=%d max=%d cv=%.2f"
             % (trace.mean(), trace.min(), trace.max(),
                trace.std() / trace.mean()))
    report("fig1_mbone", chart + "\n" + stats)

    # Shape: a live, bursty membership process.
    assert trace.min() >= 1
    assert trace.max() > 2 * trace.mean() * 0.8
    assert trace.std() / trace.mean() > 0.15
