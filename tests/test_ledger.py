"""Tests for :mod:`repro.obs.ledger`: append/replay determinism, torn
tails, the disarmed/armed ``record_run`` wrapper, sentinel verdicts on
synthetic drift, and the ``history``/``sentinel`` CLIs, plus the
producer hooks in ``run_batch`` / ``run_campaign``.
"""

import json
import os

import pytest

from repro.api import Scenario
from repro.campaign import Campaign, run_campaign
from repro.experiments.common import ScenarioConfig
from repro.obs.ledger import (RunLedger, ledger_enabled, metric_direction,
                              record_run, render_history, render_sentinel,
                              sentinel_verdicts)
from repro.runner import run_batch

TINY = dict(workload="greedy", n_frames=5, time_cap=30.0)

PINNED = dict(t=1700000000.0, host="testhost", salt="cafebabe" * 4)


def _append_runs(ledger, key, values, metric="cells_per_s"):
    for i, value in enumerate(values):
        ledger.append(kind="bench", key=key, metrics={metric: value},
                      t=PINNED["t"] + i, host=PINNED["host"],
                      salt=PINNED["salt"])


# ----------------------------------------------------------------------
# Append / replay determinism
# ----------------------------------------------------------------------
def test_append_replay_is_byte_identical(tmp_path):
    metrics = {"throughput_kBps": 123.4, "duration_s": 2.5,
               "note": "ok", "inf": float("inf"),
               "skipped": True, "log": ["not", "a", "scalar"]}
    ledgers = [RunLedger(tmp_path / name) for name in ("a", "b")]
    for ledger in ledgers:
        for i in range(3):
            ledger.append(kind="scenario", key=f"cfg-{i}", metrics=metrics,
                          fingerprint="f" * 20, t=PINNED["t"] + i,
                          host=PINNED["host"], salt=PINNED["salt"])
    raw_a = ledgers[0].path.read_bytes()
    assert raw_a == ledgers[1].path.read_bytes()
    # and the replay sees exactly what was appended, scalars only
    records = ledgers[0].read()
    assert [r["key"] for r in records] == ["cfg-0", "cfg-1", "cfg-2"]
    assert records[0]["metrics"] == {"throughput_kBps": 123.4,
                                     "duration_s": 2.5, "note": "ok",
                                     "inf": "inf", "skipped": True}
    assert records[0]["code_salt"] == PINNED["salt"][:16]
    assert records[0]["fingerprint"] == "f" * 20


def test_torn_tail_is_skipped_not_raised(tmp_path):
    ledger = RunLedger(tmp_path)
    _append_runs(ledger, "k", [1.0, 2.0])
    with open(ledger.path, "ab") as fh:
        fh.write(b'{"kind": "bench", "key": "k", "metr')  # torn final line
    records = ledger.read(key="k")
    assert [r["metrics"]["cells_per_s"] for r in records] == [1.0, 2.0]


def test_read_filters_and_keys(tmp_path):
    ledger = RunLedger(tmp_path)
    _append_runs(ledger, "alpha", [1.0])
    _append_runs(ledger, "beta", [2.0])
    ledger.append(kind="campaign", key="alpha", metrics={"cells_done": 4},
                  **PINNED)
    assert ledger.keys() == ["alpha", "beta"]
    assert ledger.keys(kind="campaign") == ["alpha"]
    assert len(ledger.read(key="alpha")) == 2
    assert len(ledger.read(key="alpha", kind="bench")) == 1
    assert RunLedger(tmp_path / "missing").read() == []


# ----------------------------------------------------------------------
# record_run wrapper
# ----------------------------------------------------------------------
def test_record_run_disarmed_is_noop(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    monkeypatch.chdir(tmp_path)
    assert not ledger_enabled()
    assert record_run("bench", "k", {"x_per_s": 1.0}) is None
    assert os.listdir(tmp_path) == []


def test_record_run_armed_appends(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    assert ledger_enabled()
    record = record_run("bench", "k", {"x_per_s": 1.0}, **PINNED)
    assert record["metrics"] == {"x_per_s": 1.0}
    (stored,) = RunLedger(tmp_path / "ledger").read()
    assert stored == json.loads(json.dumps(record))


def test_record_run_broken_ledger_warns_once(tmp_path, monkeypatch):
    import repro.obs.ledger as ledger_mod
    (tmp_path / "blocked").write_text("a file, not a directory")
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "blocked"))
    monkeypatch.setattr(ledger_mod, "_warned_broken", False)
    with pytest.warns(RuntimeWarning, match="not writable"):
        assert record_run("bench", "k", {"x_per_s": 1.0}) is None
    # second failure is silent: the run already knows
    assert record_run("bench", "k", {"x_per_s": 1.0}) is None


# ----------------------------------------------------------------------
# Sentinel
# ----------------------------------------------------------------------
def test_sentinel_identical_runs_are_ok(tmp_path):
    ledger = RunLedger(tmp_path)
    _append_runs(ledger, "k", [10.0, 10.0, 10.0])
    (verdict,) = sentinel_verdicts(ledger.read())
    assert verdict["verdict"] == "ok"
    assert verdict["delta_pct"] == 0.0
    assert verdict["window_n"] == 2


def test_sentinel_flags_rate_slowdown(tmp_path):
    ledger = RunLedger(tmp_path)
    _append_runs(ledger, "k", [10.0, 10.0, 10.0, 8.0])  # -20% on *_per_s
    (verdict,) = sentinel_verdicts(ledger.read())
    assert verdict["verdict"] == "regression"
    assert verdict["delta_pct"] == -20.0
    assert verdict["baseline"] == 10.0
    assert "regression" in render_sentinel([verdict])


def test_sentinel_flags_latency_increase_and_improvement(tmp_path):
    ledger = RunLedger(tmp_path)
    _append_runs(ledger, "slow", [1.0, 1.0, 1.3], metric="duration_s")
    _append_runs(ledger, "fast", [10.0, 10.0, 15.0])
    verdicts = {v["key"]: v["verdict"]
                for v in sentinel_verdicts(ledger.read())}
    assert verdicts == {"slow": "regression", "fast": "improved"}


def test_sentinel_single_run_is_insufficient_data(tmp_path):
    ledger = RunLedger(tmp_path)
    _append_runs(ledger, "k", [10.0])
    (verdict,) = sentinel_verdicts(ledger.read())
    assert verdict["verdict"] == "insufficient-data"
    assert verdict["window_n"] == 0


def test_sentinel_window_and_tolerance(tmp_path):
    ledger = RunLedger(tmp_path)
    # Old slow runs age out of a window of 2; the recent pool is 10s.
    _append_runs(ledger, "k", [1.0, 1.0, 10.0, 10.0, 9.5])
    (verdict,) = sentinel_verdicts(ledger.read(), window=2)
    assert verdict["verdict"] == "ok"
    assert verdict["baseline"] == 10.0
    (tight,) = sentinel_verdicts(ledger.read(), window=2, tolerance=0.01)
    assert tight["verdict"] == "regression"
    with pytest.raises(ValueError):
        sentinel_verdicts(ledger.read(), window=0)
    with pytest.raises(ValueError):
        sentinel_verdicts(ledger.read(), tolerance=-0.1)


def test_sentinel_ignores_non_directional_metrics(tmp_path):
    ledger = RunLedger(tmp_path)
    for value in (10.0, 20.0):
        ledger.append(kind="bench", key="k",
                      metrics={"fairness": value, "events": value},
                      **PINNED)
    assert sentinel_verdicts(ledger.read()) == []


def test_metric_direction():
    assert metric_direction("cells_per_s") == "higher"
    assert metric_direction("frame_fps") == "higher"
    assert metric_direction("speedup") is None  # needs the _speedup suffix
    assert metric_direction("vs_speedup") == "higher"
    assert metric_direction("duration_s") == "lower"
    assert metric_direction("overhead_pct") == "lower"
    assert metric_direction("guard_ns") == "lower"
    assert metric_direction("fairness") is None
    assert metric_direction("completed") is None


def test_render_history_shows_trajectory(tmp_path):
    ledger = RunLedger(tmp_path)
    _append_runs(ledger, "k", [10.0, 12.0, 8.0])
    out = render_history(ledger.read(key="k"))
    assert "history: k (3 run(s))" in out
    assert "cells_per_s" in out
    assert PINNED["salt"][:8] in out
    assert render_history([]).startswith("no ledger records")


# ----------------------------------------------------------------------
# Producer hooks
# ----------------------------------------------------------------------
def test_run_batch_records_scenario_rows(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    cfg = ScenarioConfig(**TINY)
    run_batch({"keyed-tiny": cfg})
    run_batch([cfg])
    records = RunLedger(tmp_path / "ledger").read(kind="scenario")
    assert [r["key"] for r in records][0] == "keyed-tiny"
    assert records[1]["key"].startswith("cfg:")
    for r in records:
        assert r["metrics"]["completed"] == 1.0
        assert len(r["fingerprint"]) == 20


def test_run_campaign_records_campaign_row(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    camp = Campaign(Scenario(**TINY), name="ledgered",
                    axes={"transport": ["tcp", "iq"]}, seeds=1)
    run_campaign(camp)  # in-memory path, no campaign dir
    ledger = RunLedger(tmp_path / "ledger")
    (row,) = ledger.read(kind="campaign")
    assert row["key"] == "ledgered"
    assert row["metrics"]["cells_total"] == 2
    assert row["metrics"]["cells_done"] == 2
    assert row["metrics"]["cells_failed"] == 0
    assert row["metrics"]["cells_per_s"] > 0
    assert row["timings"]["duration_s"] > 0
    assert len(row["fingerprint"]) == 20
    # the per-cell scenario rows ride along too
    assert len(ledger.read(kind="scenario")) == 2


# ----------------------------------------------------------------------
# CLIs
# ----------------------------------------------------------------------
def test_history_cli(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    assert main(["history", "k"]) == 2
    assert "ledger" in capsys.readouterr().err

    ledger_dir = str(tmp_path / "ledger")
    _append_runs(RunLedger(ledger_dir), "k", [10.0, 12.0])
    assert main(["history", "k", "--ledger-dir", ledger_dir]) == 0
    assert "history: k (2 run(s))" in capsys.readouterr().out

    assert main(["history", "nope", "--ledger-dir", ledger_dir]) == 2
    assert "k" in capsys.readouterr().err  # known-keys hint

    assert main(["history", "k", "--ledger-dir", ledger_dir,
                 "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["metrics"]["cells_per_s"] for r in rows] == [10.0, 12.0]


def test_sentinel_cli(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    assert main(["sentinel"]) == 2
    capsys.readouterr()

    ledger_dir = str(tmp_path / "ledger")
    ledger = RunLedger(ledger_dir)
    _append_runs(ledger, "steady", [10.0, 10.0, 10.0])
    assert main(["sentinel", "--ledger-dir", ledger_dir]) == 0
    assert "0 regression(s)" in capsys.readouterr().out

    _append_runs(ledger, "drifty", [10.0, 10.0, 10.0, 5.0])
    assert main(["sentinel", "--ledger-dir", ledger_dir]) == 1
    out = capsys.readouterr().out
    assert "regression" in out

    # filtering to the healthy key passes again
    assert main(["sentinel", "steady", "--ledger-dir", ledger_dir]) == 0
    capsys.readouterr()

    assert main(["sentinel", "--ledger-dir", ledger_dir, "--json"]) == 1
    verdicts = json.loads(capsys.readouterr().out)
    assert {v["key"]: v["verdict"] for v in verdicts} == {
        "steady": "ok", "drifty": "regression"}
