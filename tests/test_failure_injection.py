"""Failure-injection integration tests: link flaps, blackouts, ACK storms.

The paper's testbed never fails mid-experiment; a production transport
must survive anyway.  These tests drive the full stack through outages and
verify reliability semantics hold afterwards."""

import random

import pytest

from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.link import BernoulliLoss
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection
from repro.transport.tcp import TcpConnection


def make(cls=RudpConnection, **kw):
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("f")
    log = DeliveryLog()
    conn = cls(sim, snd, rcv, on_deliver=log.on_deliver, **kw)
    return sim, net, conn, log


@pytest.mark.parametrize("cls", [TcpConnection, RudpConnection])
def test_forward_link_blackout_and_recovery(cls):
    """A 2-second bottleneck outage mid-transfer: the flow stalls, then
    recovers and delivers everything exactly once."""
    sim, net, conn, log = make(cls)
    for i in range(500):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.at(0.2, net.forward.fail)
    sim.at(2.2, net.forward.recover)
    sim.run(until=120.0)
    assert conn.completed
    assert list(log.frame_ids) == list(range(500))
    assert conn.sender.stats.timeouts > 0  # it really stalled


def test_reverse_link_blackout_stalls_ack_clock():
    sim, net, conn, log = make()
    for i in range(300):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.at(0.2, net.backward.fail)
    sim.at(1.7, net.backward.recover)
    sim.run(until=120.0)
    assert conn.completed
    assert list(log.frame_ids) == list(range(300))


def test_repeated_flapping():
    sim, net, conn, log = make()
    for i in range(400):
        conn.submit(1400, frame_id=i)
    conn.finish()
    for k in range(5):
        sim.at(0.3 + k * 1.0, net.forward.fail)
        sim.at(0.8 + k * 1.0, net.forward.recover)
    sim.run(until=180.0)
    assert conn.completed
    assert list(log.frame_ids) == list(range(400))


def test_blackout_respects_marking_semantics():
    """During an outage, unmarked datagrams may be skipped but marked ones
    must still arrive after recovery."""
    sim, net, conn, log = make(loss_tolerance=0.8)
    n = 400
    for i in range(n):
        conn.submit(1400, marked=(i % 4 == 0), frame_id=i)
    conn.finish()
    sim.at(0.2, net.forward.fail)
    sim.at(1.2, net.forward.recover)
    sim.run(until=120.0)
    assert conn.completed
    delivered = set(log.frame_ids)
    assert all(i in delivered for i in range(0, n, 4))


def test_extreme_bidirectional_loss_eventually_completes():
    sim, net, conn, log = make()
    rng = random.Random(11)
    net.forward.loss = BernoulliLoss(0.25, rng)
    net.backward.loss = BernoulliLoss(0.25, rng)
    for i in range(100):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=300.0)
    assert conn.completed
    assert list(log.frame_ids) == list(range(100))


def test_metrics_reflect_outage():
    sim, net, conn, log = make(metric_period=0.2)
    for i in range(800):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.at(0.3, net.forward.fail)
    sim.at(1.3, net.forward.recover)
    sim.run(until=120.0)
    history = conn.sender.metrics.history
    assert max(pm.error_ratio for pm in history) > 0.1
