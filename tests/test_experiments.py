"""Integration tests for the experiment harness (small, fast scenarios).

These do not reproduce the paper's numbers (the benches do that at full
scale); they verify that every scenario shape wires up, runs to completion
deterministically, and that the coordination invariants hold end to end.
"""

import pytest

from repro.experiments.common import (TRANSPORTS, ScenarioConfig,
                                      run_scenario)
from repro.middleware.adaptation import (MarkingAdaptation,
                                         ResolutionAdaptation)


def small(**kw):
    defaults = dict(workload="greedy", n_frames=300, base_frame_size=1400,
                    time_cap=120.0)
    defaults.update(kw)
    return ScenarioConfig(**defaults)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_every_transport_completes(transport):
    res = run_scenario(small(transport=transport))
    assert res.completed
    assert res.summary["pct_received"] > 99.0


def test_determinism_same_seed_same_result():
    cfg = small(transport="iq", cbr_bps=17e6,
                adaptation=lambda: ResolutionAdaptation(upper=0.05,
                                                        lower=0.005),
                seed=3)
    a = run_scenario(cfg)
    b = run_scenario(cfg)
    assert a.summary == b.summary


def test_different_seed_changes_stochastic_scenario():
    def cfg(seed):
        return small(transport="iq", cbr_bps=16e6, vbr_mean_bps=2e6,
                     n_frames=2000,
                     adaptation=lambda: MarkingAdaptation(upper=0.05,
                                                          lower=0.01),
                     loss_tolerance=0.4, seed=seed)
    a = run_scenario(cfg(1))
    b = run_scenario(cfg(2))
    assert a.summary != b.summary


def test_rudp_and_iq_identical_without_adaptation():
    """With no application adaptation there is nothing to coordinate:
    IQ-RUDP must behave exactly like RUDP."""
    a = run_scenario(small(transport="rudp", cbr_bps=17e6, seed=4))
    b = run_scenario(small(transport="iq", cbr_bps=17e6, seed=4))
    assert a.summary == b.summary


def test_iq_with_all_schemes_off_degenerates_to_rudp():
    strat = lambda: ResolutionAdaptation(upper=0.05, lower=0.005)
    kw = dict(cbr_bps=17e6, adaptation=strat, n_frames=1500, seed=5)
    rudp = run_scenario(small(transport="rudp", **kw))
    iq_off = run_scenario(small(transport="iq_noreinflate", **kw))
    # Marking scheme unused here, so disabling reinflation removes all
    # coordination effects.
    assert iq_off.summary == rudp.summary


def test_tcp_rejects_adaptation():
    with pytest.raises(ValueError):
        run_scenario(small(transport="tcp",
                           adaptation=ResolutionAdaptation))


def test_unknown_transport_rejected():
    with pytest.raises(ValueError):
        ScenarioConfig(transport="quic")


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        ScenarioConfig(workload="torrent")


def test_replace_creates_modified_copy():
    cfg = small(transport="rudp")
    cfg2 = cfg.replace(transport="iq", cbr_bps=5e6)
    assert cfg.transport == "rudp" and cfg2.transport == "iq"
    assert cfg2.cbr_bps == 5e6 and cfg2.n_frames == cfg.n_frames


def test_cross_traffic_reduces_throughput():
    free = run_scenario(small(transport="rudp", n_frames=2000))
    jammed = run_scenario(small(transport="rudp", n_frames=2000,
                                cbr_bps=17e6))
    assert jammed.summary["throughput_kBps"] < free.summary["throughput_kBps"]


def test_step_cross_traffic_toggles():
    cfg = small(transport="rudp", n_frames=2000,
                step_cross=(1e6, 15e6, 4.0))
    res = run_scenario(cfg)
    assert res.completed


def test_vbr_cross_traffic_runs():
    cfg = small(transport="rudp", n_frames=1000, vbr_mean_bps=3e6)
    res = run_scenario(cfg)
    assert res.completed


def test_trace_clocked_workload_duration_bound():
    """Uncongested, a clocked source finishes at its nominal duration."""
    cfg = ScenarioConfig(transport="iq", workload="trace_clocked",
                         n_frames=50, frame_rate=25, frame_multiplier=300,
                         time_cap=60.0)
    res = run_scenario(cfg)
    assert res.completed
    assert res.summary["duration_s"] == pytest.approx(50 / 25, abs=0.5)


def test_fixed_clocked_workload():
    cfg = ScenarioConfig(transport="iq", workload="fixed_clocked",
                         n_frames=100, frame_rate=50, base_frame_size=700,
                         time_cap=60.0)
    res = run_scenario(cfg)
    assert res.completed
    assert res.summary["delivered_bytes"] == 100 * 700


def test_marking_scenario_discards_only_on_iq():
    def cfg(tr):
        return small(transport=tr, n_frames=4000, cbr_bps=17.5e6,
                     vbr_mean_bps=1e6,
                     adaptation=lambda: MarkingAdaptation(upper=0.03,
                                                          lower=0.005),
                     loss_tolerance=0.4, metric_period=0.1, seed=2)
    iq = run_scenario(cfg("iq"))
    ru = run_scenario(cfg("rudp"))
    assert iq.conn.sender.stats.discarded_msgs > 0
    assert ru.conn.sender.stats.discarded_msgs == 0
    assert iq.summary["pct_received"] <= ru.summary["pct_received"]


def test_error_ratio_lifetime_exported():
    res = run_scenario(small(transport="rudp", cbr_bps=17e6, n_frames=1500))
    assert 0.0 <= res.summary["error_ratio_lifetime"] < 0.5
