"""Unit tests for the application adaptation strategies."""

import random

import pytest

from repro.core.attributes import (ADAPT_COND, ADAPT_FREQ, ADAPT_MARK,
                                   ADAPT_PKTSIZE, ADAPT_WHEN)
from repro.middleware.adaptation import (DelayedResolutionAdaptation,
                                         FrequencyAdaptation,
                                         MarkingAdaptation, NullAdaptation,
                                         ResolutionAdaptation)


class FakeConn:
    def __init__(self):
        self.registrations = []

    def register_callbacks(self, **kw):
        self.registrations.append(kw)


def bind(strategy, seed=0):
    conn = FakeConn()
    strategy.bind(conn, random.Random(seed))
    return conn


class TestNull:
    def test_registers_nothing(self):
        conn = bind(NullAdaptation())
        assert conn.registrations == []


class TestMarking:
    def test_registers_paper_thresholds(self):
        strat = MarkingAdaptation()
        conn = bind(strat)
        reg = conn.registrations[0]
        assert reg["upper"] == 0.30 and reg["lower"] == 0.05

    def test_upper_sets_floor_probability(self):
        """max(40, 1.25*eratio)% -- the paper's unmarking law."""
        strat = MarkingAdaptation()
        bind(strat)
        attrs = strat.on_upper(0.10, {})
        assert attrs[ADAPT_MARK] == pytest.approx(0.40)

    def test_upper_scales_with_eratio(self):
        strat = MarkingAdaptation()
        bind(strat)
        attrs = strat.on_upper(0.60, {})
        assert attrs[ADAPT_MARK] == pytest.approx(0.75)

    def test_unmark_probability_capped(self):
        strat = MarkingAdaptation(max_unmark=0.95)
        bind(strat)
        attrs = strat.on_upper(0.99, {})
        assert attrs[ADAPT_MARK] == 0.95

    def test_lower_backs_off_twenty_percent(self):
        strat = MarkingAdaptation()
        bind(strat)
        strat.on_upper(0.5, {})
        p0 = strat.unmark_p
        attrs = strat.on_lower(0.01, {})
        assert attrs[ADAPT_MARK] == pytest.approx(p0 * 0.8)

    def test_lower_eventually_reaches_zero(self):
        strat = MarkingAdaptation()
        bind(strat)
        strat.on_upper(0.5, {})
        for _ in range(30):
            strat.on_lower(0.0, {})
        assert strat.unmark_p == 0.0

    def test_lower_noop_when_not_adapting(self):
        strat = MarkingAdaptation()
        bind(strat)
        assert strat.on_lower(0.0, {}) is None

    def test_every_fifth_datagram_tagged_and_marked(self):
        strat = MarkingAdaptation()
        bind(strat)
        strat.on_upper(0.5, {})
        flags = [strat.datagram_flags(i) for i in range(100)]
        for i in range(0, 100, 5):
            assert flags[i] == (True, True)

    def test_unmarking_rate_approximates_probability(self):
        strat = MarkingAdaptation()
        bind(strat, seed=3)
        strat.on_upper(0.40, {})  # p = 0.5
        non_tagged = [strat.datagram_flags(i)[0]
                      for i in range(2000) if i % 5 != 0]
        unmarked = sum(1 for m in non_tagged if not m)
        assert 0.4 < unmarked / len(non_tagged) < 0.6

    def test_no_unmarking_before_adaptation(self):
        strat = MarkingAdaptation()
        bind(strat)
        assert all(strat.datagram_flags(i)[0] for i in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkingAdaptation(tag_every=0)


class TestResolution:
    def test_upper_reduces_by_eratio(self):
        strat = ResolutionAdaptation()
        bind(strat)
        attrs = strat.on_upper(0.2, {"time": 0.0, "rate_bps": 1e6})
        assert strat.scale == pytest.approx(0.8)
        assert attrs[ADAPT_PKTSIZE] == pytest.approx(0.2)
        assert attrs[ADAPT_WHEN] == "now"
        assert attrs[ADAPT_COND]["error_ratio"] == 0.2

    def test_per_event_cut_capped_at_half(self):
        strat = ResolutionAdaptation()
        bind(strat)
        strat.on_upper(0.97, {"time": 0.0})
        assert strat.scale == pytest.approx(0.5)

    def test_lower_increases_ten_percent(self):
        strat = ResolutionAdaptation()
        bind(strat)
        strat.on_upper(0.5, {"time": 0.0})
        attrs = strat.on_lower(0.0, {"time": 10.0})
        assert strat.scale == pytest.approx(0.55)
        assert attrs[ADAPT_PKTSIZE] == pytest.approx(-0.10)

    def test_scale_never_exceeds_one(self):
        strat = ResolutionAdaptation()
        bind(strat)
        assert strat.on_lower(0.0, {"time": 0.0}) is None
        assert strat.scale == 1.0

    def test_scale_floor(self):
        strat = ResolutionAdaptation(min_scale=0.2)
        bind(strat)
        for t in range(20):
            strat.on_upper(0.5, {"time": t * 100.0})
        assert strat.scale == pytest.approx(0.2)

    def test_cooldown_limits_cut_rate(self):
        strat = ResolutionAdaptation(cooldown_s=2.0)
        bind(strat)
        strat.on_upper(0.2, {"time": 0.0})
        s = strat.scale
        assert strat.on_upper(0.2, {"time": 0.5}) is None
        assert strat.scale == s
        strat.on_upper(0.2, {"time": 2.5})
        assert strat.scale < s

    def test_validation(self):
        with pytest.raises(ValueError):
            ResolutionAdaptation(min_scale=0.0)


class TestDelayedResolution:
    def test_upper_returns_pending_only(self):
        strat = DelayedResolutionAdaptation(boundary=20)
        bind(strat)
        attrs = strat.on_upper(0.3, {"time": 0.0, "rate_bps": 5e5})
        assert attrs.as_dict() == {ADAPT_WHEN: "pending"}
        assert strat.scale == 1.0  # nothing applied yet

    def test_decision_sticks_until_boundary(self):
        """The first decision wins; later callbacks do not overwrite it
        (the app has already prepared its adaptation)."""
        strat = DelayedResolutionAdaptation(boundary=20)
        bind(strat)
        strat.on_upper(0.3, {"time": 0.0})
        assert strat.on_upper(0.5, {"time": 0.5}) is None
        attrs = strat.frame_attrs(20)
        assert attrs[ADAPT_COND]["error_ratio"] == 0.3

    def test_applied_only_at_boundary_frames(self):
        strat = DelayedResolutionAdaptation(boundary=20)
        bind(strat)
        strat.on_upper(0.3, {"time": 0.0})
        for idx in range(1, 20):
            assert strat.frame_attrs(idx) is None
        attrs = strat.frame_attrs(20)
        assert attrs is not None
        assert strat.scale == pytest.approx(0.7)
        assert strat.applied_adaptations == 1

    def test_pending_cleared_after_apply(self):
        strat = DelayedResolutionAdaptation(boundary=20)
        bind(strat)
        strat.on_upper(0.3, {"time": 0.0})
        strat.frame_attrs(20)
        assert strat.frame_attrs(40) is None

    def test_lower_also_deferred(self):
        strat = DelayedResolutionAdaptation(boundary=20)
        bind(strat)
        strat.on_upper(0.3, {"time": 0.0})
        strat.frame_attrs(20)
        attrs = strat.on_lower(0.0, {"time": 5.0})
        assert attrs[ADAPT_WHEN] == "pending"
        strat.frame_attrs(40)
        assert strat.scale == pytest.approx(0.77)

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayedResolutionAdaptation(boundary=0)


class TestFrequency:
    def test_upper_reduces_frequency(self):
        strat = FrequencyAdaptation()
        bind(strat)
        attrs = strat.on_upper(0.2, {})
        assert strat.freq_scale == pytest.approx(0.8)
        assert attrs[ADAPT_FREQ] == pytest.approx(0.2)
        assert ADAPT_PKTSIZE not in attrs

    def test_lower_recovers(self):
        strat = FrequencyAdaptation()
        bind(strat)
        strat.on_upper(0.5, {})
        strat.on_lower(0.0, {})
        assert strat.freq_scale == pytest.approx(0.55)

    def test_floor(self):
        strat = FrequencyAdaptation(min_freq=0.25)
        bind(strat)
        for _ in range(20):
            strat.on_upper(0.5, {})
        assert strat.freq_scale == 0.25
