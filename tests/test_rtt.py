"""Unit tests for RTT estimation and RTO management."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.rtt import RttEstimator


def test_validation():
    with pytest.raises(ValueError):
        RttEstimator(min_rto=0)
    with pytest.raises(ValueError):
        RttEstimator(min_rto=1.0, max_rto=0.5)


def test_initial_rto_before_samples():
    est = RttEstimator(initial_rto=1.0)
    assert est.rto == 1.0
    assert est.rtt == 0.1  # pre-sample guess


def test_first_sample_initialises_srtt():
    est = RttEstimator()
    est.sample(0.1)
    assert est.srtt == pytest.approx(0.1)
    assert est.rttvar == pytest.approx(0.05)
    assert est.rto == pytest.approx(max(0.1 + 4 * 0.05, 0.2))


def test_negative_sample_rejected():
    with pytest.raises(ValueError):
        RttEstimator().sample(-0.1)


def test_smoothing_converges():
    est = RttEstimator()
    for _ in range(100):
        est.sample(0.05)
    assert est.srtt == pytest.approx(0.05, rel=1e-3)
    assert est.rttvar == pytest.approx(0.0, abs=1e-3)


def test_rto_floor():
    est = RttEstimator(min_rto=0.2)
    for _ in range(100):
        est.sample(0.01)
    assert est.rto == 0.2


def test_rto_ceiling():
    est = RttEstimator(max_rto=5.0)
    est.sample(10.0)
    for _ in range(10):
        est.backoff()
    assert est.rto == 5.0


def test_backoff_doubles_and_caps():
    est = RttEstimator(min_rto=0.2, max_rto=100.0)
    est.sample(0.1)
    base = est.rto
    est.backoff()
    assert est.rto == pytest.approx(min(base * 2, 100.0))
    for _ in range(20):
        est.backoff()
    assert est.rto <= 16.0 * max(base, 0.2) + 1e-9


def test_sample_resets_backoff():
    est = RttEstimator()
    est.sample(0.1)
    base = est.rto
    est.backoff()
    est.backoff()
    est.sample(0.1)
    assert est.rto == pytest.approx(base, rel=0.2)


def test_variance_tracks_jitter():
    est = RttEstimator()
    for i in range(200):
        est.sample(0.1 if i % 2 else 0.2)
    assert est.rttvar > 0.02


@given(st.lists(st.floats(min_value=1e-4, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_rto_always_within_bounds(samples):
    """Invariant: RTO stays in [min_rto, max_rto] under any sample path."""
    est = RttEstimator(min_rto=0.2, max_rto=5.0)
    for s in samples:
        est.sample(s)
        assert 0.2 <= est.rto <= 5.0
        assert est.srtt is not None and est.srtt > 0
