"""Burst speed tier (repro.sim.batch): bit-identity and mechanics.

The tier's one contract is that it changes *nothing observable*: summaries,
telemetry series, trace event streams and raw arrival instants must match
the per-packet path bit for bit.  These tests enforce that across every
transport, under a fault schedule, and at the raw link level for the pure
and numpy array variants; plus unit coverage for the engine/queue/transport
plumbing the tier rides on (``next_event_key``, ``_inline_until``,
``pop_all``/``push_all``, ``send_burst``, ``submit_burst``,
``receive_burst``).
"""

from math import inf

import pytest

from repro.experiments.common import TRANSPORTS, ScenarioConfig, run_scenario
from repro.faults.schedule import Blackout, BurstyLoss, FaultSchedule, Jitter
from repro.middleware.receiver import DeliveryLog
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import TelemetryConfig
from repro.sim.batch import BatchLink, load_numpy
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection
from repro.transport.udp import UdpSink


# ---------------------------------------------------------------------------
# Scenario-level bit-identity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("transport", TRANSPORTS)
def test_burst_summary_identical_per_transport(transport):
    cfg = ScenarioConfig(transport=transport, workload="greedy",
                         n_frames=150, cbr_bps=6e6, time_cap=60.0,
                         telemetry=TelemetryConfig(cadence_s=0.1))
    plain = run_scenario(cfg)
    burst = run_scenario(cfg.replace(burst=True))
    assert burst.summary == plain.summary
    assert burst.telemetry.as_dict() == plain.telemetry.as_dict()


def test_burst_identical_under_faults():
    faults = FaultSchedule(
        BurstyLoss(start=1.0, stop=4.0, p_gb=0.02, p_bg=0.3),
        Blackout(start=5.0, stop=5.4),
        Jitter(start=6.0, stop=9.0, max_extra_s=0.01, p=0.3))
    cfg = ScenarioConfig(transport="iq", workload="greedy", n_frames=200,
                         faults=faults, time_cap=60.0, invariants=True)
    plain = run_scenario(cfg)
    burst = run_scenario(cfg.replace(burst=True))
    assert burst.summary == plain.summary


def test_burst_trace_identical():
    """Traced runs disable the array fast path but keep inline coalescing;
    every emitted event (type, time, payload) must still match."""
    cfg = ScenarioConfig(transport="iq", workload="greedy", n_frames=80,
                         cbr_bps=10e6, queue_pkts=16, time_cap=60.0)
    a, b = RingBufferSink(capacity=100_000), RingBufferSink(capacity=100_000)
    plain = run_scenario(cfg, trace_sink=a)
    burst = run_scenario(cfg.replace(burst=True), trace_sink=b)
    assert burst.summary == plain.summary
    assert len(a.events) == len(b.events)
    assert [repr(e) for e in a.events] == [repr(e) for e in b.events]


def test_repro_burst_env_opt_in(monkeypatch):
    cfg = ScenarioConfig(transport="rudp", workload="greedy", n_frames=60,
                         time_cap=60.0)
    plain = run_scenario(cfg)
    monkeypatch.setenv("REPRO_BURST", "1")
    env = run_scenario(cfg)
    assert env.summary == plain.summary


# ---------------------------------------------------------------------------
# Link-level bit-identity (pure vs numpy vs per-packet)
# ---------------------------------------------------------------------------

class _RecordingSink:
    """Terminal sink recording exact (seq, arrival time) pairs."""

    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, pkt):
        self.got.append((pkt.seq, self.sim.now))


class _RecordingBurstSink(_RecordingSink):
    def receive_burst(self, pkts, times):
        self.got.extend((p.seq, t) for p, t in zip(pkts, times))


def _blast(link_cls, sink_cls, *, accel=None, burst_send=False,
           queue_bytes=10**9, n=300):
    sim = Simulator()
    sink = sink_cls(sim)
    kw = {"queue_bytes": queue_bytes}
    if accel is not None:
        kw["accel"] = accel
    link = link_cls(sim, 10e6, 0.005, sink, **kw)
    pkts = [Packet(flow_id=1, seq=i, size=1000 + (i % 7) * 50)
            for i in range(n)]
    if burst_send:
        sim.at(0.0, link.send_burst, pkts)
    else:
        def feed():
            for p in pkts:
                link.send(p)
        sim.at(0.0, feed)
    sim.run()
    st = link.queue.stats
    return (sink.got, link.bytes_sent, link.packets_sent, st.arrivals,
            st.drops, st.peak_bytes, st.peak_packets, st.bytes_in)


@pytest.mark.parametrize("queue_bytes", [10**9, 6000])
def test_link_blast_bit_identical(queue_bytes):
    ref = _blast(Link, _RecordingSink, queue_bytes=queue_bytes)
    variants = [
        _blast(Link, _RecordingSink, burst_send=True,
               queue_bytes=queue_bytes),
        _blast(BatchLink, _RecordingSink, accel="",
               queue_bytes=queue_bytes),          # inline coalescing only
        _blast(BatchLink, _RecordingBurstSink, accel="", burst_send=True,
               queue_bytes=queue_bytes),          # pure array fast path
    ]
    if load_numpy() is not None:
        variants.append(
            _blast(BatchLink, _RecordingBurstSink, accel="numpy",
                   burst_send=True, queue_bytes=queue_bytes))
    for got in variants:
        assert got == ref


def test_bulk_path_engages():
    """The array fast path must actually run (it once guarded itself
    unreachable), and still produce identical arrivals."""
    calls = []
    orig = BatchLink._tx_burst

    def spy(self):
        taken = orig(self)
        calls.append(taken)
        return taken

    BatchLink._tx_burst = spy
    try:
        got = _blast(BatchLink, _RecordingBurstSink, accel="",
                     burst_send=True)
    finally:
        BatchLink._tx_burst = orig
    assert any(calls), "bulk fast path never engaged"
    assert got == _blast(Link, _RecordingSink)


# ---------------------------------------------------------------------------
# Engine plumbing
# ---------------------------------------------------------------------------

def test_next_event_key_skips_dead_entries():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None, priority=-1)
    assert sim.next_event_key() == (1.0, 0)
    ev.cancel()
    assert sim.next_event_key() == (2.0, -1)


def test_next_event_key_empty():
    assert Simulator().next_event_key() is None


def test_inline_until_spans_run_modes():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(sim._inline_until))
    sim.run(until=5.0)
    assert seen == [5.0]
    assert sim._inline_until == -inf  # reset after run()

    sim2 = Simulator()
    seen2 = []
    sim2.schedule(1.0, lambda: seen2.append(sim2._inline_until))
    sim2.run(max_events=1)
    assert seen2 == [-inf]  # stepped runs keep per-event cadence

    sim3 = Simulator()
    seen3 = []
    sim3.schedule(1.0, lambda: seen3.append(sim3._inline_until))
    sim3.run()
    assert seen3 == [inf]  # unbounded drain


# ---------------------------------------------------------------------------
# Queue bulk ops
# ---------------------------------------------------------------------------

def test_pop_all_matches_repeated_pop():
    a, b = DropTailQueue(10**6), DropTailQueue(10**6)
    pkts = [Packet(flow_id=1, seq=i, size=100 * (i + 1)) for i in range(10)]
    for q in (a, b):
        for p in pkts:
            assert q.push(p)
    singles = [a.pop() for _ in range(len(a))]
    bulk = b.pop_all()
    assert bulk == singles
    assert (a.bytes, a.stats.departures) == (b.bytes, b.stats.departures)
    assert b.conservation_violation() is None


def test_push_all_matches_repeated_push_on_overflow():
    cap = 5 * Packet(flow_id=1, size=1400).wire_size
    a, b = DropTailQueue(cap), DropTailQueue(cap)
    dropped_a, dropped_b = [], []
    a.on_drop = dropped_a.append
    b.on_drop = dropped_b.append
    pkts = [Packet(flow_id=1, seq=i, size=1400) for i in range(9)]
    accepted_a = sum(a.push(p) for p in pkts)
    accepted_b = b.push_all(pkts)
    assert accepted_b == accepted_a
    assert [p.seq for p in dropped_b] == [p.seq for p in dropped_a]
    for attr in ("arrivals", "drops", "bytes_in", "bytes_dropped",
                 "peak_bytes", "peak_packets"):
        assert getattr(b.stats, attr) == getattr(a.stats, attr)


# ---------------------------------------------------------------------------
# Transport burst submit + sink burst receive
# ---------------------------------------------------------------------------

def _transfer(submit_burst: bool, n=40):
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("b")
    log = DeliveryLog()
    conn = RudpConnection(sim, snd, rcv, on_deliver=log.on_deliver)
    if submit_burst:
        conn.sender.submit_burst([1400] * n, first_frame_id=0)
    else:
        for i in range(n):
            conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=60.0)
    assert conn.completed
    return len(log), conn.sender.stats.submitted_segments, \
        conn.sender.stats.submitted_msgs, sim.now


def test_submit_burst_equivalent_to_repeated_submit():
    assert _transfer(True) == _transfer(False)


def test_submit_burst_rejects_bad_input():
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("x")
    conn = RudpConnection(sim, snd, rcv)
    with pytest.raises(ValueError):
        conn.sender.submit_burst([1400, 0])
    conn.finish()
    sim.run(until=60.0)
    with pytest.raises(RuntimeError):
        conn.sender.submit_burst([1400])


def test_udp_sink_receive_burst_matches_per_packet():
    sim = Simulator()
    net = Dumbbell(sim)
    _, rcv = net.add_flow_hosts("u")
    delivered = []
    a = UdpSink(sim, rcv, port=9, flow_id=1,
                on_deliver=lambda p, t: delivered.append((p.seq, t)))
    pkts = [Packet(flow_id=1, seq=i, size=500) for i in range(6)]
    pkts.append(Packet(flow_id=2, seq=99, size=500))  # filtered out
    a.receive_burst(pkts, [0.1 * (i + 1) for i in range(7)])
    b = UdpSink(sim, rcv, port=10, flow_id=1)
    for p in pkts:
        b.receive(p)
    assert a.packets_received == b.packets_received == 6
    assert a.bytes_received == b.bytes_received
    assert a.highest_seq == b.highest_seq == 5
    assert delivered == [(i, 0.1 * (i + 1)) for i in range(6)]
