"""Unit tests for the adaptive application source and delivery log."""

import random

import numpy as np
import pytest

from repro.core.attributes import ADAPT_PKTSIZE, AttributeSet
from repro.middleware.adaptation import (MarkingAdaptation, NullAdaptation,
                                         ResolutionAdaptation)
from repro.middleware.application import AdaptiveSource
from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.packet import Packet


class StubConn:
    """Records submits; no network."""

    def __init__(self):
        self.submits = []
        self.finished = False

    def submit(self, size, *, marked=True, tagged=False, frame_id=-1,
               attrs=None):
        self.submits.append((size, marked, tagged, frame_id, attrs))
        return 1

    def finish(self):
        self.finished = True

    def register_callbacks(self, **kw):
        pass


def make_source(**kw):
    sim = Simulator()
    conn = StubConn()
    defaults = dict(strategy=NullAdaptation(), rng=random.Random(0))
    defaults.update(kw)
    src = AdaptiveSource(sim, conn, **defaults)
    return sim, conn, src


class TestClockedMode:
    def test_emits_frames_at_fixed_rate(self):
        sim, conn, src = make_source(base_frame_size=1000, n_frames=10,
                                     frame_rate=10.0)
        src.start()
        sim.run()
        assert len(conn.submits) == 10
        assert conn.finished
        assert sim.now == pytest.approx(0.9)  # 10 frames, 0.1 s apart

    def test_trace_sizes_used_in_order(self):
        sizes = [100, 200, 300]
        sim, conn, src = make_source(frame_sizes=sizes, frame_rate=10.0)
        src.start()
        sim.run()
        assert [s[0] for s in conn.submits] == sizes

    def test_strategy_scale_applied(self):
        strat = ResolutionAdaptation()
        sim, conn, src = make_source(base_frame_size=1000, n_frames=3,
                                     frame_rate=10.0, strategy=strat)
        strat.scale = 0.5
        src.start()
        sim.run()
        assert all(s[0] == 500 for s in conn.submits)

    def test_frame_ids_sequential(self):
        sim, conn, src = make_source(base_frame_size=100, n_frames=5,
                                     frame_rate=10.0)
        src.start()
        sim.run()
        assert [s[3] for s in conn.submits] == list(range(5))

    def test_frequency_scale_slows_clock(self):
        strat = NullAdaptation()
        sim, conn, src = make_source(base_frame_size=100, n_frames=3,
                                     frame_rate=10.0, strategy=strat)
        strat.freq_scale = 0.5  # half frequency -> 0.2 s interval
        src.start()
        sim.run()
        assert sim.now == pytest.approx(0.4)


class TestGreedyMode:
    def test_pump_respects_workload_bound(self):
        sim, conn, src = make_source(base_frame_size=1400, n_frames=40,
                                     frame_rate=None)
        src.start()
        sim.run()
        # First pump emits a batch; follow-up pumps continue.
        while not src.done:
            src.pump()
        assert len(conn.submits) == 40
        assert conn.finished

    def test_pump_inert_before_start(self):
        sim, conn, src = make_source(base_frame_size=1400, n_frames=10,
                                     frame_rate=None)
        src.pump()
        assert conn.submits == []


class TestMarkingMode:
    def test_frames_split_into_marked_datagrams(self):
        strat = MarkingAdaptation()
        sim, conn, src = make_source(base_frame_size=4200, n_frames=2,
                                     frame_rate=10.0, strategy=strat,
                                     mss=1400)
        src.start()
        sim.run()
        assert len(conn.submits) == 6  # 2 frames x 3 datagrams
        # Global datagram counter: every 5th datagram tagged.
        tagged = [s[2] for s in conn.submits]
        assert tagged == [True, False, False, False, False, True]


class TestValidation:
    def test_needs_some_size_spec(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            AdaptiveSource(sim, StubConn())

    def test_double_start_rejected(self):
        sim, conn, src = make_source(base_frame_size=100, n_frames=1,
                                     frame_rate=10.0)
        src.start()
        with pytest.raises(RuntimeError):
            src.start()


class TestDeliveryLog:
    def pkt(self, *, size=100, tagged=False, frame_id=0, last=True,
            created=0.0):
        p = Packet(flow_id=1, size=size, tagged=tagged, frame_id=frame_id,
                   created_at=created)
        p.last_of_frame = last
        return p

    def test_counts_and_bytes(self):
        log = DeliveryLog()
        log.on_deliver(self.pkt(size=10), 1.0)
        log.on_deliver(self.pkt(size=20), 2.0)
        assert len(log) == 2
        assert log.total_bytes == 30
        assert log.first_time == 1.0 and log.last_time == 2.0

    def test_message_times_use_last_segment(self):
        log = DeliveryLog()
        log.on_deliver(self.pkt(frame_id=0, last=False), 1.0)
        log.on_deliver(self.pkt(frame_id=0, last=True), 1.5)
        log.on_deliver(self.pkt(frame_id=1, last=True), 2.0)
        assert list(log.message_times()) == [1.5, 2.0]

    def test_tagged_times(self):
        log = DeliveryLog()
        log.on_deliver(self.pkt(tagged=True), 1.0)
        log.on_deliver(self.pkt(tagged=False), 2.0)
        log.on_deliver(self.pkt(tagged=True), 3.0)
        assert list(log.tagged_times()) == [1.0, 3.0]

    def test_one_way_delays(self):
        log = DeliveryLog()
        log.on_deliver(self.pkt(created=0.5), 1.0)
        assert log.one_way_delays()[0] == pytest.approx(0.5)

    def test_jitter_series_length(self):
        log = DeliveryLog()
        for t in (1.0, 2.0, 2.5, 4.0):
            log.on_deliver(self.pkt(), t)
        js = log.jitter_series()
        assert js.size == 3
        assert np.all(js >= 0)

    def test_empty_log_degenerates_gracefully(self):
        log = DeliveryLog()
        assert log.duration == 0.0
        assert log.interarrivals().size == 0
        assert log.jitter_series().size == 0
