"""Integration tests for the dynamics sweeps (:mod:`repro.experiments.dynamics`)
and the transport hardening they exercise.

The headline contract: under mid-flow network dynamics, coordinated
IQ-RUDP delivers strictly better frame goodput than uncoordinated RUDP,
and the whole subsystem stays deterministic for any worker count and
cache-keyed on the schedule.
"""

import random

import pytest

from repro.core.metrics_export import MetricsWindow
from repro.experiments.dynamics import (SCENARIOS, SCHEDULES,
                                        dynamics_metrics, render_dynamics,
                                        run_dynamics, _dynamics_config)
from repro.faults import FaultSchedule, LinkFlap
from repro.middleware.receiver import DeliveryLog
from repro.runner import config_key
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection


@pytest.fixture(scope="module")
def flap_sweep(tmp_path_factory):
    """One flap sweep, run twice (jobs=1 and jobs=4) with traces."""
    d = tmp_path_factory.mktemp("dyn")
    p1, p4 = d / "jobs1.jsonl", d / "jobs4.jsonl"
    r1 = run_dynamics(schedules=("flap",), jobs=1, cache=False,
                      trace=str(p1))
    r4 = run_dynamics(schedules=("flap",), jobs=4, cache=False,
                      trace=str(p4))
    return r1, r4, p1.read_bytes(), p4.read_bytes()


# ----------------------------------------------------------------------
# The acceptance criterion: coordination wins under dynamics
# ----------------------------------------------------------------------
def test_flap_coordination_beats_uncoordinated_goodput(flap_sweep):
    r1, _, _, _ = flap_sweep
    iq, rudp = r1["flap"]["iq"], r1["flap"]["rudp"]
    assert iq.completed and rudp.completed
    assert (iq.summary["goodput_fps"] > rudp.summary["goodput_fps"]), (
        f"coordinated goodput {iq.summary['goodput_fps']:.2f} fps must "
        f"strictly beat uncoordinated {rudp.summary['goodput_fps']:.2f}")
    # The flap outages are long enough for stall detection to engage on
    # both transports -- the comparison is apples to apples.
    assert iq.summary["stalls"] >= 1 and rudp.summary["stalls"] >= 1
    assert iq.summary["stall_recoveries"] >= 1
    # Coordination shed droppable data; the uncoordinated flow pushed it.
    assert iq.conn.sender.stats.discarded_msgs > 0
    assert rudp.conn.sender.stats.discarded_msgs == 0


def test_render_dynamics_reports_goodput_improvement(flap_sweep):
    r1, _, _, _ = flap_sweep
    text = render_dynamics(r1)
    assert "flap" in text and "goodput vs rudp" in text
    assert "+" in text  # the measured gain is positive
    assert len(dynamics_metrics(r1["flap"]["iq"])) == 5


# ----------------------------------------------------------------------
# Determinism under parallel execution
# ----------------------------------------------------------------------
def test_jobs_do_not_change_results_or_traces(flap_sweep):
    r1, r4, b1, b4 = flap_sweep
    for tp in ("iq", "rudp"):
        assert r1["flap"][tp].summary == r4["flap"][tp].summary
    assert b1 == b4, "trace files must be byte-identical for any jobs N"
    assert b1  # and non-empty


# ----------------------------------------------------------------------
# Cache keying
# ----------------------------------------------------------------------
def test_cache_key_reacts_to_schedule_changes():
    base = _dynamics_config(250, 1)
    flap = base.replace(faults=SCHEDULES["flap"])
    tweaked = base.replace(faults=FaultSchedule(
        LinkFlap(start=5.0, stop=16.0, down_s=0.8, up_s=1.3,
                 direction="both")))
    keys = [config_key(base), config_key(flap), config_key(tweaked)]
    assert None not in keys, "dynamics configs must be cacheable"
    assert len(set(keys)) == 3, "a schedule tweak must change the key"


def test_every_scenario_declares_faults_and_valid_overrides():
    base = _dynamics_config(250, 1)
    for name, spec in SCENARIOS.items():
        assert isinstance(spec["faults"], FaultSchedule), name
        # Overrides must be real config fields (replace validates).
        cell = base.replace(faults=spec["faults"], **spec["overrides"])
        assert cell.faults is spec["faults"]


def test_unknown_scenario_name_fails_loudly():
    with pytest.raises(ValueError, match="unknown dynamics scenario"):
        run_dynamics(schedules=("flapp",), cache=False)


# ----------------------------------------------------------------------
# Transport hardening: stall detection + blackout-aware estimation
# ----------------------------------------------------------------------
def test_stall_detection_counts_stall_and_recovery():
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("f")
    log = DeliveryLog()
    conn = RudpConnection(sim, snd, rcv, on_deliver=log.on_deliver,
                          rto_jitter=0.1, rto_rng=random.Random(3),
                          stall_threshold=3)
    for i in range(400):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.at(0.3, net.forward.fail)
    sim.at(0.3, net.backward.fail)
    sim.at(3.3, net.forward.recover)
    sim.at(3.3, net.backward.recover)
    sim.run(until=120.0)
    assert conn.completed
    assert conn.sender.stats.stalls == 1
    assert conn.sender.stats.stall_recoveries == 1
    assert list(log.frame_ids) == list(range(400))


def test_stall_detection_disabled_by_default():
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("f")
    conn = RudpConnection(sim, snd, rcv)
    for i in range(100):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.at(0.3, net.forward.fail)
    sim.at(3.3, net.forward.recover)
    sim.run(until=120.0)
    assert conn.completed
    assert conn.sender.stats.stalls == 0


def test_blackout_periods_do_not_update_clean_error_ratio():
    mw = MetricsWindow(period=0.25)
    mw.count_sent(20)
    mw.count_lost(1)
    pm = mw.roll(0.25, rtt=0.03, cwnd=10.0)
    assert not pm.blackout
    assert mw.last_clean_error_ratio == pytest.approx(pm.error_ratio)
    # An outage period reports ~100% loss; it must not poison the
    # estimator the coordination engine's Eq. 1 correction reads.
    mw.count_sent(5)
    mw.count_lost(5)
    pm2 = mw.roll(0.50, rtt=0.03, cwnd=10.0, blackout=True)
    assert pm2.blackout and pm2.error_ratio == pytest.approx(1.0)
    assert mw.last_clean_error_ratio == pytest.approx(pm.error_ratio)
