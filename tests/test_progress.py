"""SweepProgress tests: enable-knob resolution, the status line itself,
stdout hygiene, and integration with run_batch."""

import io

from repro.runner import SweepProgress, run_batch
from repro.runner.progress import progress_enabled


class TTYString(io.StringIO):
    def isatty(self):
        return True


class TestEnableKnob:
    def test_env_wins_over_tty(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        assert not progress_enabled(TTYString())
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert progress_enabled(io.StringIO())

    def test_tty_sniff_when_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        assert progress_enabled(TTYString())
        assert not progress_enabled(io.StringIO())
        assert not progress_enabled(object())  # no isatty at all


class TestStatusLine:
    def _progress(self, total, **kw):
        stream = io.StringIO()
        kw.setdefault("min_interval_s", 0.0)
        return SweepProgress(total, stream=stream, enabled=True, **kw), stream

    def test_counts_cached_failed_and_final_newline(self):
        prog, stream = self._progress(3, cached=1)
        prog.update()
        prog.update(failed=True)
        prog.finish()
        out = stream.getvalue()
        assert "sweep: 3/3 done" in out
        assert "1 cached" in out and "1 failed" in out
        assert out.endswith("\n")
        # every redraw overwrites in place -- no newlines mid-stream
        assert out.count("\n") == 1

    def test_eta_appears_only_after_fresh_completions(self):
        prog, stream = self._progress(4, cached=2)
        assert "eta" not in stream.getvalue()  # cache burst: no rate yet
        prog.update()
        assert "eta" in stream.getvalue()

    def test_disabled_instance_writes_nothing(self):
        stream = io.StringIO()
        prog = SweepProgress(5, stream=stream, enabled=False)
        prog.update()
        prog.finish()
        assert stream.getvalue() == ""

    def test_broken_stream_goes_quiet_instead_of_raising(self):
        stream = io.StringIO()
        stream.close()
        prog = SweepProgress(2, stream=stream, enabled=True)
        assert not prog.enabled
        prog.update()  # must not raise
        prog.finish()

    def test_throttle_skips_intermediate_draws(self):
        stream = io.StringIO()
        prog = SweepProgress(100, stream=stream, enabled=True,
                             min_interval_s=3600.0)
        before = len(stream.getvalue())
        for _ in range(50):
            prog.update()
        # only the forced first draw landed; 50 throttled updates drew 0
        assert len(stream.getvalue()) == before


def test_run_batch_progress_keeps_stdout_clean(capsys, monkeypatch):
    from repro.experiments.common import ScenarioConfig
    monkeypatch.setenv("REPRO_PROGRESS", "1")
    cfgs = [ScenarioConfig(transport="rudp", workload="greedy", n_frames=30,
                           time_cap=30.0, seed=s) for s in (1, 2)]
    run_batch(cfgs, cache=False)
    out, err = capsys.readouterr()
    assert out == ""
    assert "sweep: 2/2 done" in err
    assert err.endswith("\n")
