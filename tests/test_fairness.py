"""Multi-flow fairness and coexistence tests.

The paper's core constraint on IQ-RUDP is that coordination must not
violate "fairness in network resource usage".  These tests run several
flows over one bottleneck and check bandwidth shares directly.
"""

import pytest

from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.traffic.bulk import BulkSource
from repro.transport.rudp import RudpConnection
from repro.transport.tcp import TcpConnection


def jain_index(shares):
    s = sum(shares)
    sq = sum(x * x for x in shares)
    return s * s / (len(shares) * sq) if sq else 0.0


def run_flows(flow_classes, *, duration=30.0, bottleneck=20e6):
    """Greedy bulk flows of the given classes; returns delivered bytes."""
    sim = Simulator()
    net = Dumbbell(sim, bottleneck_bps=bottleneck)
    logs = []
    for k, cls in enumerate(flow_classes):
        snd, rcv = net.add_flow_hosts(f"f{k}")
        log = DeliveryLog()
        conn = cls(sim, snd, rcv, port=6000 + k, on_deliver=log.on_deliver)
        bulk = BulkSource(conn, chunk_bytes=1400)
        conn.sender.on_space = bulk.pump
        sim.at(0.0, bulk.start)
        logs.append(log)
    sim.run(until=duration)
    return [log.total_bytes for log in logs]


def test_two_rudp_flows_share_fairly():
    a, b = run_flows([RudpConnection, RudpConnection])
    assert jain_index([a, b]) > 0.85


def test_four_rudp_flows_all_make_progress():
    """With four flows, LDA's slow (report-interval) feedback shows real
    late-comer unfairness on a drop-tail queue -- the paper itself hedges
    that fair convergence needs 'a sufficient degree of multiplexing'.
    Require moderate fairness and universal progress, not equality."""
    shares = run_flows([RudpConnection] * 4, duration=60.0)
    assert jain_index(shares) > 0.5
    assert min(shares) > 1_000_000  # ~0.1 Mb/s floor: nobody starves


def test_rudp_coexists_with_tcp():
    """Paper Table 2's constraint: RUDP must neither starve nor be starved
    by TCP; shares within a factor ~3 of each other."""
    rudp_bytes, tcp_bytes = run_flows([RudpConnection, TcpConnection])
    assert rudp_bytes > 0 and tcp_bytes > 0
    ratio = rudp_bytes / tcp_bytes
    assert 1 / 3 < ratio < 3


def test_aggregate_utilization_near_capacity():
    shares = run_flows([RudpConnection, RudpConnection], duration=20.0)
    total_bits = sum(shares) * 8
    # Payload bits over 20 s on a 20 Mb link; headers/acks/retransmissions
    # explain the gap to 1.0.
    assert total_bits / (20e6 * 20.0) > 0.6


def test_two_tcp_flows_share_fairly():
    shares = run_flows([TcpConnection, TcpConnection])
    assert jain_index(shares) > 0.85
