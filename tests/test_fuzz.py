"""Tests for the seeded scenario fuzzer (ISSUE 4 part 3).

The fuzzer's own guarantees under test: the case list is a pure function
of the seed (CI reproducibility), generated cases stay inside documented
bounds, the differential oracle actually flags disagreement, and a small
end-to-end run passes clean.
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

from repro.fuzz import (FuzzReport, _compare, run_fuzz, sample_config,
                        sample_faults)
from repro.runner import config_fingerprint
from repro.runner.failures import FailedResult


# ----------------------------------------------------------------------
# Generation determinism and bounds
# ----------------------------------------------------------------------
def test_case_list_is_pure_function_of_seed():
    rng_a, rng_b = random.Random(7), random.Random(7)
    a = [sample_config(rng_a) for _ in range(10)]
    b = [sample_config(rng_b) for _ in range(10)]
    assert [config_fingerprint(c) for c in a] == \
        [config_fingerprint(c) for c in b]


def test_different_seeds_generate_different_cases():
    a = [sample_config(random.Random(1)) for _ in range(10)]
    b = [sample_config(random.Random(2)) for _ in range(10)]
    assert [config_fingerprint(c) for c in a] != \
        [config_fingerprint(c) for c in b]


def test_generated_cases_stay_inside_bounds():
    rng = random.Random(11)
    saw_faults = saw_adaptation = False
    for _ in range(60):
        cfg = sample_config(rng)
        assert cfg.invariants is True
        assert 30 <= cfg.n_frames <= 120
        assert cfg.time_cap <= 30.0
        if cfg.transport == "tcp":
            assert cfg.adaptation is None
        saw_adaptation |= cfg.adaptation is not None
        saw_faults |= cfg.faults is not None
        assert config_fingerprint(cfg) is not None  # must be cacheable
    assert saw_adaptation and saw_faults  # the pools are actually drawn


def test_sampled_fault_phases_are_ordered_and_bounded():
    for seed in range(8):
        sched = sample_faults(random.Random(seed))
        prev_stop = 0.0
        for phase in sched.phases:
            assert phase.start < phase.stop
            assert phase.start >= prev_stop  # phases never overlap
            prev_stop = phase.stop
        assert prev_stop < 10.0  # well inside the 30s case time cap


# ----------------------------------------------------------------------
# The differential oracle
# ----------------------------------------------------------------------
def _result(**summary):
    return SimpleNamespace(summary=summary)


def _failed(kind):
    f = FailedResult.__new__(FailedResult)
    f.kind = kind
    return f


def _fresh_report():
    return FuzzReport(budget=1, seed=0)


def test_compare_accepts_equal_summaries():
    report = _fresh_report()
    cfg = sample_config(random.Random(0))
    _compare(report, "t", 0, cfg, _result(x=1.0), _result(x=1.0))
    assert report.ok


def test_compare_flags_summary_divergence():
    report = _fresh_report()
    cfg = sample_config(random.Random(0))
    _compare(report, "jobs differential", 0, cfg,
             _result(x=1.0, y=2.0), _result(x=1.0, y=3.0))
    assert not report.ok
    assert "jobs differential" in report.mismatches[0]
    assert "'y'" in report.mismatches[0]


def test_compare_flags_failure_asymmetry_and_kind_mismatch():
    report = _fresh_report()
    cfg = sample_config(random.Random(0))
    _compare(report, "t", 0, cfg, _failed("error"), _result(x=1))
    _compare(report, "t", 1, cfg, _failed("error"), _failed("timeout"))
    assert len(report.mismatches) == 2


def test_compare_accepts_matching_failures():
    report = _fresh_report()
    cfg = sample_config(random.Random(0))
    _compare(report, "t", 0, cfg, _failed("error"), _failed("error"))
    assert report.ok  # agreeing failures are agreement, not a mismatch


def test_report_summary_line_verdicts():
    report = _fresh_report()
    report.cases_run = 1
    assert "PASS" in report.summary_line()
    report.failures.append("case 0: boom")
    assert "FAIL" in report.summary_line()


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------
def test_budget_validation():
    with pytest.raises(ValueError):
        run_fuzz(budget=0, log=lambda s: None)


def test_small_fuzz_run_passes_clean():
    lines = []
    report = run_fuzz(budget=3, seed=4, jobs=2, timeout=120.0,
                      log=lines.append)
    assert report.ok, "\n".join(lines)
    assert report.cases_run == 3
    assert any("pass A" in ln for ln in lines)
    assert any("PASS" in ln for ln in lines)


def test_fuzz_cli_exit_code():
    from repro.cli import main
    assert main(["fuzz", "--budget", "1", "--seed", "2"]) == 0
