"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_parser_accepts_all_experiments():
    p = build_parser()
    for name in EXPERIMENTS:
        args = p.parse_args([name])
        assert args.command == name


def test_parser_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["tableX"])


def test_scenario_command_runs(capsys):
    rc = main(["scenario", "--transport", "rudp", "--frames", "200",
               "--cbr", "1e6", "--time-cap", "60"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput_kBps" in out
    assert "completed" in out


def test_scenario_with_adaptation(capsys):
    rc = main(["scenario", "--transport", "iq", "--frames", "300",
               "--adaptation", "resolution", "--cbr", "17e6",
               "--time-cap", "60"])
    assert rc == 0
    assert "duration_s" in capsys.readouterr().out


def test_scenario_rejects_bad_transport():
    with pytest.raises(SystemExit):
        main(["scenario", "--transport", "quic"])


def test_scenario_defaults():
    args = build_parser().parse_args(["scenario"])
    assert args.transport == "iq"
    assert args.workload == "greedy"
    assert args.adaptation == "none"


def test_experiment_seeds_default_correctly():
    p = build_parser()
    assert p.parse_args(["table1"]).seed == 1
    assert p.parse_args(["table6"]).seed == 2
    assert p.parse_args(["table6", "--seed", "9"]).seed == 9
