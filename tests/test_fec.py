"""Application-tailored reliability: the FEC repair tier and
deadline-aware frame scheduling (:mod:`repro.transport.fec`).

Contracts under test:

* **Disarmed purity** -- with ``fec=None`` every transport's summary is
  identical across jobs=1/4, cache hit/miss and the burst speed tier,
  and carries none of the armed-only FEC/deadline keys.
* **Armed determinism** -- an armed run is a pure function of its
  config: re-running it (serial, parallel, burst) reproduces summaries
  and traces byte-for-byte.
* **Recovery without retransmission** -- single in-generation losses are
  rebuilt from XOR repair datagrams; unrecoverable generations fall back
  to the existing ARQ machinery and every frame still arrives.
* **The headline ordering** -- IQ-RUDP with the repair tier armed
  delivers strictly more frame goodput than ARQ-only IQ-RUDP under the
  Gilbert-Elliott burst and handover-blackout schedules.
"""

import pytest

from repro.experiments.common import (TRANSPORTS, ScenarioConfig,
                                      run_scenario)
from repro.experiments.reliability import (ARMS, SCENARIOS,
                                           reliability_metrics,
                                           render_reliability,
                                           run_reliability)
from repro.faults import Blackout, BurstyLoss, FaultSchedule
from repro.middleware.adaptation import FecAdaptation
from repro.runner import ResultsCache, config_key, run_batch
from repro.transport.fec import FecConfig, FecState

ARMED_KEYS = ("obs_fec_repairs_sent", "obs_fec_recovered",
              "obs_fec_unrecoverable", "obs_fec_repairs_unused",
              "obs_fec_repair_bytes", "obs_fec_redundancy_final",
              "obs_coord_fec_adaptations", "obs_coord_fec_boosts",
              "obs_abandoned_msgs_deadline", "obs_abandoned_bytes_deadline")


def _small(transport: str, **kw) -> ScenarioConfig:
    base = dict(transport=transport, workload="greedy", n_frames=40,
                base_frame_size=1400, seed=5, time_cap=120.0)
    base.update(kw)
    return ScenarioConfig(**base)


def _lossy(fec, **kw) -> ScenarioConfig:
    """A bursty-loss run sized so FEC has losses to repair."""
    base = dict(transport="iq", workload="fixed_clocked", n_frames=120,
                frame_rate=25, base_frame_size=2800, seed=3,
                time_cap=300.0, fec=fec,
                faults=FaultSchedule(
                    BurstyLoss(start=0.5, stop=8.0, p_gb=0.02, p_bg=0.3)))
    base.update(kw)
    return ScenarioConfig(**base)


# ----------------------------------------------------------------------
# FecConfig parsing and state invariants
# ----------------------------------------------------------------------
def test_fec_config_parse_dialect():
    assert FecConfig.parse(None) is None
    assert FecConfig.parse("none") is None
    cfg = FecConfig.parse("8/2")
    assert (cfg.k, cfg.r, cfg.r_max, cfg.adaptive) == (8, 2, 2, True)
    cfg = FecConfig.parse("8/1/3/static")
    assert (cfg.k, cfg.r, cfg.r_max, cfg.adaptive) == (8, 1, 3, False)
    assert FecConfig.parse(cfg) is cfg
    assert FecConfig.parse({"k": 4, "r": 1}) == FecConfig(k=4, r=1)
    with pytest.raises(ValueError, match="cannot parse fec spec"):
        FecConfig.parse("nonsense")
    with pytest.raises(ValueError):
        FecConfig(k=2, r=2)  # r must stay below k
    # The repr is the cache/fingerprint identity: stable and eval-shaped.
    assert repr(FecConfig.parse("8/2")) == \
        "FecConfig(k=8, r=2, r_max=2, adaptive=True)"


def test_fec_state_clamps_redundancy_and_conserves():
    state = FecState(FecConfig(k=8, r=1, r_max=3))
    assert state.r == 1
    state.set_redundancy(99)
    assert state.r == 3
    state.set_redundancy(0)
    assert state.r == 1
    assert state.conservation_violation() is None
    state.recovered = 5  # recovered without any repairs sent
    assert state.conservation_violation() is not None


def test_tcp_rejects_fec():
    with pytest.raises(ValueError, match="TCP has no FEC repair tier"):
        ScenarioConfig(transport="tcp", fec="8/2")


# ----------------------------------------------------------------------
# Disarmed purity: every transport, jobs/cache/burst
# ----------------------------------------------------------------------
def test_disarmed_summaries_identical_across_jobs_cache_burst(tmp_path):
    cfgs = {tp: _small(tp) for tp in TRANSPORTS}
    serial = run_batch(cfgs, jobs=1, cache=False)
    parallel = run_batch(cfgs, jobs=4, cache=False)
    store = ResultsCache(tmp_path)
    primed = run_batch(cfgs, jobs=1, cache=store)
    hits = run_batch(cfgs, jobs=1, cache=store)
    for tp in TRANSPORTS:
        assert serial[tp].summary == parallel[tp].summary, tp
        assert serial[tp].summary == primed[tp].summary, tp
        assert serial[tp].summary == hits[tp].summary, tp
        for key in ARMED_KEYS:
            assert key not in serial[tp].summary, (
                f"disarmed {tp} run leaked armed-only key {key}")
    # Burst speed tier stays bit-identical with the new guards in place.
    for tp in ("rudp", "iq"):
        assert run_scenario(_small(tp, burst=True)).summary == \
            serial[tp].summary, tp


# ----------------------------------------------------------------------
# Armed determinism
# ----------------------------------------------------------------------
def test_armed_run_is_deterministic(tmp_path):
    cfg = _lossy("8/1/3")
    p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    r1 = run_batch([cfg], jobs=1, cache=False, trace=str(p1))[0]
    r2 = run_batch([cfg], jobs=4, cache=False, trace=str(p2))[0]
    assert r1.summary == r2.summary
    assert p1.read_bytes() == p2.read_bytes()
    assert r1.summary["obs_fec_repairs_sent"] > 0


def test_armed_configs_are_cacheable_and_keyed_on_fec():
    plain = _lossy(None)
    armed = _lossy("8/1/3")
    tweaked = _lossy("8/2/3")
    keys = [config_key(plain), config_key(armed), config_key(tweaked)]
    assert None not in keys, "fec configs must be cacheable"
    assert len(set(keys)) == 3, "the fec profile must change the key"


# ----------------------------------------------------------------------
# Recovery semantics
# ----------------------------------------------------------------------
def test_fec_recovers_losses_and_accounting_conserves():
    res = run_scenario(_lossy("8/2", invariants=True))
    s = res.summary
    assert res.completed
    assert s["obs_fec_recovered"] > 0, "burst losses must exercise repair"
    assert res.conn.fec.conservation_violation() is None
    assert res.invariant_checks > 0
    # Everything ARQ would have delivered still arrives.
    assert s["obs_frames_delivered"] == 120


def test_unrecoverable_generations_fall_back_to_arq():
    # k=16 with a single repair per generation, and a short blackout that
    # wipes out whole windows in flight: when the link returns, repairs
    # land on generations missing several members, the stripe recovery
    # gives up, and the ARQ machinery must still complete the transfer.
    res = run_scenario(_lossy(
        FecConfig(k=16, r=1, adaptive=False), invariants=True,
        n_frames=60, base_frame_size=28000,
        faults=FaultSchedule(
            Blackout(start=1.0, stop=1.5, direction="both"),
            BurstyLoss(start=1.5, stop=6.0, p_gb=0.03, p_bg=0.25))))
    s = res.summary
    assert res.completed
    assert s["obs_fec_unrecoverable"] > 0, (
        "this schedule is calibrated to produce multi-loss generations")
    assert s["obs_frames_delivered"] == 60
    assert s["pct_received"] == 100.0


def test_recovered_segments_reach_spans_lineage():
    res = run_scenario(_lossy("8/2", spans=True))
    assert res.summary["obs_fec_recovered"] > 0
    spans = res.spans
    recovered = sum(1 for fr in spans["frames"]
                    for s in fr["segments"] if s["fate"] == "recovered")
    assert recovered == res.summary["obs_fec_recovered"]
    # Recovered segments count as delivered: the lineage reconciliation
    # anchor must still match the delivery log exactly.
    assert spans["frames_with_delivery"] == int(
        res.summary["frames_completed"])


# ----------------------------------------------------------------------
# Deadline-aware frame scheduling
# ----------------------------------------------------------------------
def test_frame_deadline_abandons_stale_frames():
    # A clocked source into a thin bottleneck: the backlog grows, so a
    # tight per-frame budget must abandon untransmitted stale segments.
    cfg = ScenarioConfig(transport="iq", workload="fixed_clocked",
                         n_frames=150, frame_rate=50,
                         base_frame_size=5600, bottleneck_bps=4e6,
                         frame_deadline_s=0.3, seed=2, time_cap=120.0,
                         invariants=True)
    res = run_scenario(cfg)
    s = res.summary
    assert res.completed
    assert s["obs_abandoned_msgs_deadline"] > 0
    assert s["obs_abandoned_bytes_deadline"] > 0
    # Deadline scheduling bounds the drain: strictly shorter than the
    # same run without a deadline.
    no_ddl = run_scenario(cfg.replace(frame_deadline_s=0.0))
    assert s["duration_s"] < no_ddl.summary["duration_s"]
    assert "obs_abandoned_msgs_deadline" not in no_ddl.summary


def test_deadline_never_abandons_tagged_segments():
    cfg = ScenarioConfig(transport="iq", workload="fixed_clocked",
                         n_frames=100, frame_rate=50,
                         base_frame_size=5600, bottleneck_bps=4e6,
                         frame_deadline_s=0.2, seed=2, time_cap=120.0,
                         adaptation=FecAdaptation, loss_tolerance=0.2)
    res = run_scenario(cfg)
    assert res.completed
    # Tagged datagrams carry attributes and are exempt from abandonment;
    # the run completing at all (attributes applied in order) checks it.
    assert res.summary["obs_frames_delivered"] > 0


# ----------------------------------------------------------------------
# The headline ordering: FEC beats ARQ where ARQ stalls
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def reliability_sweep():
    return run_reliability(n_frames=150, jobs=4, cache=False)


def test_fec_beats_arq_under_burst_and_blackout(reliability_sweep):
    for sched in ("burst", "blackout"):
        armed = reliability_sweep[sched]["iq+fec"]
        arq = reliability_sweep[sched]["iq"]
        assert armed.completed and arq.completed
        assert armed.summary["goodput_fps"] > arq.summary["goodput_fps"], (
            f"{sched}: armed {armed.summary['goodput_fps']:.2f} fps must "
            f"strictly beat ARQ-only {arq.summary['goodput_fps']:.2f}")
        assert armed.summary["obs_fec_recovered"] > 0, sched


def test_render_reliability_reports_improvement(reliability_sweep):
    text = render_reliability(reliability_sweep)
    assert "burst" in text and "blackout" in text
    assert "goodput vs iq" in text
    assert len(reliability_metrics(
        reliability_sweep["burst"]["iq+fec"])) == 7


def test_reliability_scenarios_and_arms_validate():
    base = ScenarioConfig()
    for name, spec in SCENARIOS.items():
        assert isinstance(spec["faults"], FaultSchedule), name
        base.replace(faults=spec["faults"], **spec["overrides"])
    for arm, overrides in ARMS.items():
        base.replace(**overrides)
    with pytest.raises(ValueError, match="unknown reliability scenario"):
        run_reliability(schedules=("burstt",), cache=False)
    with pytest.raises(ValueError, match="unknown reliability arm"):
        run_reliability(arms=("iq+fec", "tcp"), cache=False)
