"""Unit tests for transport metric measurement/export."""

import pytest

from repro.core.attributes import (NET_CWND, NET_ERROR_RATIO, NET_RATE,
                                   NET_RTT, AttributeService)
from repro.core.metrics_export import MetricsWindow, PeriodMetrics


def test_period_validation():
    with pytest.raises(ValueError):
        MetricsWindow(0.0)


def test_error_ratio_and_rate():
    mw = MetricsWindow(0.5)
    mw.count_sent(100)
    mw.count_lost(10)
    mw.count_acked_bytes(50_000)
    pm = mw.roll(now=0.5, rtt=0.03, cwnd=12.0)
    assert pm.error_ratio == pytest.approx(0.1)
    assert pm.rate_bps == pytest.approx(50_000 * 8 / 0.5)
    assert pm.rtt == 0.03 and pm.cwnd == 12.0


def test_roll_resets_period_counters():
    mw = MetricsWindow(1.0)
    mw.count_sent(10)
    mw.count_lost(5)
    mw.roll(1.0, 0.03, 4.0)
    pm = mw.roll(2.0, 0.03, 4.0)
    assert pm.sent == 0 and pm.lost == 0 and pm.error_ratio == 0.0


def test_lifetime_counters_persist():
    mw = MetricsWindow(1.0)
    mw.count_sent(10)
    mw.count_lost(2)
    mw.roll(1.0, 0.03, 4.0)
    mw.count_sent(10)
    mw.roll(2.0, 0.03, 4.0)
    assert mw.total_sent == 20 and mw.total_lost == 2
    assert mw.lifetime_error_ratio == pytest.approx(0.1)


def test_idle_period_error_ratio_zero():
    mw = MetricsWindow(1.0)
    pm = mw.roll(1.0, 0.03, 4.0)
    assert pm.error_ratio == 0.0 and pm.rate_bps == 0.0


def test_history_accumulates():
    mw = MetricsWindow(1.0)
    for t in (1.0, 2.0, 3.0):
        mw.roll(t, 0.03, 4.0)
    assert [pm.time for pm in mw.history] == [1.0, 2.0, 3.0]


def test_publishes_into_service():
    svc = AttributeService()
    mw = MetricsWindow(0.5, svc)
    mw.count_sent(10)
    mw.count_lost(5)
    mw.count_acked_bytes(1000)
    mw.roll(0.5, 0.04, 7.0)
    assert svc.query(NET_ERROR_RATIO) == pytest.approx(0.5)
    assert svc.query(NET_RATE) == pytest.approx(16000.0)
    assert svc.query(NET_RTT) == 0.04
    assert svc.query(NET_CWND) == 7.0


def test_as_dict_keys():
    pm = PeriodMetrics(1.0, 10, 1, 100, 0.5, 0.03, 4.0)
    d = pm.as_dict()
    assert set(d) == {"time", "sent", "lost", "error_ratio", "rate_bps",
                      "rtt", "cwnd", "blackout"}
