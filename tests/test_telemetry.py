"""Telemetry tests: series downsampling determinism and memory bounds,
recorder wiring, no-perturbation of summaries, byte-identity across worker
counts and cache hit/miss, and annotation capture on coordination actions."""

import pickle

import pytest

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.middleware.adaptation import ResolutionAdaptation
from repro.obs.telemetry import Series, Telemetry, TelemetryConfig
from repro.runner import ResultsCache, config_fingerprint, run_batch


def _resolution():
    return ResolutionAdaptation(upper=0.05, lower=0.005)


def _congested(seed=2, **kw):
    """Congested IQ scenario (same shape as the trace tests): adaptation
    fires, so coordination annotations land on the sampled series."""
    defaults = dict(transport="iq", workload="greedy", n_frames=800,
                    base_frame_size=700, cbr_bps=17.5e6, vbr_mean_bps=1e6,
                    metric_period=0.1, adaptation=_resolution, seed=seed,
                    time_cap=120.0,
                    telemetry=TelemetryConfig(cadence_s=0.05))
    defaults.update(kw)
    return ScenarioConfig(**defaults)


class TestTelemetryConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(cadence_s=0.0)
        with pytest.raises(ValueError):
            TelemetryConfig(buckets=4)
        with pytest.raises(ValueError):
            TelemetryConfig(annotations_max=-1)

    def test_repr_is_stable_for_cache_keys(self):
        # config_fingerprint uses repr(value); equal configs must produce
        # equal fingerprints and a changed cadence must change them.
        a = _congested()
        b = _congested()
        c = _congested(telemetry=TelemetryConfig(cadence_s=0.2))
        d = _congested(telemetry=None)
        assert config_fingerprint(a) == config_fingerprint(b)
        assert config_fingerprint(a) != config_fingerprint(c)
        assert config_fingerprint(a) != config_fingerprint(d)

    def test_scenario_config_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            ScenarioConfig(telemetry=0.1)


class TestSeries:
    def test_bucket_fold(self):
        s = Series("x", bucket_s=1.0, maxlen=8)
        s.add(0.1, 2.0)
        s.add(0.9, 4.0)
        s.add(2.5, 10.0)
        assert s.counts() == [2, 0, 1]
        assert s.means() == [3.0, None, 10.0]
        assert s.mins()[0] == 2.0 and s.maxs()[0] == 4.0

    def test_memory_stays_bounded_by_halving(self):
        s = Series("x", bucket_s=1.0, maxlen=16)
        for t in range(10_000):
            s.add(float(t), float(t))
        assert len(s) <= 16
        assert s.samples == 10_000
        # Aggregates survive every merge exactly.
        total = sum(b[1] for b in s._buckets if b is not None)
        assert total == sum(range(10_000))
        assert s.maxs()[-1] == 9999.0

    def test_halving_is_deterministic(self):
        a = Series("x", bucket_s=0.5, maxlen=32)
        b = Series("x", bucket_s=0.5, maxlen=32)
        for t in range(3000):
            a.add(t * 0.1, t * 0.25)
            b.add(t * 0.1, t * 0.25)
        assert a == b
        assert a.bucket_s == b.bucket_s


class TestRecorderEndToEnd:
    def test_series_and_annotations_captured(self):
        # 2000 frames (the trace tests' size): long enough under load for
        # resolution adaptation to shrink frames below the MSS and trigger
        # the coordinator's window rescale.
        res = run_scenario(_congested(n_frames=2000))
        tm = res.telemetry
        assert tm is not None
        names = tm.names()
        for expect in ("flow.cwnd", "flow.flightsize", "flow.srtt_s",
                       "flow.rto_s", "flow.loss_ratio", "flow.goodput_bps",
                       "queue.bottleneck-fwd.pkts",
                       "queue.bottleneck-fwd.drops",
                       "link.bottleneck-fwd.util"):
            assert expect in names
        assert tm.ticks > 0
        assert len(tm.series["flow.cwnd"]) > 0
        # Congestion + resolution adaptation => window rescales, each
        # annotated onto the series.
        kinds = {a["kind"] for a in tm.annotations}
        assert "window_rescale" in kinds
        util = tm.series["link.bottleneck-fwd.util"].maxs()
        assert max(v for v in util if v is not None) <= 1.5

    def test_summary_not_perturbed_by_telemetry(self):
        armed = run_scenario(_congested())
        disarmed = run_scenario(_congested(telemetry=None))
        assert armed.summary == disarmed.summary
        assert disarmed.telemetry is None

    def test_disarmed_run_has_no_recorder_events(self):
        res = run_scenario(_congested(telemetry=None))
        assert res.telemetry is None
        assert type(res.conn.sender).telemetry is None

    def test_byte_identical_across_worker_counts(self):
        cfgs = {f"s{seed}": _congested(seed=seed) for seed in (1, 2)}
        r1 = run_batch(cfgs, jobs=1, cache=False)
        r4 = run_batch(cfgs, jobs=4, cache=False)
        for key in cfgs:
            assert pickle.dumps(r1[key].telemetry) == \
                pickle.dumps(r4[key].telemetry)

    def test_byte_identical_cache_hit_vs_miss(self, tmp_path):
        cache = ResultsCache(tmp_path)
        cfg = _congested(adaptation=None)  # hashable -> cacheable
        fresh = run_batch([cfg], cache=cache)[0]
        assert cache.hits == 0
        hit = run_batch([cfg], cache=cache)[0]
        assert cache.hits == 1
        assert hit.telemetry is not None
        assert pickle.dumps(fresh.telemetry) == pickle.dumps(hit.telemetry)

    def test_annotations_bounded(self):
        tm = Telemetry(TelemetryConfig(annotations_max=2))
        tm.annotate(0.1, "a")
        tm.annotate(0.2, "b")
        tm.annotate(0.3, "c")
        assert len(tm.annotations) == 2
        assert tm.dropped_annotations == 1
