"""Unit tests for the analysis layer (stats, tables, time series)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import flow_summary, improvement, interarrival_stats
from repro.analysis.tables import fmt, render_comparison, render_table
from repro.analysis.timeseries import ascii_chart, bin_series, running_mean
from repro.middleware.receiver import DeliveryLog
from repro.sim.packet import Packet


class TestInterarrival:
    def test_regular_arrivals(self):
        mean, std = interarrival_stats(np.array([0.0, 1.0, 2.0, 3.0]))
        assert mean == pytest.approx(1.0)
        assert std == pytest.approx(0.0)

    def test_degenerate_inputs(self):
        assert interarrival_stats(np.array([])) == (0.0, 0.0)
        assert interarrival_stats(np.array([1.0])) == (0.0, 0.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e4,
                              allow_nan=False), min_size=2, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy(self, times):
        t = np.sort(np.asarray(times))
        mean, std = interarrival_stats(t)
        gaps = np.diff(t)
        assert mean == pytest.approx(float(gaps.mean()))
        assert std == pytest.approx(float(gaps.std()))


class TestFlowSummary:
    def _log(self):
        log = DeliveryLog()
        for i, t in enumerate((1.0, 2.0, 3.0, 4.0)):
            p = Packet(flow_id=1, size=1000, frame_id=i, created_at=t - 0.5,
                       tagged=(i % 2 == 0))
            log.on_deliver(p, t)
        return log

    def test_standard_keys(self):
        s = flow_summary(self._log(), submitted_datagrams=5)
        assert s["duration_s"] == 4.0
        assert s["throughput_kBps"] == pytest.approx(1.0)
        assert s["pct_received"] == pytest.approx(80.0)
        assert s["delay_ms"] == pytest.approx(1000.0)
        assert s["owd_ms"] == pytest.approx(500.0)

    def test_start_time_offsets_duration(self):
        s = flow_summary(self._log(), start_time=1.0)
        assert s["duration_s"] == 3.0

    def test_empty_log(self):
        s = flow_summary(DeliveryLog())
        assert s["throughput_kBps"] == 0.0
        assert s["pct_received"] == 0.0


class TestImprovement:
    def test_higher_is_better(self):
        assert improvement(110, 100) == pytest.approx(10.0)

    def test_lower_is_better(self):
        assert improvement(80, 100, lower_is_better=True) == pytest.approx(20.0)

    def test_zero_baseline(self):
        assert improvement(5, 0) == 0.0


class TestTables:
    def test_fmt(self):
        assert fmt(3) == "3"
        assert fmt(3.14159) == "3.14"
        assert fmt(0) == "0"
        assert fmt("x") == "x"
        assert fmt(12345.6) == "12346"

    def test_render_table_alignment(self):
        out = render_table(("a", "bbb"), [(1, 2), (33, 444)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(set(len(l) for l in lines[1:])) <= 2  # consistent width

    def test_render_comparison_contains_both(self):
        out = render_comparison("X", ("c",), [(1,)], [(2,)])
        assert "X -- paper" in out and "X -- measured" in out


class TestTimeseries:
    def test_running_mean_smooths(self):
        v = np.array([0.0, 10.0, 0.0, 10.0, 0.0, 10.0])
        sm = running_mean(v, 2)
        assert sm.std() < v.std()

    def test_running_mean_window_one_identity(self):
        v = np.arange(5.0)
        assert np.array_equal(running_mean(v, 1), v)

    def test_bin_series_means(self):
        x = np.arange(10, dtype=float)
        y = np.ones(10)
        cx, cy = bin_series(x, y, bins=5)
        assert cx.size == 5
        assert np.allclose(cy, 1.0)

    def test_bin_series_empty(self):
        cx, cy = bin_series(np.empty(0), np.empty(0), bins=5)
        assert cx.size == 0

    def test_ascii_chart_renders(self):
        x = np.linspace(0, 10, 50)
        out = ascii_chart({"sin": (x, np.sin(x)), "cos": (x, np.cos(x))},
                          title="waves", ylabel="amp")
        assert "waves" in out
        assert "*=sin" in out and "o=cos" in out
        assert "*" in out and "o" in out

    def test_ascii_chart_no_data(self):
        out = ascii_chart({}, title="empty")
        assert "no data" in out

    def test_ascii_chart_skips_nans(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([1.0, np.nan, 3.0])
        out = ascii_chart({"s": (x, y)})
        body = "\n".join(l for l in out.splitlines() if l.startswith("|"))
        assert body.count("*") == 2
