"""Unit tests for the trace bus: null-object discipline, determinism of
sequence/timestamp stamping, and pickle behaviour (the worker pool and the
persistent cache both ship objects that may hold a bus)."""

import pickle

import pytest

from repro.obs.bus import NULL_BUS, NullBus, TraceBus
from repro.obs.events import PACKET_SEND, TraceEvent
from repro.obs.sinks import RingBufferSink
from repro.sim.engine import Simulator


class PoisonedSink:
    """Raises on any append: proves the disabled path never reaches sinks."""

    def append(self, ev):
        raise AssertionError("sink touched on a disabled path")


class TestNullBus:
    def test_disabled_class_attribute(self):
        assert NullBus.enabled is False
        assert NULL_BUS.enabled is False
        # No per-instance storage: the guard is a plain class-attr load.
        assert NullBus.__slots__ == ()

    def test_emit_is_a_noop(self):
        assert NULL_BUS.emit("transport", PACKET_SEND, seq=1) == -1

    def test_pickle_preserves_singleton(self):
        clone = pickle.loads(pickle.dumps(NULL_BUS))
        assert clone is NULL_BUS

    def test_simulator_defaults_to_null_bus(self):
        assert Simulator().bus is NULL_BUS


class TestTraceBus:
    def test_emit_stamps_seq_and_sim_clock(self):
        sim = Simulator()
        sink = RingBufferSink()
        bus = TraceBus(sim, sinks=[sink])
        assert bus.enabled
        sim._now = 1.5
        first = bus.emit("transport", PACKET_SEND, seq=7, size=1400)
        sim._now = 2.0
        second = bus.emit("net", "PACKET_DROP", kind="wire")
        assert (first, second) == (0, 1)
        assert bus.events_emitted == 2
        evs = sink.events
        assert [ev.seq for ev in evs] == [0, 1]
        assert [ev.t for ev in evs] == [1.5, 2.0]
        assert evs[0].layer == "transport"
        assert evs[0].fields == {"seq": 7, "size": 1400}

    def test_fans_out_to_every_sink(self):
        sim = Simulator()
        a, b = RingBufferSink(), RingBufferSink()
        bus = TraceBus(sim, sinks=[a, b])
        bus.emit("app", "ADAPT_ACTION", trigger="upper")
        assert len(a) == len(b) == 1
        assert a.events == b.events

    def test_pickles_back_inert(self):
        bus = TraceBus(Simulator(), sinks=[RingBufferSink()])
        bus.emit("transport", PACKET_SEND)
        clone = pickle.loads(pickle.dumps(bus))
        assert clone.enabled is False
        assert clone.sinks == []
        # The hook-point pattern on the revived object is a harmless no-op.
        if clone.enabled:
            clone.emit("transport", PACKET_SEND)

    def test_disabled_guard_protects_poisoned_sink(self):
        """Every hook site is written as ``if tr.enabled: tr.emit(...)``;
        on a disabled bus the sink (even a poisoned one) is unreachable."""
        inert = pickle.loads(pickle.dumps(TraceBus(Simulator())))
        inert.sinks.append(PoisonedSink())
        for tr in (NULL_BUS, inert):
            for _ in range(100):
                if tr.enabled:
                    tr.emit("transport", PACKET_SEND)

    def test_event_pickle_roundtrip(self):
        ev = TraceEvent(3, 0.25, "coord", "COORD_ACTION",
                        {"action": "discard", "enabled": True})
        clone = pickle.loads(pickle.dumps(ev))
        assert clone == ev
        assert clone.as_obj() == {"seq": 3, "t": 0.25, "layer": "coord",
                                  "event": "COORD_ACTION",
                                  "action": "discard", "enabled": True}

    def test_untraced_run_emits_nothing(self):
        """A scenario without a trace sink keeps the null bus end to end."""
        from repro.experiments.common import ScenarioConfig, run_scenario
        res = run_scenario(ScenarioConfig(transport="iq", workload="greedy",
                                          n_frames=50, time_cap=60.0))
        assert res.completed
        assert res.conn.sender.trace is NULL_BUS
