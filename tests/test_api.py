"""Tests for the stable public facade (:mod:`repro.api`) and the shared
``--set key=value`` override parser.

The facade's contract: a :class:`~repro.api.Scenario` that constructs can
run; anything invalid fails at construction with a did-you-mean hint; and
``run``/``sweep``/``load_result`` round-trip through the batch runner and
its cache format without exposing the internal module layout.
"""

import pickle

import pytest

import repro
from repro.api import FaultSchedule, Scenario, load_result, run, sweep
from repro.cli import parse_overrides
from repro.experiments.common import ScenarioConfig, ScenarioResult
from repro.faults import Blackout


def _small(**kw) -> Scenario:
    base = dict(workload="greedy", n_frames=150, time_cap=60.0)
    base.update(kw)
    return Scenario(**base)


# ----------------------------------------------------------------------
# Scenario construction & validation
# ----------------------------------------------------------------------
def test_scenario_fields_pass_through():
    sc = _small(transport="iq", cbr_bps=8e6, seed=7)
    assert sc.transport == "iq"
    assert sc.cbr_bps == 8e6
    assert sc.seed == 7
    assert isinstance(sc.config, ScenarioConfig)


def test_unknown_field_fails_at_construction_with_hint():
    with pytest.raises(ValueError, match="did you mean 'transport'"):
        Scenario(transprot="iq")
    with pytest.raises(ValueError, match="unknown ScenarioConfig field"):
        _small().replace(bad_field=1)


def test_invalid_value_fails_at_construction():
    with pytest.raises(ValueError):
        Scenario(transport="carrier-pigeon")
    with pytest.raises(TypeError):
        Scenario(faults="not a schedule")


def test_scenario_is_immutable_and_replace_derives():
    sc = _small(transport="iq")
    with pytest.raises(AttributeError, match="immutable"):
        sc.transport = "tcp"
    other = sc.replace(transport="rudp", seed=9)
    assert isinstance(other, Scenario)
    assert other.transport == "rudp" and other.seed == 9
    assert sc.transport == "iq"  # original untouched


def test_scenario_repr_shows_non_defaults_only():
    text = repr(_small(transport="rudp"))
    assert "transport='rudp'" in text
    assert "rtt_s" not in text  # default field stays out of the repr


def test_missing_attribute_error_names_the_field():
    with pytest.raises(AttributeError, match="no_such"):
        _small().no_such


def test_facade_accepts_schedules():
    sched = FaultSchedule(Blackout(start=1.0, stop=2.0))
    assert _small(faults=sched).faults is sched


def test_package_root_reexports_the_facade():
    assert repro.Scenario is Scenario
    assert repro.run is run


# ----------------------------------------------------------------------
# run / sweep / load_result
# ----------------------------------------------------------------------
def test_run_and_sweep_execute_and_agree(tmp_path):
    sc = _small(seed=3)
    res = run(sc, cache=False)
    assert isinstance(res, ScenarioResult)
    assert res.completed
    batch = sweep({"a": sc, "b": sc.replace(n_frames=200)}, jobs=2,
                  cache=False)
    assert list(batch) == ["a", "b"]
    assert batch["a"].summary == res.summary  # same config, same numbers
    assert batch["b"].summary != res.summary


def test_run_accepts_raw_config_and_rejects_other_types():
    cfg = ScenarioConfig(workload="greedy", n_frames=150, time_cap=60.0)
    assert run(cfg, cache=False).completed
    with pytest.raises(TypeError, match="expected a Scenario"):
        run({"transport": "iq"})


def test_load_result_round_trip_and_type_check(tmp_path):
    res = run(_small(seed=5), cache=False)
    good = tmp_path / "res.pkl"
    with open(good, "wb") as fh:
        pickle.dump(res.detach(), fh)
    loaded = load_result(good)
    assert isinstance(loaded, ScenarioResult)
    assert loaded.summary == res.summary

    bad = tmp_path / "other.pkl"
    with open(bad, "wb") as fh:
        pickle.dump({"not": "a result"}, fh)
    with pytest.raises(TypeError, match="not a\n?.*ScenarioResult|holds"):
        load_result(bad)
    with pytest.raises(FileNotFoundError):
        load_result(tmp_path / "missing.pkl")


# ----------------------------------------------------------------------
# The shared --set override parser
# ----------------------------------------------------------------------
def test_parse_overrides_literals_and_strings():
    out = parse_overrides(["cbr_bps=16e6", "seed=3", "workload=greedy",
                           "adaptation=None", "rates=(2.0, 1e6)"])
    assert out == {"cbr_bps": 16e6, "seed": 3, "workload": "greedy",
                   "adaptation": None, "rates": (2.0, 1e6)}


def test_parse_overrides_empty_and_malformed():
    assert parse_overrides(None) is None
    assert parse_overrides([]) is None
    with pytest.raises(SystemExit):
        parse_overrides(["noequalsign"])
    with pytest.raises(SystemExit):
        parse_overrides(["=value"])


def test_parse_overrides_feed_scenario_validation():
    out = parse_overrides(["transprot=iq"])
    with pytest.raises(ValueError, match="did you mean"):
        _small().replace(**out)


# ----------------------------------------------------------------------
# sweep() input forms (the generalised collection API)
# ----------------------------------------------------------------------
def test_sweep_accepts_list_and_generator_in_order():
    tiny = _small(n_frames=5)
    scs = [tiny.replace(seed=s) for s in (3, 1, 2)]
    as_list = sweep(scs, cache=False)
    assert isinstance(as_list, list) and len(as_list) == 3
    as_gen = sweep((sc for sc in scs), cache=False)
    # Insertion order, not seed order -- and both forms agree.
    assert [r.summary for r in as_gen] == [r.summary for r in as_list]


def test_sweep_scenarios_keyword_is_deprecated_but_works():
    tiny = _small(n_frames=5)
    with pytest.warns(DeprecationWarning, match="positionally"):
        out = sweep(scenarios={"a": tiny}, cache=False)
    assert list(out) == ["a"]
    with pytest.raises(TypeError, match="both positionally and"):
        sweep([tiny], scenarios=[tiny])
    with pytest.raises(TypeError, match="missing required argument"):
        sweep()


def test_sweep_rejects_single_scenario_and_non_iterables():
    with pytest.raises(TypeError, match="single scenario use run"):
        sweep(_small())
    with pytest.raises(TypeError, match="mapping or iterable"):
        sweep(42)


# ----------------------------------------------------------------------
# Campaign facade re-exports
# ----------------------------------------------------------------------
def test_package_root_reexports_campaign_api():
    from repro.api import Campaign, load_campaign, run_campaign
    assert repro.Campaign is Campaign
    assert repro.run_campaign is run_campaign
    assert repro.load_campaign is load_campaign


def test_campaign_facade_round_trip():
    camp = repro.load_campaign({
        "name": "facade",
        "template": {"workload": "greedy", "n_frames": 5,
                     "time_cap": 30.0},
        "axes": {"transport": ["tcp", "iq"]},
    })
    assert isinstance(camp, repro.Campaign)
    run_ = repro.run_campaign(camp, cache=False)
    assert run_.complete and len(run_.results) == 2
