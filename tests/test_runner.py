"""Tests for the batch runner and persistent results cache.

The contract under test: worker count never changes results (bit-identical
metrics for a fixed seed), cache hits are indistinguishable from fresh
runs, and cache keys react to exactly the inputs that could change a
result (config fields, code version) and nothing else.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.common import ScenarioConfig
from repro.middleware.adaptation import MarkingAdaptation
from repro.runner import (ResultsCache, code_salt, config_fingerprint,
                          config_key, memo, run_batch, run_one)
from repro.runner import cache as cache_mod


def _small(**kw) -> ScenarioConfig:
    base = dict(workload="greedy", n_frames=150, time_cap=60.0)
    base.update(kw)
    return ScenarioConfig(**base)


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def test_config_key_stable_across_instances():
    assert config_key(_small(seed=3)) == config_key(_small(seed=3))


def test_config_key_sensitive_to_every_field_change():
    base = _small()
    for kw in (dict(seed=2), dict(n_frames=151), dict(transport="rudp"),
               dict(cbr_bps=1e6), dict(rtt_s=0.05),
               dict(adaptation=MarkingAdaptation)):
        assert config_key(base.replace(**kw)) != config_key(base), kw


def test_lambda_adaptation_is_uncacheable_but_runs():
    cfg = _small(transport="iq",
                 adaptation=lambda: MarkingAdaptation(upper=0.5, lower=0.1))
    assert config_fingerprint(cfg) is None
    assert config_key(cfg) is None
    res = run_one(cfg)  # must still execute, just bypassing the cache
    assert res.completed


def test_code_salt_is_memoised_and_nonempty():
    assert code_salt() and code_salt() == code_salt()


# ----------------------------------------------------------------------
# Parallel determinism
# ----------------------------------------------------------------------
def test_parallel_results_bit_identical_to_serial():
    cfgs = {s: _small(seed=s, cbr_bps=8e6) for s in (1, 2, 3, 4)}
    serial = run_batch(cfgs, jobs=1, cache=False)
    parallel = run_batch(cfgs, jobs=4, cache=False)
    assert list(serial) == list(parallel)
    for k in cfgs:
        assert serial[k].summary == parallel[k].summary


def test_run_batch_preserves_mapping_order_and_sequence_shape():
    cfgs = {"b": _small(seed=2), "a": _small(seed=1)}
    out = run_batch(cfgs, cache=False)
    assert list(out) == ["b", "a"]
    seq = run_batch([_small(seed=1)], cache=False)
    assert isinstance(seq, list) and len(seq) == 1


def test_run_batch_rejects_nonpositive_or_nonint_jobs():
    cfgs = [_small(seed=1)]
    for bad in (0, -3, True, 2.5, "4"):
        with pytest.raises(ValueError, match="jobs"):
            run_batch(cfgs, jobs=bad, cache=False)
    # jobs=None keeps meaning "serial" for keyword-forwarding callers.
    assert run_batch(cfgs, jobs=None, cache=False)[0].completed


# ----------------------------------------------------------------------
# Persistent cache
# ----------------------------------------------------------------------
def test_cache_hit_equals_fresh_run(tmp_path):
    store = ResultsCache(tmp_path)
    cfg = _small(seed=7)
    fresh = run_batch([cfg], cache=store)[0]
    assert store.misses >= 1
    hits_before = store.hits
    again = run_batch([cfg], cache=store)[0]
    assert store.hits == hits_before + 1
    assert again.summary == fresh.summary
    assert len(again.log) == len(fresh.log)
    assert (again.conn.sender.stats.submitted_segments
            == fresh.conn.sender.stats.submitted_segments)


def test_cached_results_survive_pickle_roundtrip(tmp_path):
    res = run_batch([_small(seed=9)], cache=ResultsCache(tmp_path))[0]
    clone = pickle.loads(pickle.dumps(res))
    assert clone.summary == res.summary


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    store = ResultsCache(tmp_path)
    cfg = _small(seed=5)
    key = config_key(cfg)
    store.put(key, run_one(cfg, cache=False))  # seed a valid entry
    store.path_for(key).write_bytes(b"not a pickle")
    assert store.get(key) is None
    res = run_batch([cfg], cache=store)[0]  # recomputes and heals the entry
    assert res.completed
    assert store.get(key) is not None


def test_env_dir_and_no_cache_opt_out(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_DIR, str(tmp_path / "envcache"))
    cfg = _small(seed=11)
    run_batch([cfg])
    files = list((tmp_path / "envcache").glob("*.pkl"))
    assert len(files) == 1

    monkeypatch.setenv(cache_mod.ENV_OFF, "1")
    other = _small(seed=12)
    run_batch([other])
    assert len(list((tmp_path / "envcache").glob("*.pkl"))) == 1  # unchanged


def test_cache_get_type_mismatch_is_a_miss(tmp_path):
    from repro.experiments.common import ScenarioResult
    store = ResultsCache(tmp_path)
    key = "k" * 40
    store.put(key, {"stale": "payload of the wrong shape"})
    misses_before = store.misses
    assert store.get(key, expect=ScenarioResult) is None
    assert store.misses == misses_before + 1
    assert store.hits == 0
    # Without the expectation the (corrupt-but-unpicklable) value loads.
    assert store.get(key) == {"stale": "payload of the wrong shape"}


def test_cache_put_oserror_degrades_to_one_warning(tmp_path):
    import warnings as warnings_mod
    blocker = tmp_path / "blocker"
    blocker.write_text("a regular file where the cache dir should go")
    # mkdir under a regular file raises NotADirectoryError (an OSError)
    # even for root, unlike permission bits.
    store = ResultsCache(blocker / "cache")
    with pytest.warns(RuntimeWarning, match="not writable"):
        store.put("a" * 40, {"v": 1})
    with warnings_mod.catch_warnings():
        warnings_mod.simplefilter("error")  # a second warning would raise
        store.put("b" * 40, {"v": 2})  # silent no-op: already degraded
    assert store.get("a" * 40) is None  # nothing was stored


def test_unwritable_cache_does_not_kill_the_batch(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("x")
    store = ResultsCache(blocker / "cache")
    with pytest.warns(RuntimeWarning, match="not writable"):
        res = run_batch([_small(seed=21)], cache=store)[0]
    assert res.completed  # computed fresh, uncached


def test_cache_put_unpicklable_payload_still_raises(tmp_path):
    store = ResultsCache(tmp_path)
    with pytest.raises((pickle.PicklingError, TypeError, AttributeError)):
        store.put("c" * 40, lambda: None)  # caller bug, not environment
    assert not list(tmp_path.glob("*.tmp"))  # no litter left behind


# ----------------------------------------------------------------------
# memo() -- the bench-conftest entry point
# ----------------------------------------------------------------------
def test_memo_runs_once_across_sessions(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_DIR, str(tmp_path))
    calls = []

    def fn():
        calls.append(1)
        return {"rows": (1, 2, 3)}

    assert memo("tkey", fn) == {"rows": (1, 2, 3)}
    # Fresh call with no in-memory state: must come from disk.
    assert memo("tkey", fn) == {"rows": (1, 2, 3)}
    assert len(calls) == 1


def test_memo_detaches_nested_results(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_DIR, str(tmp_path))

    def fn():
        from repro.experiments.common import run_scenario
        return {"row": run_scenario(_small(seed=13))}

    out = memo("nested", fn)
    assert out["row"].sim.pending() == 0  # detached
    again = memo("nested", lambda: pytest.fail("should be cached"))
    assert again["row"].summary == out["row"].summary


def test_memo_respects_no_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_DIR, str(tmp_path))
    monkeypatch.setenv(cache_mod.ENV_OFF, "1")
    calls = []

    def fn():
        calls.append(1)
        return 42

    assert memo("off", fn) == 42
    assert memo("off", fn) == 42
    assert len(calls) == 2
    assert not list(tmp_path.glob("*.pkl"))


# ----------------------------------------------------------------------
# Experiment helpers fan out through the runner
# ----------------------------------------------------------------------
def test_table_helper_parallel_matches_serial(tmp_path):
    from repro.experiments.baseline import run_table2
    a = run_table2(n_frames=150, jobs=1, cache=False)
    b = run_table2(n_frames=150, jobs=2, cache=False)
    assert list(a) == list(b) == ["TCP", "IQ-RUDP"]
    for k in a:
        assert a[k].summary == b[k].summary


def test_table6_reshapes_flat_batch(tmp_path):
    from repro.experiments.overreaction import run_table6
    out = run_table6(rates_mbps=(12,), n_frames=150, jobs=2,
                     cache=ResultsCache(tmp_path))
    assert set(out) == {12}
    assert set(out[12]) == {"IQ-RUDP", "RUDP"}
