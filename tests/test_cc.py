"""Unit tests for the congestion-control laws (Reno, LDA, fixed window)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.cc import FixedWindowCC, RenoCC
from repro.transport.lda import LdaCC


class TestReno:
    def test_slow_start_doubles_per_window(self):
        cc = RenoCC(initial_cwnd=2, initial_ssthresh=64)
        cc.on_ack(2)
        assert cc.cwnd == 4.0

    def test_congestion_avoidance_linear(self):
        cc = RenoCC(initial_cwnd=10, initial_ssthresh=5)
        before = cc.cwnd
        cc.on_ack(1)
        assert cc.cwnd == pytest.approx(before + 1.0 / before)

    def test_fast_retransmit_halves(self):
        cc = RenoCC(initial_cwnd=20, initial_ssthresh=64)
        cc.on_fast_retransmit(inflight=20)
        assert cc.ssthresh == 10.0
        assert cc.cwnd == 13.0  # ssthresh + 3 (inflation)

    def test_recovery_inflation_and_exit(self):
        cc = RenoCC(initial_cwnd=20)
        cc.on_fast_retransmit(inflight=20)
        cc.on_dupack_in_recovery()
        cc.on_dupack_in_recovery()
        assert cc.cwnd == 15.0
        cc.on_recovery_exit()
        assert cc.cwnd == 10.0

    def test_timeout_collapses_to_min(self):
        cc = RenoCC(initial_cwnd=30)
        cc.on_timeout(inflight=30)
        assert cc.cwnd == cc.min_cwnd
        assert cc.ssthresh == 15.0

    def test_ssthresh_floor_is_two(self):
        cc = RenoCC(initial_cwnd=2)
        cc.on_timeout(inflight=1)
        assert cc.ssthresh == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RenoCC(initial_cwnd=0)


class TestLda:
    def test_needs_epochs(self):
        assert LdaCC.needs_epochs and not RenoCC.needs_epochs

    def test_acks_do_not_change_window(self):
        cc = LdaCC(initial_cwnd=10, initial_ssthresh=5)
        cc.on_ack(100)
        assert cc.cwnd == 10.0

    def test_lossfree_epoch_grows_additively_after_startup(self):
        cc = LdaCC(initial_cwnd=10, initial_ssthresh=5)
        cc.on_epoch(sent=100, lost=0, rtt=0.03)
        assert cc.cwnd == 11.0

    def test_startup_doubles(self):
        cc = LdaCC(initial_cwnd=2, initial_ssthresh=64)
        cc.on_epoch(sent=10, lost=0, rtt=0.03)
        assert cc.cwnd == 4.0

    def test_loss_epoch_decreases_proportionally(self):
        cc = LdaCC(initial_cwnd=100, initial_ssthresh=5)
        cc.on_epoch(sent=100, lost=10, rtt=0.03)
        assert cc.cwnd == pytest.approx(90.0)

    def test_decrease_capped(self):
        cc = LdaCC(initial_cwnd=100, initial_ssthresh=5, max_decrease=0.5)
        cc.on_epoch(sent=100, lost=90, rtt=0.03)
        assert cc.cwnd == pytest.approx(50.0)

    def test_cooldown_prevents_compounding(self):
        """A loss burst straddling two epochs must cut the window once."""
        cc = LdaCC(initial_cwnd=100, initial_ssthresh=5)
        cc.on_epoch(sent=100, lost=30, rtt=0.03)
        after_first = cc.cwnd
        cc.on_epoch(sent=100, lost=30, rtt=0.03)  # cooldown epoch
        assert cc.cwnd == after_first
        cc.on_epoch(sent=100, lost=30, rtt=0.03)  # cuts again
        assert cc.cwnd < after_first

    def test_lossfree_epoch_clears_cooldown(self):
        cc = LdaCC(initial_cwnd=100, initial_ssthresh=5)
        cc.on_epoch(sent=100, lost=30, rtt=0.03)
        cc.on_epoch(sent=100, lost=0, rtt=0.03)
        w = cc.cwnd
        cc.on_epoch(sent=100, lost=30, rtt=0.03)
        assert cc.cwnd < w

    def test_empty_epoch_ignored(self):
        cc = LdaCC(initial_cwnd=10, initial_ssthresh=5)
        cc.on_epoch(sent=0, lost=0, rtt=0.03)
        assert cc.cwnd == 10.0

    def test_timeout_enters_ramp(self):
        cc = LdaCC(initial_cwnd=40, initial_ssthresh=5)
        cc.on_timeout(inflight=40)
        assert cc.cwnd == cc.min_cwnd
        assert cc.ssthresh == 20.0
        # Doubling ramp back toward ssthresh.
        cc.on_epoch(sent=10, lost=0, rtt=0.03)  # cooldown clears, doubles
        cc.on_epoch(sent=10, lost=0, rtt=0.03)
        assert cc.cwnd > cc.min_cwnd

    def test_min_cwnd_floor(self):
        cc = LdaCC(initial_cwnd=2)
        for _ in range(10):
            cc.on_epoch(sent=10, lost=9, rtt=0.03)
        assert cc.cwnd >= cc.min_cwnd

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                              st.integers(min_value=0, max_value=1000)),
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_window_bounded_under_any_epoch_sequence(self, epochs):
        """Invariant: the window stays within [min_cwnd, max_cwnd]."""
        cc = LdaCC(initial_cwnd=4, max_cwnd=256)
        for sent, lost in epochs:
            cc.on_epoch(sent=sent, lost=min(lost, sent), rtt=0.03)
            assert cc.min_cwnd <= cc.cwnd <= cc.max_cwnd


class TestScaleWindow:
    def test_scale_clamps_per_event(self):
        cc = LdaCC(initial_cwnd=10, initial_ssthresh=5)
        cc.scale_window(100.0)
        assert cc.cwnd == 40.0  # factor clamped to 4x

    def test_scale_down_clamped(self):
        cc = LdaCC(initial_cwnd=10)
        cc.scale_window(0.01)
        assert cc.cwnd == pytest.approx(2.5)  # 0.25x floor

    def test_scale_respects_bounds(self):
        cc = LdaCC(initial_cwnd=2, min_cwnd=2)
        cc.scale_window(0.25)
        assert cc.cwnd == 2.0

    def test_reinflation_matches_resolution_cut(self):
        """w * 1/(1-rate_chg) restores the byte rate after a size cut."""
        cc = LdaCC(initial_cwnd=30, initial_ssthresh=5)
        rate_chg = 0.25
        cc.scale_window(1.0 / (1.0 - rate_chg))
        assert cc.cwnd == pytest.approx(40.0)


class TestFixedWindow:
    def test_window_immutable(self):
        cc = FixedWindowCC(32)
        cc.on_ack(100)
        cc.on_timeout(10)
        cc.on_fast_retransmit(10)
        cc.scale_window(2.0)
        assert cc.cwnd == 32.0
