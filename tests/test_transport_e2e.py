"""End-to-end transport tests on the dumbbell: delivery, ordering,
retransmission, congestion response, skips, EACK."""

import pytest

from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.link import BernoulliLoss
from repro.sim.topology import Dumbbell
from repro.transport.iq_rudp import IqRudpConnection
from repro.transport.rudp import RudpConnection
from repro.transport.tcp import TcpConnection


def make(conn_cls, *, queue_pkts=64, rtt=0.03, **kw):
    sim = Simulator()
    net = Dumbbell(sim, queue_pkts=queue_pkts, rtt_s=rtt)
    snd, rcv = net.add_flow_hosts("t")
    log = DeliveryLog()
    conn = conn_cls(sim, snd, rcv, on_deliver=log.on_deliver, **kw)
    return sim, net, conn, log


@pytest.mark.parametrize("cls", [TcpConnection, RudpConnection,
                                 IqRudpConnection])
def test_small_transfer_delivers_everything(cls):
    sim, net, conn, log = make(cls)
    for i in range(20):
        conn.submit(1000, frame_id=i)
    conn.finish()
    sim.run(until=10.0)
    assert conn.completed
    assert len(log) == 20
    assert log.total_bytes == 20_000


@pytest.mark.parametrize("cls", [TcpConnection, RudpConnection])
def test_large_frames_are_segmented_and_reassembled(cls):
    sim, net, conn, log = make(cls)
    conn.submit(10_000, frame_id=0)  # 8 segments at MSS 1400
    conn.finish()
    sim.run(until=10.0)
    assert conn.completed
    assert len(log) == 8
    assert log.total_bytes == 10_000
    assert log.message_times().size == 1  # one frame completion


@pytest.mark.parametrize("cls", [TcpConnection, RudpConnection])
def test_in_order_delivery_under_queue_loss(cls):
    """Overflow the 8-packet bottleneck queue; everything still arrives
    exactly once and in order."""
    sim, net, conn, log = make(cls, queue_pkts=8)
    n = 2500
    for i in range(n):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=120.0)
    assert conn.completed
    assert net.bottleneck_queue.stats.drops > 0  # loss really happened
    assert list(log.frame_ids) == list(range(n))
    assert conn.sender.stats.retransmissions > 0


@pytest.mark.parametrize("cls", [TcpConnection, RudpConnection])
def test_survives_random_wire_loss(cls):
    import random
    sim, net, conn, log = make(cls)
    net.forward.loss = BernoulliLoss(0.05, random.Random(3))
    n = 200
    for i in range(n):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=120.0)
    assert conn.completed
    assert list(log.frame_ids) == list(range(n))


def test_ack_path_loss_recovers_via_rto():
    import random
    sim, net, conn, log = make(RudpConnection)
    net.backward.loss = BernoulliLoss(0.3, random.Random(5))
    for i in range(50):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=120.0)
    assert conn.completed
    assert len(log) == 50


def test_window_limits_inflight():
    sim, net, conn, log = make(RudpConnection)
    for i in range(500):
        conn.submit(1400, frame_id=i)
    s = conn.sender
    assert s.inflight <= s.window_limit
    sim.run(max_events=200)
    assert s.inflight <= s.window_limit


def test_rudp_skips_unmarked_losses_within_tolerance():
    sim, net, conn, log = make(RudpConnection, queue_pkts=8,
                               loss_tolerance=0.5)
    n = 2500
    for i in range(n):
        # Every 5th datagram marked; others droppable.
        conn.submit(1400, marked=(i % 5 == 0), frame_id=i)
    conn.finish()
    sim.run(until=120.0)
    assert conn.completed
    st = conn.sender.stats
    assert st.skips_sent > 0
    # All marked datagrams arrived.
    delivered = set(log.frame_ids)
    assert all(i in delivered for i in range(0, n, 5))
    # Skipped ones were counted at the receiver.
    assert conn.receiver.stats.skipped_received == st.skips_sent


def test_rudp_full_reliability_when_tolerance_none():
    sim, net, conn, log = make(RudpConnection, queue_pkts=8)
    for i in range(200):
        conn.submit(1400, marked=False, frame_id=i)
    conn.finish()
    sim.run(until=60.0)
    assert conn.completed
    assert len(log) == 200
    assert conn.sender.stats.skips_sent == 0


def test_discard_unmarked_never_transmits():
    sim, net, conn, log = make(IqRudpConnection, loss_tolerance=0.9)
    conn.sender.discard_unmarked = True
    for i in range(100):
        conn.submit(1000, marked=(i % 2 == 0), frame_id=i)
    conn.finish()
    sim.run(until=30.0)
    assert conn.completed
    st = conn.sender.stats
    assert st.discarded_msgs == 50
    assert len(log) == 50
    assert all(f % 2 == 0 for f in log.frame_ids)


def test_rtt_estimate_close_to_path_rtt():
    sim, net, conn, log = make(RudpConnection)
    for i in range(100):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=30.0)
    assert conn.completed
    assert 0.028 < conn.sender.rtt.rtt < 0.08  # 30 ms path + queueing


def test_metrics_exported_during_transfer():
    from repro.core.attributes import NET_CWND, NET_RATE
    sim, net, conn, log = make(RudpConnection)
    for i in range(200):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=30.0)
    assert conn.query_metric(NET_CWND) > 0
    assert conn.query_metric(NET_RATE) > 0


def test_callbacks_fire_on_congestion():
    sim, net, conn, log = make(RudpConnection, queue_pkts=6,
                               metric_period=0.1)
    fired = []
    conn.register_callbacks(upper=0.01, lower=0.001,
                            on_upper=lambda e, m: fired.append(e) or None)
    for i in range(800):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=60.0)
    assert fired, "congestion never reported to the application"


def test_long_rtt_path():
    sim, net, conn, log = make(RudpConnection, rtt=0.25)
    for i in range(50):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=60.0)
    assert conn.completed
    assert conn.sender.rtt.rtt > 0.2


def test_submit_after_finish_rejected():
    sim, net, conn, log = make(RudpConnection)
    conn.submit(100)
    conn.finish()
    with pytest.raises(RuntimeError):
        conn.submit(100)


def test_zero_size_rejected():
    sim, net, conn, log = make(RudpConnection)
    with pytest.raises(ValueError):
        conn.submit(0)


def test_eack_repairs_bursts_without_rto_storms():
    """Sustained queue-overflow bursts are repaired by EACK/fast
    retransmit; the RTO stays a rare backstop (tail losses only) --
    regression guard for the repair pacing logic."""
    sim, net, conn, log = make(RudpConnection, queue_pkts=8)
    for i in range(2500):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=120.0)
    assert conn.completed
    st = conn.sender.stats
    assert st.retransmissions > 50          # losses really happened
    assert st.fast_retransmits > 0          # loss events repaired via ACKs
    assert st.timeouts <= st.retransmissions * 0.1 + 2
