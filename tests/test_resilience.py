"""Tests for resilient sweep execution (ISSUE 4 tentpole part 1).

The contract: one insane scenario in a batch becomes one typed
``FailedResult`` row -- never a dead batch, never a poisoned cache entry,
never a silently-averaged number.  Hung workers are killed at the
per-scenario timeout, transient failures (timeout / worker-lost) retry
with backoff while deterministic crashes do not, and a checkpoint journal
makes an interrupted sweep resumable with byte-identical results.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.experiments.common import ScenarioConfig, ScenarioResult
from repro.middleware.adaptation import MarkingAdaptation
from repro.runner import (BatchExecutionError, FailedResult, ResultsCache,
                          SweepJournal, config_key, run_batch)
from repro.runner.failures import TRANSIENT_KINDS


def _small(**kw) -> ScenarioConfig:
    base = dict(transport="iq", workload="fixed_clocked", n_frames=40,
                time_cap=20.0)
    base.update(kw)
    return ScenarioConfig(**base)


# Module-level adaptation factories: dotted-name fingerprints keep the
# configs cacheable/journalable, and fork-started workers see them as-is.
def boom_adaptation():
    raise RuntimeError("deliberate scenario crash (test fixture)")


def hang_adaptation():
    time.sleep(300)


def die_once_adaptation():
    """Kill the worker hard on first construction; succeed afterwards.

    ``os._exit`` bypasses the supervisor's exception channel entirely, so
    the parent sees pipe EOF -- the transient ``worker-lost`` kind.
    """
    sentinel = os.environ["REPRO_TEST_DIE_ONCE"]
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(3)
    return MarkingAdaptation()


def counting_adaptation():
    with open(os.environ["REPRO_TEST_RUN_COUNTER"], "a") as fh:
        fh.write("x\n")
    return MarkingAdaptation()


# ----------------------------------------------------------------------
# Crash isolation
# ----------------------------------------------------------------------
def test_capture_turns_crash_into_failed_result_row():
    cfgs = [_small(seed=1), _small(seed=2, adaptation=boom_adaptation),
            _small(seed=3)]
    out = run_batch(cfgs, jobs=1, cache=False, on_error="capture")
    assert isinstance(out[0], ScenarioResult)
    assert isinstance(out[2], ScenarioResult)
    bad = out[1]
    assert isinstance(bad, FailedResult)
    assert bad.failed and not bad.completed
    assert bad.kind == "error" and not bad.transient
    assert bad.error_type == "RuntimeError"
    assert "deliberate scenario crash" in bad.message
    assert "boom_adaptation" in (bad.traceback or "")
    assert bad.attempts == 1


def test_failed_result_summary_access_raises():
    [bad] = run_batch([_small(adaptation=boom_adaptation)], jobs=1,
                      cache=False, on_error="capture")
    with pytest.raises(BatchExecutionError) as ei:
        bad.summary
    assert "deliberate scenario crash" in str(ei.value)
    assert ei.value.failure is bad
    with pytest.raises(BatchExecutionError):
        bad["duration_s"]
    assert bad.detach() is bad  # detach (pool plumbing) must not raise


def test_legacy_raise_path_propagates_original_exception():
    # No resilience features requested -> historical behaviour unchanged:
    # the worker's own exception type, not a wrapper.
    with pytest.raises(RuntimeError, match="deliberate scenario crash"):
        run_batch([_small(adaptation=boom_adaptation)], jobs=1, cache=False)


def test_resilient_raise_path_wraps_with_traceback():
    with pytest.raises(BatchExecutionError) as ei:
        run_batch([_small(adaptation=boom_adaptation)], jobs=1,
                  cache=False, timeout=60.0)
    assert "boom_adaptation" in str(ei.value)  # worker traceback embedded


def test_failed_result_pickles_across_processes():
    [bad] = run_batch([_small(adaptation=boom_adaptation)], jobs=2,
                      cache=False, on_error="capture", timeout=60.0)
    clone = pickle.loads(pickle.dumps(bad))
    assert clone.kind == bad.kind and clone.message == bad.message


# ----------------------------------------------------------------------
# Timeouts and retries
# ----------------------------------------------------------------------
def test_hung_scenario_is_killed_at_timeout():
    cfgs = [_small(seed=1), _small(seed=2, adaptation=hang_adaptation)]
    t0 = time.monotonic()
    out = run_batch(cfgs, jobs=2, cache=False, on_error="capture",
                    timeout=1.5)
    elapsed = time.monotonic() - t0
    assert isinstance(out[0], ScenarioResult)
    assert isinstance(out[1], FailedResult)
    assert out[1].kind == "timeout" and out[1].transient
    assert out[1].elapsed_s >= 1.0
    assert elapsed < 60  # nowhere near the fixture's 300s sleep


def test_worker_lost_is_transient_and_retried(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_DIE_ONCE", str(tmp_path / "died"))
    cfg = _small(adaptation=die_once_adaptation)
    store = ResultsCache(tmp_path / "cache")
    [res] = run_batch([cfg], jobs=1, cache=store, on_error="capture",
                      timeout=60.0, retries=2, retry_backoff_s=0.01)
    assert (tmp_path / "died").exists()  # first attempt really died
    assert isinstance(res, ScenarioResult) and res.completed
    # Cache-poisoning check: the retried-then-successful scenario stored
    # exactly one entry, under its own key.
    entries = list((tmp_path / "cache").glob("*.pkl"))
    assert len(entries) == 1
    assert store.get(config_key(cfg), expect=ScenarioResult) is not None


def test_worker_lost_without_retries_fails(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_DIE_ONCE", str(tmp_path / "died"))
    [res] = run_batch([_small(adaptation=die_once_adaptation)], jobs=1,
                      cache=False, on_error="capture", timeout=60.0)
    assert isinstance(res, FailedResult)
    assert res.kind == "worker-lost"
    assert res.kind in TRANSIENT_KINDS
    assert res.attempts == 1


def test_deterministic_crash_is_not_retried():
    [bad] = run_batch([_small(adaptation=boom_adaptation)], jobs=1,
                      cache=False, on_error="capture", timeout=60.0,
                      retries=3, retry_backoff_s=0.01)
    assert isinstance(bad, FailedResult)
    assert bad.kind == "error"
    assert bad.attempts == 1  # retry budget is for transients only


# ----------------------------------------------------------------------
# Cache poisoning
# ----------------------------------------------------------------------
def test_crashed_scenario_never_leaves_a_cache_entry(tmp_path):
    store = ResultsCache(tmp_path)
    cfg = _small(adaptation=boom_adaptation)
    key = config_key(cfg)
    assert key is not None  # module-level factory => cacheable config
    [bad] = run_batch([cfg], jobs=1, cache=store, on_error="capture")
    assert isinstance(bad, FailedResult)
    assert store.get(key) is None
    assert not list(tmp_path.glob("*.pkl"))


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def test_checkpoint_resume_skips_completed_rows(tmp_path, monkeypatch):
    counter = tmp_path / "runs"
    monkeypatch.setenv("REPRO_TEST_RUN_COUNTER", str(counter))
    ckpt = tmp_path / "sweep.ckpt"
    cfgs = {"a": _small(seed=1, adaptation=counting_adaptation),
            "b": _small(seed=2, adaptation=counting_adaptation)}

    first = run_batch(cfgs, jobs=1, cache=False, checkpoint=ckpt)
    assert counter.read_text().count("x") == 2
    size_after_first = ckpt.stat().st_size
    assert size_after_first > 0

    again = run_batch(cfgs, jobs=1, cache=False, checkpoint=ckpt)
    assert counter.read_text().count("x") == 2  # nothing recomputed
    assert ckpt.stat().st_size == size_after_first  # nothing re-journaled
    for label in cfgs:
        assert again[label].summary == first[label].summary
        assert pickle.dumps(again[label].summary) == \
            pickle.dumps(first[label].summary)


def test_checkpoint_extends_to_superset_batch(tmp_path, monkeypatch):
    counter = tmp_path / "runs"
    monkeypatch.setenv("REPRO_TEST_RUN_COUNTER", str(counter))
    ckpt = tmp_path / "sweep.ckpt"
    a, b = (_small(seed=1, adaptation=counting_adaptation),
            _small(seed=2, adaptation=counting_adaptation))
    run_batch([a], jobs=1, cache=False, checkpoint=ckpt)
    out = run_batch([a, b], jobs=1, cache=False, checkpoint=ckpt)
    assert counter.read_text().count("x") == 2  # only b computed fresh
    assert all(isinstance(r, ScenarioResult) for r in out)


def test_journal_truncates_torn_tail(tmp_path):
    ckpt = tmp_path / "sweep.ckpt"
    cfg = _small(seed=5)
    run_batch([cfg], jobs=1, cache=False, checkpoint=ckpt)
    good_size = ckpt.stat().st_size
    with open(ckpt, "ab") as fh:
        fh.write(b"\x80\x05torn-frame-garbage")
    loaded = SweepJournal(ckpt).load()
    assert len(loaded) == 1
    assert ckpt.stat().st_size == good_size  # tail truncated on load
    key = config_key(cfg)
    assert isinstance(loaded[key], ScenarioResult)


def test_failed_rows_are_not_journaled(tmp_path):
    ckpt = tmp_path / "sweep.ckpt"
    cfgs = [_small(seed=1), _small(seed=2, adaptation=boom_adaptation)]
    out = run_batch(cfgs, jobs=1, cache=False, on_error="capture",
                    checkpoint=ckpt)
    assert isinstance(out[1], FailedResult)
    loaded = SweepJournal(ckpt).load()
    assert len(loaded) == 1  # only the good row resumes
    assert all(isinstance(v, ScenarioResult) for v in loaded.values())


# ----------------------------------------------------------------------
# Parallel capture determinism
# ----------------------------------------------------------------------
def test_capture_results_identical_across_worker_counts():
    cfgs = [_small(seed=s) for s in (1, 2, 3)]
    cfgs.insert(1, _small(seed=9, adaptation=boom_adaptation))
    serial = run_batch(cfgs, jobs=1, cache=False, on_error="capture")
    par = run_batch(cfgs, jobs=3, cache=False, on_error="capture",
                    timeout=120.0)
    for s, p in zip(serial, par):
        assert isinstance(s, FailedResult) == isinstance(p, FailedResult)
        if isinstance(s, FailedResult):
            assert s.kind == p.kind
        else:
            assert s.summary == p.summary
