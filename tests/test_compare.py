"""Run-diff tests: first-divergence location, artifact loading, the
identical-vs-perturbed contract, and the ``repro compare`` exit codes."""

import pickle

import pytest

from repro.analysis.timeseries import first_divergence, series_xy
from repro.experiments.common import ScenarioConfig, run_scenario
from repro.obs.compare import (compare_artifacts, compare_summaries,
                               compare_telemetry, compare_traces,
                               load_artifact, render_comparison_report)
from repro.obs.telemetry import Series, TelemetryConfig
from repro.runner import run_batch


def _cfg(**kw):
    defaults = dict(transport="iq", workload="greedy", n_frames=300,
                    base_frame_size=700, cbr_bps=17.5e6, metric_period=0.1,
                    time_cap=60.0,
                    telemetry=TelemetryConfig(cadence_s=0.05))
    defaults.update(kw)
    return ScenarioConfig(**defaults)


def _save(tmp_path, name, cfg):
    res = run_scenario(cfg).detach()
    path = tmp_path / name
    with open(path, "wb") as fh:
        pickle.dump(res, fh)
    return str(path)


class TestFirstDivergence:
    def test_identical_series(self):
        a = Series("x", bucket_s=1.0, maxlen=8)
        b = Series("x", bucket_s=1.0, maxlen=8)
        for t in range(5):
            a.add(float(t), 2.0)
            b.add(float(t), 2.0)
        assert first_divergence(a, b) is None

    def test_locates_first_bad_bucket(self):
        a = Series("x", bucket_s=1.0, maxlen=8)
        b = Series("x", bucket_s=1.0, maxlen=8)
        for t in range(5):
            a.add(float(t), 2.0)
            b.add(float(t), 2.0 if t < 3 else 9.0)
        div = first_divergence(a, b)
        assert div["bucket"] == 3
        assert div["time_s"] == pytest.approx(3.5)
        assert (div["a"], div["b"]) == (2.0, 9.0)

    def test_eps_tolerance(self):
        a = Series("x", bucket_s=1.0, maxlen=8)
        b = Series("x", bucket_s=1.0, maxlen=8)
        a.add(0.5, 1.0)
        b.add(0.5, 1.05)
        assert first_divergence(a, b, eps=0.1) is None
        assert first_divergence(a, b, eps=0.01)["bucket"] == 0

    def test_length_mismatch_diverges(self):
        a = Series("x", bucket_s=1.0, maxlen=8)
        b = Series("x", bucket_s=1.0, maxlen=8)
        a.add(0.5, 1.0)
        a.add(3.5, 1.0)
        b.add(0.5, 1.0)
        assert first_divergence(a, b)["bucket"] == 3

    def test_series_xy_drops_empty_buckets(self):
        s = Series("x", bucket_s=1.0, maxlen=8)
        s.add(0.5, 2.0)
        s.add(3.5, 4.0)
        x, y = series_xy(s)
        assert list(x) == [0.5, 3.5]
        assert list(y) == [2.0, 4.0]


class TestCompareUnits:
    def test_summary_tolerances(self):
        rows = compare_summaries({"a": 1.0, "b": 5.0}, {"a": 1.04, "b": 5.0},
                                 rtol=0.05)
        by = {r["metric"]: r for r in rows}
        assert by["a"]["within"] and by["b"]["within"]
        rows = compare_summaries({"a": 1.0}, {"a": 1.04})
        assert not rows[0]["within"]

    def test_summary_missing_key_flags(self):
        rows = compare_summaries({"a": 1.0}, {"b": 1.0})
        assert all(not r["within"] for r in rows)

    def test_trace_count_deltas(self):
        ea = [{"layer": "net", "event": "packet_send"}] * 3
        eb = [{"layer": "net", "event": "packet_send"}] * 5
        (row,) = compare_traces(ea, eb)
        assert row == {"event": "net.packet_send", "a": 3, "b": 5,
                       "delta": 2}


class TestCompareArtifacts:
    def test_identical_runs_exit_zero(self, tmp_path):
        a = _save(tmp_path, "a.pkl", _cfg())
        b = _save(tmp_path, "b.pkl", _cfg())
        report = compare_artifacts(a, b)
        assert report.identical
        assert report.exit_code == 0
        assert "IDENTICAL" in render_comparison_report(report)

    def test_perturbed_cc_param_locates_divergence(self, tmp_path):
        a = _save(tmp_path, "a.pkl", _cfg())
        b = _save(tmp_path, "b.pkl",
                  _cfg(transport="rudp_nocc", fixed_window=8.0))
        report = compare_artifacts(a, b)
        assert not report.identical
        assert report.exit_code == 1
        cwnd = next(r for r in report.series if r["series"] == "flow.cwnd")
        assert cwnd["status"] == "diverged"
        assert cwnd["first_divergence"]["bucket"] >= 0
        text = render_comparison_report(report)
        assert "DIVERGED" in text

    def test_trace_artifacts_compare(self, tmp_path):
        cfg = _cfg(telemetry=None)
        pa = tmp_path / "a.jsonl"
        pb = tmp_path / "b.jsonl"
        run_batch([cfg], cache=False, trace=str(pa))
        run_batch([cfg], cache=False, trace=str(pb))
        report = compare_artifacts(pa, pb)
        assert report.identical
        assert report.trace  # event counts were compared
        # Count-level trace diffing is deliberately coarse, so perturb
        # something that must change event counts: the workload size.
        run_batch([cfg.replace(n_frames=150)], cache=False, trace=str(pb))
        assert not compare_artifacts(pa, pb).identical

    def test_result_without_telemetry_noted(self, tmp_path):
        a = _save(tmp_path, "a.pkl", _cfg(telemetry=None))
        b = _save(tmp_path, "b.pkl", _cfg(telemetry=None))
        report = compare_artifacts(a, b)
        assert report.identical
        assert any("telemetry" in n for n in report.notes)

    def test_load_artifact_rejects_junk(self, tmp_path):
        p = tmp_path / "junk.pkl"
        with open(p, "wb") as fh:
            pickle.dump({"not": "a result"}, fh)
        with pytest.raises(TypeError):
            load_artifact(p)

    def test_as_dict_is_json_clean(self, tmp_path):
        import json
        a = _save(tmp_path, "a.pkl", _cfg())
        report = compare_artifacts(a, a)
        json.dumps(report.as_dict())  # must not raise


class TestCompareCli:
    def test_exit_codes(self, tmp_path, capsys):
        from repro.cli import main
        a = _save(tmp_path, "a.pkl", _cfg(n_frames=150))
        b = _save(tmp_path, "b.pkl", _cfg(n_frames=150))
        # Pin the congestion window to a different size -- guaranteed
        # behavioural divergence from the adaptive default.
        c = _save(tmp_path, "c.pkl",
                  _cfg(n_frames=150, transport="rudp_nocc",
                       fixed_window=8.0))
        assert main(["compare", a, b]) == 0
        assert main(["compare", a, c]) == 1
        capsys.readouterr()

    def test_json_output(self, tmp_path, capsys):
        import json
        from repro.cli import main
        a = _save(tmp_path, "a.pkl", _cfg(n_frames=150))
        assert main(["compare", a, a, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["identical"] is True

    def test_missing_file_is_user_error(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["compare", str(tmp_path / "no.pkl"),
                     str(tmp_path / "pe.pkl")]) == 2
        assert "error:" in capsys.readouterr().err
