"""Unit tests for links: serialization, propagation, queueing, failures."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import BernoulliLoss, Link
from repro.sim.packet import Packet


class Sink:
    def __init__(self):
        self.got = []
        self.times = []

    def receive(self, pkt):
        self.got.append(pkt)


class TimedSink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, pkt):
        self.arrivals.append((self.sim.now, pkt))


def mkpkt(size=1400):
    return Packet(flow_id=1, size=size)


def test_bandwidth_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, 0, 0.01, Sink())
    with pytest.raises(ValueError):
        Link(sim, 1e6, -1.0, Sink())


def test_delivery_time_is_serialization_plus_propagation():
    sim = Simulator()
    sink = TimedSink(sim)
    link = Link(sim, bandwidth_bps=1e6, delay_s=0.05, sink=sink)
    pkt = mkpkt(1400)  # wire 1440 B = 11520 bits -> 11.52 ms at 1 Mbps
    link.send(pkt)
    sim.run()
    assert len(sink.arrivals) == 1
    t, got = sink.arrivals[0]
    assert got is pkt
    assert t == pytest.approx(0.05 + 1440 * 8 / 1e6)


def test_back_to_back_packets_serialize_sequentially():
    sim = Simulator()
    sink = TimedSink(sim)
    link = Link(sim, bandwidth_bps=1e6, delay_s=0.0, sink=sink)
    for _ in range(3):
        link.send(mkpkt())
    sim.run()
    tx = 1440 * 8 / 1e6
    times = [t for t, _ in sink.arrivals]
    assert times == pytest.approx([tx, 2 * tx, 3 * tx])


def test_queue_overflow_drops():
    sim = Simulator()
    sink = Sink()
    link = Link(sim, bandwidth_bps=1e6, delay_s=0.0, sink=sink,
                queue_bytes=2 * 1440)
    # One packet goes straight to the transmitter; two fit the queue.
    sent = [link.send(mkpkt()) for _ in range(5)]
    sim.run()
    assert sent == [True, True, True, False, False]
    assert len(sink.got) == 3
    assert link.queue.stats.drops == 2


def test_tx_time():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=20e6, delay_s=0.0, sink=Sink())
    assert link.tx_time(mkpkt(1400)) == pytest.approx(1440 * 8 / 20e6)


def test_throughput_matches_bandwidth():
    """A saturated 1 Mbps link delivers ~1 Mbps of wire bytes."""
    sim = Simulator()
    sink = Sink()
    link = Link(sim, bandwidth_bps=1e6, delay_s=0.0, sink=sink,
                queue_bytes=1 << 30)
    n = 200
    for _ in range(n):
        link.send(mkpkt())
    sim.run()
    assert len(sink.got) == n
    assert sim.now == pytest.approx(n * 1440 * 8 / 1e6)


def test_link_failure_flushes_queue_and_drops_sends():
    sim = Simulator()
    sink = Sink()
    link = Link(sim, bandwidth_bps=1e3, delay_s=0.0, sink=sink,
                queue_bytes=1 << 20)
    for _ in range(5):
        link.send(mkpkt())
    link.fail()
    assert not link.send(mkpkt())
    sim.run()
    # Only the packet already on the transmitter may have been counted;
    # it is lost at _tx_done because the link is down.
    assert sink.got == []
    assert link.packets_lost_wire >= 5


def test_link_recovery():
    sim = Simulator()
    sink = Sink()
    link = Link(sim, bandwidth_bps=1e6, delay_s=0.0, sink=sink)
    link.fail()
    link.recover()
    link.send(mkpkt())
    sim.run()
    assert len(sink.got) == 1


def test_bernoulli_loss_drops_roughly_p():
    sim = Simulator()
    sink = Sink()
    loss = BernoulliLoss(0.3, random.Random(42))
    link = Link(sim, bandwidth_bps=1e9, delay_s=0.0, sink=sink,
                queue_bytes=1 << 30, loss=loss)
    n = 2000
    for _ in range(n):
        link.send(mkpkt())
    sim.run()
    delivered = len(sink.got)
    assert 0.6 * n < delivered < 0.8 * n
    assert link.packets_lost_wire == n - delivered


def test_bernoulli_validation():
    with pytest.raises(ValueError):
        BernoulliLoss(1.5, random.Random(0))


def test_wire_counters():
    sim = Simulator()
    sink = Sink()
    link = Link(sim, bandwidth_bps=1e6, delay_s=0.0, sink=sink)
    link.send(mkpkt(100))
    sim.run()
    assert link.packets_sent == 1
    assert link.bytes_sent == 140
