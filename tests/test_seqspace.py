"""Unit tests for the reorder buffer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.seqspace import ReorderBuffer


def test_inorder_sequence():
    rb = ReorderBuffer()
    for seq in range(5):
        assert rb.offer(seq, f"p{seq}") == "inorder"
        rb.advance()
    assert rb.rcv_nxt == 5


def test_out_of_order_buffered_then_drained():
    rb = ReorderBuffer()
    assert rb.offer(2, "c") == "buffered"
    assert rb.offer(1, "b") == "buffered"
    assert rb.offer(0, "a") == "inorder"
    rb.advance()
    drained = list(rb.drain())
    assert drained == [(1, "b"), (2, "c")]
    assert rb.rcv_nxt == 3


def test_duplicate_detection():
    rb = ReorderBuffer()
    rb.offer(0, "a")
    rb.advance()
    assert rb.offer(0, "a2") == "dup"
    rb.offer(5, "f")
    assert rb.offer(5, "f2") == "dup"
    assert rb.duplicates == 2


def test_missing_before():
    rb = ReorderBuffer()
    rb.offer(3, "d")
    rb.offer(5, "f")
    assert rb.missing_before(6) == [0, 1, 2, 4]


def test_buffered_seqs_sorted():
    rb = ReorderBuffer()
    for s in (9, 3, 7):
        rb.offer(s, s)
    assert rb.buffered_seqs() == [3, 7, 9]


def test_overflow_guard():
    rb = ReorderBuffer(max_buffered=2)
    assert rb.offer(1, "b") == "buffered"
    assert rb.offer(2, "c") == "buffered"
    assert rb.offer(3, "d") == "dup"  # over budget: treated as ignorable
    assert len(rb) == 2


def test_custom_start():
    rb = ReorderBuffer(start=100)
    assert rb.offer(100, "x") == "inorder"
    assert rb.offer(99, "old") == "dup"


@given(st.permutations(list(range(30))))
@settings(max_examples=60, deadline=None)
def test_any_arrival_order_delivers_everything_in_order(order):
    """Property: whatever the arrival permutation, consuming in-order
    arrivals + draining yields 0..n-1 exactly once, in order."""
    rb = ReorderBuffer()
    delivered = []
    for seq in order:
        verdict = rb.offer(seq, seq)
        if verdict == "inorder":
            delivered.append(seq)
            rb.advance()
            delivered.extend(s for s, _ in rb.drain())
    assert delivered == list(range(30))
    assert len(rb) == 0


@given(st.lists(st.integers(min_value=0, max_value=40), min_size=1,
                max_size=200))
@settings(max_examples=60, deadline=None)
def test_rcv_nxt_monotonic_under_duplicates(seqs):
    """Property: rcv_nxt never decreases, even with duplicate storms."""
    rb = ReorderBuffer()
    last = rb.rcv_nxt
    for seq in seqs:
        if rb.offer(seq, seq) == "inorder":
            rb.advance()
            list(rb.drain())
        assert rb.rcv_nxt >= last
        last = rb.rcv_nxt
