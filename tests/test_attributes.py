"""Unit tests for quality attributes and the attribute service."""

import pytest

from repro.core.attributes import (ADAPT_MARK, ADAPT_PKTSIZE, NET_ERROR_RATIO,
                                   AttributeService, AttributeSet)


class TestAttributeSet:
    def test_construction_and_access(self):
        a = AttributeSet({ADAPT_MARK: 0.4}, extra=1)
        assert a[ADAPT_MARK] == 0.4
        assert a.get("extra") == 1
        assert a.get("missing", "d") == "d"
        assert ADAPT_MARK in a and "missing" not in a

    def test_none_values_are_absent(self):
        a = AttributeSet({ADAPT_MARK: None, ADAPT_PKTSIZE: 0.1})
        assert ADAPT_MARK not in a
        assert len(a) == 1

    def test_truthiness(self):
        assert not AttributeSet()
        assert AttributeSet({ADAPT_MARK: 0.0})  # present-with-zero counts

    def test_iteration_and_dict(self):
        a = AttributeSet({"x": 1, "y": 2})
        assert dict(a) == {"x": 1, "y": 2}
        assert a.as_dict() == {"x": 1, "y": 2}

    def test_merged_overrides(self):
        a = AttributeSet({"x": 1, "y": 2})
        b = a.merged({"y": 3, "z": 4})
        assert b.as_dict() == {"x": 1, "y": 3, "z": 4}
        assert a.as_dict() == {"x": 1, "y": 2}  # original untouched

    def test_merged_with_empty_returns_self(self):
        a = AttributeSet({"x": 1})
        assert a.merged(None) is a
        assert a.merged(AttributeSet()) is a

    def test_equality(self):
        assert AttributeSet({"x": 1}) == AttributeSet({"x": 1})
        assert AttributeSet({"x": 1}) != AttributeSet({"x": 2})


class TestAttributeService:
    def test_register_update_query(self):
        svc = AttributeService()
        svc.register(NET_ERROR_RATIO, 0.0)
        assert svc.query(NET_ERROR_RATIO) == 0.0
        svc.update(NET_ERROR_RATIO, 0.25)
        assert svc.query(NET_ERROR_RATIO) == 0.25

    def test_register_is_idempotent(self):
        svc = AttributeService()
        svc.update("a", 5)
        svc.register("a", 0)
        assert svc.query("a") == 5

    def test_query_default(self):
        assert AttributeService().query("nope", 42) == 42

    def test_watchers_fire_on_update(self):
        svc = AttributeService()
        seen = []
        svc.watch("a", lambda n, v: seen.append((n, v)))
        svc.update("a", 1)
        svc.update("a", 2)
        assert seen == [("a", 1), ("a", 2)]

    def test_unwatch(self):
        svc = AttributeService()
        seen = []
        fn = lambda n, v: seen.append(v)
        svc.watch("a", fn)
        svc.unwatch("a", fn)
        svc.update("a", 1)
        assert seen == []

    def test_update_many_and_snapshot(self):
        svc = AttributeService()
        svc.update_many({"a": 1, "b": 2})
        snap = svc.snapshot()
        assert snap == {"a": 1, "b": 2}
        svc.update("a", 9)
        assert snap["a"] == 1  # snapshot is a copy

    def test_counters(self):
        svc = AttributeService()
        svc.update("a", 1)
        svc.query("a")
        svc.query("b")
        assert svc.updates == 1 and svc.queries == 2
