"""Property-based end-to-end transport invariants (hypothesis).

The central reliability contract: whatever the loss pattern, a fully
reliable transport delivers every submitted byte exactly once, in order;
a loss-tolerant transport never withholds marked data and never exceeds
its skip budget.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.link import BernoulliLoss
from repro.sim.topology import Dumbbell
from repro.transport.rudp import RudpConnection
from repro.transport.tcp import TcpConnection

FAST = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def run_transfer(cls, *, sizes, fwd_loss=0.0, bwd_loss=0.0, seed=0,
                 queue_pkts=16, **kw):
    sim = Simulator()
    net = Dumbbell(sim, queue_pkts=queue_pkts)
    if fwd_loss:
        net.forward.loss = BernoulliLoss(fwd_loss, random.Random(seed))
    if bwd_loss:
        net.backward.loss = BernoulliLoss(bwd_loss, random.Random(seed + 1))
    snd, rcv = net.add_flow_hosts("p")
    log = DeliveryLog()
    conn = cls(sim, snd, rcv, on_deliver=log.on_deliver, **kw)
    for i, size in enumerate(sizes):
        conn.submit(size, frame_id=i)
    conn.finish()
    sim.run(until=600.0)
    return conn, log


@given(sizes=st.lists(st.integers(min_value=1, max_value=6000),
                      min_size=1, max_size=60),
       fwd=st.sampled_from([0.0, 0.05, 0.15]),
       seed=st.integers(min_value=0, max_value=100))
@FAST
def test_reliable_exactly_once_in_order(sizes, fwd, seed):
    conn, log = run_transfer(RudpConnection, sizes=sizes, fwd_loss=fwd,
                             seed=seed)
    assert conn.completed
    # Every byte of every frame delivered, frames in submission order.
    assert log.total_bytes == sum(sizes)
    per_frame = {}
    for fid, size in zip(log.frame_ids, log.sizes):
        per_frame[fid] = per_frame.get(fid, 0) + int(size)
    assert per_frame == {i: s for i, s in enumerate(sizes)}
    completions = list(log.frame_ids[[bool(x) for x in
                                      (log.frame_ids >= 0)]])
    # In-order: frame ids of deliveries never decrease.
    assert all(a <= b for a, b in zip(completions, completions[1:]))


@given(sizes=st.lists(st.integers(min_value=100, max_value=3000),
                      min_size=5, max_size=40),
       bwd=st.sampled_from([0.1, 0.3]),
       seed=st.integers(min_value=0, max_value=50))
@FAST
def test_tcp_survives_ack_loss(sizes, bwd, seed):
    conn, log = run_transfer(TcpConnection, sizes=sizes, bwd_loss=bwd,
                             seed=seed)
    assert conn.completed
    assert log.total_bytes == sum(sizes)


@given(tolerance=st.sampled_from([0.1, 0.3, 0.6]),
       seed=st.integers(min_value=0, max_value=50))
@FAST
def test_loss_tolerant_invariants(tolerance, seed):
    """Marked frames always arrive; total skips respect the tolerance."""
    rng = random.Random(seed)
    marked = [rng.random() < 0.3 for _ in range(120)]
    sim = Simulator()
    net = Dumbbell(sim, queue_pkts=16)
    net.forward.loss = BernoulliLoss(0.1, random.Random(seed + 7))
    snd, rcv = net.add_flow_hosts("p")
    log = DeliveryLog()
    conn = RudpConnection(sim, snd, rcv, loss_tolerance=tolerance,
                          on_deliver=log.on_deliver)
    for i, m in enumerate(marked):
        conn.submit(1400, marked=m, frame_id=i)
    conn.finish()
    sim.run(until=600.0)
    assert conn.completed
    delivered = set(int(f) for f in log.frame_ids)
    for i, m in enumerate(marked):
        if m:
            assert i in delivered, f"marked frame {i} withheld"
    st_ = conn.sender.stats
    if st_.skips_sent:
        total = st_.skips_sent + st_.acked_packets
        assert st_.skips_sent / total <= tolerance + 0.05
