"""Population scenario family (repro.experiments.population), small n.

The 1,000-flow default is the bench's job (benchmarks/bench_population.py);
tier-1 keeps a fast smoke: determinism, completion accounting, burst-tier
identity (everything but the engine's event count), and input validation.
"""

import pytest

from repro.experiments.population import (DEFAULT_MIX, PopulationResult,
                                          run_population)

_SMALL = dict(n_flows=40, frames_per_flow=10, time_cap=30.0,
              bottleneck_bps=50e6, fluid_bps=10e6, arrival_window_s=0.5)


def test_small_population_completes():
    res = run_population(**_SMALL)
    assert isinstance(res, PopulationResult)
    s = res.summary
    assert s["flows"] == 40
    assert s["completed"] == 40
    assert s["completion_ratio"] == 1.0
    assert len(res.fcts) == len(res.transports) == 40
    assert all(fct is not None and fct > 0 for fct in res.fcts)
    assert set(res.transports) <= {name for name, _ in DEFAULT_MIX}
    assert 0.0 < s["fairness"] <= 1.0
    assert s["fct_p50_s"] <= s["fct_p95_s"]
    assert s["datagrams"] == 40 * 10
    assert res.fluid is not None
    assert s["fluid_served_bytes"] > 0


def test_population_deterministic():
    assert run_population(**_SMALL).summary == run_population(**_SMALL).summary


def test_population_seed_changes_outcome():
    a = run_population(**_SMALL, seed=1)
    b = run_population(**_SMALL, seed=2)
    assert a.transports != b.transports or a.fcts != b.fcts


def test_burst_tier_identical_modulo_event_count():
    """Burst batching coalesces engine events but must not move a single
    packet: every summary metric except ``events`` matches per-packet."""
    fast = run_population(**_SMALL, burst=True).summary
    slow = run_population(**_SMALL, burst=False).summary
    assert {k: v for k, v in fast.items() if k != "events"} == \
           {k: v for k, v in slow.items() if k != "events"}
    assert fast["events"] <= slow["events"]


def test_mix_validation():
    with pytest.raises(ValueError):
        run_population(n_flows=0)
    with pytest.raises(ValueError):
        run_population(n_flows=4, transport_mix=[("warp", 1.0)])
    with pytest.raises(ValueError):
        run_population(n_flows=4, transport_mix=[("iq", 0.0)])
