"""Unit tests for the packet model."""

from repro.sim.packet import ACK_BYTES, HEADER_BYTES, Packet, PacketKind


def test_defaults():
    p = Packet(flow_id=1)
    assert p.kind == PacketKind.DATA
    assert p.marked and not p.tagged
    assert p.retransmit == 0
    assert not p.skip
    assert p.last_of_frame


def test_wire_size_includes_header():
    p = Packet(flow_id=1, size=1400)
    assert p.wire_size == 1400 + HEADER_BYTES


def test_ack_constants():
    assert ACK_BYTES == HEADER_BYTES == 40


def test_kind_predicates():
    assert Packet(flow_id=1, kind=PacketKind.DATA).is_data
    assert Packet(flow_id=1, kind=PacketKind.ACK).is_ack
    assert not Packet(flow_id=1, kind=PacketKind.ACK).is_data


def test_copy_preserves_fields():
    p = Packet(flow_id=3, seq=17, ack=4, size=900, src=1, dst=2, sport=5,
               dport=6, created_at=1.5, marked=False, tagged=True,
               frame_id=9, attrs={"A": 1})
    p.retransmit = 2
    p.skip = True
    p.last_of_frame = False
    q = p.copy()
    for field in ("flow_id", "seq", "ack", "size", "src", "dst", "sport",
                  "dport", "created_at", "marked", "tagged", "frame_id",
                  "retransmit", "skip", "last_of_frame"):
        assert getattr(q, field) == getattr(p, field), field
    assert q.attrs is p.attrs  # shallow: attributes are shared
    assert q is not p


def test_copy_is_independent_for_mutation():
    p = Packet(flow_id=1, seq=5)
    q = p.copy()
    q.retransmit = 99
    assert p.retransmit == 0


def test_repr_smoke():
    assert "seq=7" in repr(Packet(flow_id=1, seq=7))
