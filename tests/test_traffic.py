"""Unit tests for traffic generators: MBone trace, CBR, VBR, bulk."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.node import Host
from repro.sim.topology import Dumbbell
from repro.traffic.bulk import BulkSource
from repro.traffic.cbr import CbrSource
from repro.traffic.mbone import MboneParams, mbone_trace, trace_frame_sizes
from repro.traffic.vbr import VbrSource
from repro.transport.udp import UdpSender, UdpSink


class TestMbone:
    def test_deterministic_for_seed(self):
        a = mbone_trace(500, seed=11)
        b = mbone_trace(500, seed=11)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(mbone_trace(500, seed=1),
                                  mbone_trace(500, seed=2))

    def test_positive_and_floored(self):
        p = MboneParams(min_members=2)
        tr = mbone_trace(1000, seed=3, params=p)
        assert tr.min() >= 2

    def test_mean_near_equilibrium(self):
        p = MboneParams(join_rate=2.0, mean_lifetime=4.0, burst_prob=0.0)
        tr = mbone_trace(5000, seed=5, params=p)
        # Equilibrium mean = join_rate * mean_lifetime = 8.
        assert 6.0 < tr.mean() < 10.0

    def test_bursts_create_spikes(self):
        calm = MboneParams(burst_prob=0.0)
        bursty = MboneParams(burst_prob=0.1, burst_size=30)
        a = mbone_trace(2000, seed=7, params=calm)
        b = mbone_trace(2000, seed=7, params=bursty)
        assert b.max() > a.max()

    def test_trace_is_bursty_not_constant(self):
        """Section 3.3 relies on 'constant and very fast changes in rate'."""
        tr = mbone_trace(2000, seed=7)
        assert tr.std() / tr.mean() > 0.15

    def test_frame_sizes_multiplier(self):
        tr = mbone_trace(100, seed=9)
        fs = trace_frame_sizes(100, 3000, seed=9)
        assert np.array_equal(fs, tr * 3000)

    def test_validation(self):
        with pytest.raises(ValueError):
            mbone_trace(0)
        with pytest.raises(ValueError):
            MboneParams(join_rate=0)
        with pytest.raises(ValueError):
            MboneParams(burst_prob=1.5)

    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_length_and_positivity(self, n, seed):
        tr = mbone_trace(n, seed=seed)
        assert tr.shape == (n,)
        assert (tr >= 1).all()


def udp_pair(sim, net, port=7001):
    s, r = net.add_flow_hosts("x")
    tx = UdpSender(sim, s, port=port, peer_addr=r.address, peer_port=port)
    rx = UdpSink(sim, r, port=port, flow_id=tx.flow_id)
    return tx, rx


class TestCbr:
    def test_rate_accuracy(self):
        sim = Simulator()
        net = Dumbbell(sim)
        tx, rx = udp_pair(sim, net)
        CbrSource(sim, tx, rate_bps=2e6, payload_bytes=1400)
        sim.run(until=10.0)
        wire_bytes = tx.packets_sent * 1440
        rate = wire_bytes * 8 / 10.0
        assert rate == pytest.approx(2e6, rel=0.01)

    def test_start_stop_window(self):
        sim = Simulator()
        net = Dumbbell(sim)
        tx, rx = udp_pair(sim, net)
        src = CbrSource(sim, tx, rate_bps=1e6, start=2.0, stop=4.0)
        sim.run(until=10.0)
        assert src.datagrams_sent > 0
        expected = 1e6 * 2 / (1440 * 8)
        assert src.datagrams_sent == pytest.approx(expected, rel=0.05)

    def test_set_rate_changes_interval(self):
        sim = Simulator()
        net = Dumbbell(sim)
        tx, rx = udp_pair(sim, net)
        src = CbrSource(sim, tx, rate_bps=1e6)
        old = src.interval
        src.set_rate(2e6)
        assert src.interval == pytest.approx(old / 2)

    def test_validation(self):
        sim = Simulator()
        net = Dumbbell(sim)
        tx, _ = udp_pair(sim, net)
        with pytest.raises(ValueError):
            CbrSource(sim, tx, rate_bps=0)


class TestVbr:
    def test_mean_rate_tracks_trace(self):
        sim = Simulator()
        net = Dumbbell(sim)
        tx, rx = udp_pair(sim, net)
        VbrSource(sim, tx, frame_sizes=[1000], frame_rate=100.0)
        sim.run(until=5.0)
        assert tx.bytes_sent == pytest.approx(1000 * 100 * 5, rel=0.01)

    def test_trace_advances_per_step_not_per_frame(self):
        """Membership dynamics evolve at trace_step_s, not the frame clock:
        all frames within a step share one size."""
        sim = Simulator()
        net = Dumbbell(sim)
        tx, rx = udp_pair(sim, net)
        src = VbrSource(sim, tx, frame_sizes=[100, 200], frame_rate=10.0,
                        trace_step_s=1.0)
        sizes = []
        orig = tx.send

        def spy(size, **kw):
            sizes.append(size)
            return orig(size, **kw)

        tx.send = spy
        sim.run(until=2.0)
        assert sizes[:10] == [100] * 10
        assert sizes[10:20] == [200] * 10

    def test_trace_wraps(self):
        sim = Simulator()
        net = Dumbbell(sim)
        tx, rx = udp_pair(sim, net)
        src = VbrSource(sim, tx, frame_sizes=[100, 200], frame_rate=1.0,
                        trace_step_s=1.0)
        sim.run(until=5.0)
        assert src.frames_sent == 6  # kept running past trace length

    def test_validation(self):
        sim = Simulator()
        net = Dumbbell(sim)
        tx, _ = udp_pair(sim, net)
        with pytest.raises(ValueError):
            VbrSource(sim, tx, frame_sizes=[], frame_rate=10)
        with pytest.raises(ValueError):
            VbrSource(sim, tx, frame_sizes=[0], frame_rate=10)


class TestUdpSink:
    def test_loss_ratio_estimate(self):
        sim = Simulator()
        rx = UdpSink(sim, Host(sim, 1), port=5)
        from repro.sim.packet import Packet
        for seq in (0, 1, 3, 4):  # seq 2 lost
            rx.receive(Packet(flow_id=None if False else 1, seq=seq,
                              dport=5))
        rx.flow_id = None
        assert rx.packets_received == 4
        assert rx.loss_ratio == pytest.approx(0.2)


class TestBulk:
    def test_fixed_total_bytes(self):
        sim = Simulator()
        net = Dumbbell(sim)
        s, r = net.add_flow_hosts("b")
        from repro.transport.tcp import TcpConnection
        conn = TcpConnection(sim, s, r)
        bulk = BulkSource(conn, chunk_bytes=1400, total_bytes=140_000)
        conn.sender.on_space = bulk.pump
        bulk.start()
        sim.run(until=30.0)
        assert bulk.done
        assert bulk.submitted_bytes == 140_000
        assert conn.completed

    def test_validation(self):
        with pytest.raises(ValueError):
            BulkSource(None, chunk_bytes=0)
        with pytest.raises(ValueError):
            BulkSource(None, total_bytes=0)
