"""Unit tests for the IQ-RUDP coordination engine."""

import pytest

from repro.core.attributes import (ADAPT_COND, ADAPT_FREQ, ADAPT_MARK,
                                   ADAPT_PKTSIZE, ADAPT_WHEN, AttributeSet)
from repro.core.coordination import IQCoordinator, NullCoordinator
from repro.transport.lda import LdaCC


class FakeSender:
    """Just enough sender surface for the coordinator."""

    def __init__(self, *, cwnd=20.0, frame_size=700, error_ratio=0.0):
        self.cc = LdaCC(initial_cwnd=cwnd, initial_ssthresh=4)
        self.mss = 1400
        self.last_frame_size = frame_size
        self.discard_unmarked = False
        self._eratio = error_ratio

    def current_error_ratio(self):
        return self._eratio


def bind(coord, **kw):
    snd = FakeSender(**kw)
    coord.bind(snd)
    return snd


class TestNullCoordinator:
    def test_ignores_everything(self):
        coord = NullCoordinator()
        snd = bind(coord)
        coord.on_callback_result(AttributeSet({ADAPT_MARK: 0.5,
                                               ADAPT_PKTSIZE: 0.5}))
        assert snd.cc.cwnd == 20.0
        assert not snd.discard_unmarked


class TestMarking:
    def test_positive_unmark_probability_enables_discard(self):
        coord = IQCoordinator()
        snd = bind(coord)
        coord.on_callback_result(AttributeSet({ADAPT_MARK: 0.4}))
        assert snd.discard_unmarked
        assert coord.discard_switches == 1

    def test_zero_probability_disables_discard(self):
        coord = IQCoordinator()
        snd = bind(coord)
        coord.on_callback_result(AttributeSet({ADAPT_MARK: 0.4}))
        coord.on_callback_result(AttributeSet({ADAPT_MARK: 0.0}))
        assert not snd.discard_unmarked
        assert coord.discard_switches == 2

    def test_repeated_same_state_not_counted_as_switch(self):
        coord = IQCoordinator()
        bind(coord)
        coord.on_callback_result(AttributeSet({ADAPT_MARK: 0.4}))
        coord.on_callback_result(AttributeSet({ADAPT_MARK: 0.3}))
        assert coord.discard_switches == 1

    def test_ablation_switch(self):
        coord = IQCoordinator(discard_unmarked=False)
        snd = bind(coord)
        coord.on_callback_result(AttributeSet({ADAPT_MARK: 0.4}))
        assert not snd.discard_unmarked


class TestResolution:
    def test_reinflates_window_for_sub_mss_frames(self):
        coord = IQCoordinator()
        snd = bind(coord, cwnd=20.0, frame_size=700)
        coord.on_send_attrs(AttributeSet({ADAPT_PKTSIZE: 0.5}))
        assert snd.cc.cwnd == pytest.approx(40.0)
        assert coord.window_rescales == 1

    def test_no_reinflation_for_large_frames(self):
        """Paper: only "if the current application frame is smaller than
        the maximum RUDP segment size"."""
        coord = IQCoordinator()
        snd = bind(coord, cwnd=20.0, frame_size=2800)
        coord.on_send_attrs(AttributeSet({ADAPT_PKTSIZE: 0.5}))
        assert snd.cc.cwnd == 20.0

    def test_size_increase_deflates(self):
        coord = IQCoordinator()
        snd = bind(coord, cwnd=22.0, frame_size=770)
        coord.on_send_attrs(AttributeSet({ADAPT_PKTSIZE: -0.10}))
        assert snd.cc.cwnd == pytest.approx(20.0)

    def test_rate_chg_of_one_rejected(self):
        coord = IQCoordinator()
        bind(coord)
        with pytest.raises(ValueError):
            coord.on_send_attrs(AttributeSet({ADAPT_PKTSIZE: 1.0}))

    def test_ablation_switch(self):
        coord = IQCoordinator(reinflate_window=False)
        snd = bind(coord)
        coord.on_send_attrs(AttributeSet({ADAPT_PKTSIZE: 0.5}))
        assert snd.cc.cwnd == 20.0


class TestAdaptCond:
    def test_drift_correction_applies_eq1(self):
        """w <- w * 1/(1-rate_chg) * (1-e_new)/(1-e_old)."""
        coord = IQCoordinator()
        snd = bind(coord, cwnd=20.0, frame_size=700, error_ratio=0.2)
        attrs = AttributeSet({ADAPT_PKTSIZE: 0.5,
                              ADAPT_COND: {"error_ratio": 0.1}})
        coord.on_send_attrs(attrs)
        expected = 20.0 * (1 / 0.5) * (0.8 / 0.9)
        assert snd.cc.cwnd == pytest.approx(expected)
        assert coord.cond_corrections == 1

    def test_without_cond_attribute_no_correction(self):
        coord = IQCoordinator()
        snd = bind(coord, cwnd=20.0, frame_size=700, error_ratio=0.2)
        coord.on_send_attrs(AttributeSet({ADAPT_PKTSIZE: 0.5}))
        assert snd.cc.cwnd == pytest.approx(40.0)
        assert coord.cond_corrections == 0

    def test_use_adapt_cond_false_ignores_cond(self):
        coord = IQCoordinator(use_adapt_cond=False)
        snd = bind(coord, cwnd=20.0, frame_size=700, error_ratio=0.2)
        attrs = AttributeSet({ADAPT_PKTSIZE: 0.5,
                              ADAPT_COND: {"error_ratio": 0.1}})
        coord.on_send_attrs(attrs)
        assert snd.cc.cwnd == pytest.approx(40.0)

    def test_degenerate_eold_guarded(self):
        coord = IQCoordinator()
        snd = bind(coord, cwnd=20.0, frame_size=700)
        attrs = AttributeSet({ADAPT_PKTSIZE: 0.5,
                              ADAPT_COND: {"error_ratio": 1.0}})
        coord.on_send_attrs(attrs)  # must not divide by zero
        assert snd.cc.cwnd == pytest.approx(40.0)


class TestWhenAndFreq:
    def test_pending_defers_everything(self):
        coord = IQCoordinator()
        snd = bind(coord)
        coord.on_callback_result(AttributeSet({ADAPT_WHEN: "pending",
                                               ADAPT_PKTSIZE: 0.5}))
        assert snd.cc.cwnd == 20.0
        assert coord.pending_adaptations == 1

    def test_frequency_adaptation_never_rescales(self):
        """Paper: "for a frequency adaptation, IQ-RUDP does not have to
        increase the window size"."""
        coord = IQCoordinator()
        snd = bind(coord)
        coord.on_callback_result(AttributeSet({ADAPT_FREQ: 0.5}))
        assert snd.cc.cwnd == 20.0
        assert coord.freq_adaptations == 1

    def test_unbound_coordinator_raises(self):
        coord = IQCoordinator()
        with pytest.raises(RuntimeError):
            coord.on_callback_result(AttributeSet({ADAPT_MARK: 0.4}))
