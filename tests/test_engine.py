"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5]
    assert sim.now == 1.5


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_priority_orders_simultaneous_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "late", priority=1)
    sim.schedule(1.0, seen.append, "early", priority=-1)
    sim.run()
    assert seen == ["early", "late"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_run_until_stops_and_leaves_clock_at_until():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.schedule(10.0, seen.append, 2)
    fired = sim.run(until=5.0)
    assert fired == 1 and seen == [1]
    assert sim.now == 5.0
    sim.run()
    assert seen == [1, 2]


def test_run_until_composes():
    sim = Simulator()
    seen = []
    for t in (1.0, 2.0, 3.0):
        sim.at(t, seen.append, t)
    sim.run(until=1.5)
    sim.run(until=2.5)
    sim.run(until=3.5)
    assert seen == [1.0, 2.0, 3.0]


def test_cancel_prevents_firing():
    sim = Simulator()
    seen = []
    ev = sim.schedule(1.0, seen.append, "x")
    ev.cancel()
    sim.run()
    assert seen == [] and not ev.alive


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_event_not_alive_after_firing():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    assert ev.alive
    sim.run()
    assert not ev.alive


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    seen = []

    def first():
        sim.schedule(1.0, seen.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["second"] and sim.now == 2.0


def test_call_soon_runs_at_current_instant():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.call_soon(seen.append, sim.now))
    sim.run()
    assert seen == [1.0]


def test_step_fires_one_event():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.schedule(2.0, seen.append, 2)
    assert sim.step() and seen == [1]
    assert sim.step() and seen == [1, 2]
    assert not sim.step()


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
    sim.schedule(2.0, seen.append, 2)
    sim.run()
    assert seen == [1]
    sim.run()
    assert seen == [1, 2]


def test_run_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_max_events_bound():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(float(i + 1), seen.append, i)
    assert sim.run(max_events=3) == 3
    assert seen == [0, 1, 2]


def test_pending_and_peek():
    sim = Simulator()
    assert sim.peek() is None and sim.pending() == 0
    ev = sim.schedule(2.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    assert sim.peek() == 1.0 and sim.pending() == 2
    ev.cancel()
    assert sim.pending() == 1


def test_peek_skips_cancelled_head():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek() == 2.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_events_always_fire_in_time_order(delays):
    """Property: regardless of scheduling order, callbacks observe a
    non-decreasing clock."""
    sim = Simulator()
    observed = []
    for d in delays:
        sim.schedule(d, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.integers(min_value=-3, max_value=3)),
                min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_priority_respected_within_instant(items):
    sim = Simulator()
    fired = []
    for t, prio in items:
        sim.at(t, fired.append, (t, prio), priority=prio)
    sim.run()
    # Within each distinct time, priorities must be non-decreasing.
    for a, b in zip(fired, fired[1:]):
        if a[0] == b[0]:
            assert a[1] <= b[1] or items.index(a) < items.index(b) \
                if a[1] == b[1] else a[1] <= b[1]


# ----------------------------------------------------------------------
# Lazy-deletion compaction and O(1) pending accounting
# ----------------------------------------------------------------------
def test_cancel_churn_keeps_heap_bounded():
    """100k schedule+cancel cycles (the retransmission-timer pattern) must
    not accumulate dead entries: the heap stays near the live count."""
    sim = Simulator()
    peak = 0
    for _ in range(100_000):
        ev = sim.schedule(10.0, lambda: None)
        ev.cancel()
        peak = max(peak, len(sim._heap))
    assert peak < 1024
    assert sim.pending() == 0


def test_survivors_fire_in_order_after_mass_cancel():
    sim = Simulator()
    fired = []
    events = [sim.schedule(float(i + 1), fired.append, i)
              for i in range(2000)]
    # Cancel everything except every 7th event, forcing compactions.
    survivors = []
    for i, ev in enumerate(events):
        if i % 7 == 0:
            survivors.append(i)
        else:
            ev.cancel()
    assert len(sim._heap) < 2000  # compaction actually ran
    sim.run()
    assert fired == survivors


def test_pending_counter_tracks_schedule_cancel_fire():
    sim = Simulator()
    evs = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending() == 10
    evs[0].cancel()
    evs[3].cancel()
    assert sim.pending() == 8
    evs[0].cancel()  # idempotent: must not double-decrement
    assert sim.pending() == 8
    sim.run(until=2.5)  # fires events at t=2 (t=1 was cancelled)
    assert sim.pending() == 7
    sim.run()
    assert sim.pending() == 0


def test_cancel_during_run_updates_pending():
    sim = Simulator()
    later = sim.schedule(5.0, lambda: None)
    sim.schedule(1.0, later.cancel)
    sim.run()
    assert sim.pending() == 0


def test_compaction_preserves_peek_and_priorities():
    sim = Simulator()
    doomed = [sim.schedule(1.0, lambda: None) for _ in range(500)]
    keep_late = sim.schedule(2.0, lambda: None, priority=1)
    keep_early = sim.schedule(2.0, lambda: None, priority=-1)
    for ev in doomed:
        ev.cancel()
    assert sim.peek() == 2.0
    assert sim.pending() == 2
    fired = []
    sim.schedule(2.0, lambda: None)  # priority 0, scheduled last
    order = []
    keep_late.fn, keep_late.args = order.append, ("late",)
    keep_early.fn, keep_early.args = order.append, ("early",)
    sim.run()
    assert order == ["early", "late"]
    assert fired == []


def test_drain_empties_heap_and_counters():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    ev.cancel()
    sim.drain()
    assert sim.pending() == 0
    assert sim.peek() is None
    assert sim.run() == 0
