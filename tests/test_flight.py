"""Tests for the always-on flight recorder (ISSUE 7 tentpole part 2).

The contract: a bounded, deterministic ring of the last N notable events
rides every result -- success or failure -- at near-zero cost, and every
failure path (in-process crash, supervised crash, invariant violation,
supervisor timeout kill) attaches the dump to its ``FailedResult`` so
``repro forensics`` can render the last moments before death.
"""

from __future__ import annotations

import json
import pickle
import time

import pytest

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.invariants import InvariantViolation
from repro.obs.flight import (DEFAULT_CAPACITY, FlightRecorder,
                              first_divergence, flight_from_env,
                              render_flight)
from repro.runner import FailedResult, run_batch


def _small(**kw) -> ScenarioConfig:
    base = dict(transport="iq", workload="fixed_clocked", n_frames=30,
                time_cap=15.0)
    base.update(kw)
    return ScenarioConfig(**base)


# Module-level factories: picklable for fork-started workers and
# fingerprintable by the config hasher.
def boom_adaptation():
    raise RuntimeError("deliberate flight-test crash")


def violation_adaptation():
    raise InvariantViolation("test-invariant", "deliberate violation")


def hang_adaptation():
    time.sleep(300)


# ----------------------------------------------------------------------
# Ring mechanics
# ----------------------------------------------------------------------
def test_ring_evicts_oldest_and_keeps_monotone_ids():
    fl = FlightRecorder(capacity=4)
    for i in range(10):
        fl.note("run", "E", i=i)
    dump = fl.dump()
    assert dump["capacity"] == 4
    assert dump["events_noted"] == 10
    assert [ev["id"] for ev in dump["events"]] == [6, 7, 8, 9]
    assert [ev["i"] for ev in dump["events"]] == [6, 7, 8, 9]


def test_flight_from_env_semantics(monkeypatch):
    monkeypatch.delenv("REPRO_FLIGHT", raising=False)
    assert flight_from_env().capacity == DEFAULT_CAPACITY
    monkeypatch.setenv("REPRO_FLIGHT", "")
    assert flight_from_env().capacity == DEFAULT_CAPACITY
    monkeypatch.setenv("REPRO_FLIGHT", "0")
    assert flight_from_env() is None
    monkeypatch.setenv("REPRO_FLIGHT", "64")
    assert flight_from_env().capacity == 64
    monkeypatch.setenv("REPRO_FLIGHT", "not-a-number")
    assert flight_from_env().capacity == DEFAULT_CAPACITY


def _dump(n, *, capacity=8):
    fl = FlightRecorder(capacity=capacity)
    for i in range(n):
        fl.note("run", "E", i=i)
    return fl.dump()


def test_first_divergence():
    assert first_divergence(_dump(5), _dump(5)) is None
    a, b = _dump(5), _dump(5)
    b["events"][3]["i"] = 99
    assert first_divergence(a, b) == 3
    # Different event counts: divergence is at the shorter side's end.
    assert first_divergence(_dump(5), _dump(7)) == 5
    # A missing dump is not comparable, not a divergence at 0.
    assert first_divergence(None, _dump(3)) is None
    assert first_divergence(None, None) is None


def test_render_flight_marker_and_empty():
    dump = _dump(3)
    text = render_flight(dump, mark_id=1)
    assert "flight recorder: last 3 of 3 events" in text
    marked = [ln for ln in text.splitlines() if ln.startswith(">>")]
    assert len(marked) == 1 and "#1" in marked[0]
    assert "(flight recorder empty)" in render_flight(_dump(0))


# ----------------------------------------------------------------------
# Always-on capture
# ----------------------------------------------------------------------
def test_flight_rides_every_successful_result():
    res = run_scenario(_small())
    assert res.flight is not None
    events = [ev["event"] for ev in res.flight["events"]]
    assert events[0] == "START"
    assert "COMPLETE" in events


def test_repro_flight_zero_disarms(monkeypatch):
    monkeypatch.setenv("REPRO_FLIGHT", "0")
    res = run_scenario(_small())
    assert res.flight is None


def test_disarming_does_not_perturb_summary(monkeypatch):
    armed = run_scenario(_small(seed=3)).summary
    monkeypatch.setenv("REPRO_FLIGHT", "0")
    disarmed = run_scenario(_small(seed=3)).summary
    assert pickle.dumps(armed) == pickle.dumps(disarmed)


# ----------------------------------------------------------------------
# Failure forensics: every failure kind carries the dump
# ----------------------------------------------------------------------
def test_inprocess_crash_attaches_flight_dump():
    [bad] = run_batch([_small(adaptation=boom_adaptation)], jobs=1,
                      cache=False, on_error="capture")
    assert isinstance(bad, FailedResult) and bad.kind == "error"
    assert bad.flight is not None
    events = [ev["event"] for ev in bad.flight["events"]]
    assert events[0] == "START" and events[-1] == "EXCEPTION"
    assert bad.flight["events"][-1]["error"] == "RuntimeError"


def test_invariant_violation_attaches_flight_dump():
    [bad] = run_batch([_small(adaptation=violation_adaptation)], jobs=1,
                      cache=False, on_error="capture")
    assert isinstance(bad, FailedResult) and bad.kind == "invariant"
    assert bad.flight is not None
    assert bad.flight["events"][-1]["event"] == "EXCEPTION"


def test_supervised_crash_ships_flight_dump_across_process():
    [bad] = run_batch([_small(adaptation=boom_adaptation)], jobs=2,
                      cache=False, on_error="capture", timeout=60.0)
    assert isinstance(bad, FailedResult) and bad.kind == "error"
    assert bad.flight is not None
    assert bad.flight["events"][0]["event"] == "START"


def test_supervisor_timeout_kill_recovers_flight_dump():
    [bad] = run_batch([_small(adaptation=hang_adaptation)], jobs=2,
                      cache=False, on_error="capture", timeout=1.5)
    assert isinstance(bad, FailedResult) and bad.kind == "timeout"
    # The SIGTERM grace protocol pulls the dump out of the dying worker.
    assert bad.flight is not None
    events = [ev["event"] for ev in bad.flight["events"]]
    assert events[0] == "START" and "EXCEPTION" in events


def test_flight_dump_survives_failedresult_pickle():
    [bad] = run_batch([_small(adaptation=boom_adaptation)], jobs=1,
                      cache=False, on_error="capture")
    clone = pickle.loads(pickle.dumps(bad))
    assert clone.flight == bad.flight


# ----------------------------------------------------------------------
# repro forensics CLI
# ----------------------------------------------------------------------
class TestForensicsCli:
    def test_renders_failed_result(self, tmp_path, capsys):
        from repro.cli import main
        [bad] = run_batch([_small(adaptation=boom_adaptation)], jobs=1,
                          cache=False, on_error="capture")
        path = tmp_path / "bad.pkl"
        with open(path, "wb") as fh:
            pickle.dump(bad, fh)
        assert main(["forensics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "FAILED scenario" in out
        assert "flight recorder: last" in out
        assert "EXCEPTION error=RuntimeError" in out
        assert "worker traceback" in out

    def test_renders_successful_result_with_lineage(self, tmp_path, capsys):
        from repro.cli import main
        res = run_scenario(_small(spans=True)).detach()
        path = tmp_path / "ok.pkl"
        with open(path, "wb") as fh:
            pickle.dump(res, fh)
        assert main(["forensics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flight recorder: last" in out
        assert "Causal lineage" in out

    def test_renders_fuzz_forensics_json(self, tmp_path, capsys):
        from repro.cli import main
        a, b = _dump(4), _dump(4)
        b["events"][2]["i"] = 42
        payload = {
            "summary": "fuzz FAIL: 1 mismatch",
            "failures": [], "mismatches": ["case 0: summaries differ"],
            "forensics": [{"label": "jobs=4", "case": "case 0 (iq)",
                           "mismatches": ["case 0: summaries differ"],
                           "first_divergence": first_divergence(a, b),
                           "ref_flight": a, "other_flight": b}],
        }
        path = tmp_path / "fz.json"
        path.write_text(json.dumps(payload))
        assert main(["forensics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fuzz forensics: 1 record(s)" in out
        assert "first divergence" in out
        assert ">>" in out  # divergent event marked in the timeline

    def test_unknown_pickle_type_is_user_error(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"not": "a result"}, fh)
        assert main(["forensics", str(path)]) != 0
