"""Self-profiler tests: deterministic event counts, no perturbation of
results, mutual exclusion with armed invariants, and rendering."""

import pytest

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.obs.profiler import (EngineProfile, ProfiledSimulator,
                                profile_scenario, render_profile)
from repro.sim.engine import Simulator, callback_label


def _cfg(**kw):
    defaults = dict(transport="iq", workload="greedy", n_frames=300,
                    base_frame_size=700, cbr_bps=17.5e6, metric_period=0.1,
                    time_cap=60.0)
    defaults.update(kw)
    return ScenarioConfig(**defaults)


class TestCallbackLabel:
    def test_bound_method_qualname(self):
        sim = Simulator()
        assert callback_label(sim.stop) == "Simulator.stop"

    def test_callable_object_type_name(self):
        class Ticker:
            def __call__(self):
                pass
        assert callback_label(Ticker()) == "Ticker"


class TestProfiledSimulator:
    def test_same_event_sequence_as_stock(self):
        fired = []
        for sim_cls in (Simulator, ProfiledSimulator):
            sim = sim_cls()
            order = []
            sim.schedule(1.0, order.append, "a")
            sim.schedule(0.5, order.append, "b")
            ev = sim.schedule(0.7, order.append, "dead")
            ev.cancel()
            sim.schedule(1.0, order.append, "c", priority=-1)
            sim.run()
            fired.append((order, sim.now))
        assert fired[0] == fired[1]

    def test_counts_and_wall_recorded(self):
        sim = ProfiledSimulator()
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, sim.stop)
        sim.run()
        prof = sim.profile
        assert prof.events_fired == 2
        assert sum(prof.event_counts.values()) == 2
        assert "Simulator.stop" in prof.event_counts
        assert all(w >= 0.0 for w in prof.event_wall_s.values())

    def test_run_until_leaves_clock_at_until(self):
        sim = ProfiledSimulator()
        sim.schedule(0.25, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0


class TestProfileScenario:
    def test_counts_deterministic_and_result_unperturbed(self):
        plain = run_scenario(_cfg())
        res1, prof1 = profile_scenario(_cfg())
        res2, prof2 = profile_scenario(_cfg())
        assert prof1.counts() == prof2.counts()
        assert prof1.events_fired == prof2.events_fired
        assert res1.summary == plain.summary == res2.summary

    def test_phase_timers_recorded(self):
        _, prof = profile_scenario(_cfg(n_frames=50))
        assert set(prof.phase_s) == {"setup", "run", "collect"}
        assert all(v >= 0.0 for v in prof.phase_s.values())

    def test_mutually_exclusive_with_armed_invariants(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_scenario(_cfg(invariants=True), profile=EngineProfile())

    def test_render_marks_wall_columns_advisory(self):
        _, prof = profile_scenario(_cfg(n_frames=50))
        text = render_profile(prof, top=5)
        assert "advisory" in text
        assert "config-deterministic" in text
        assert "Link._tx_done" in text


class TestProfileCli:
    def test_profile_command_smoke(self, capsys):
        from repro.cli import main
        rc = main(["profile", "--frames", "50", "--frame-size", "700",
                   "--cbr", "17.5e6", "--time-cap", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Engine profile:" in out
        assert "Phases" in out

    def test_profile_command_json(self, capsys):
        import json
        from repro.cli import main
        rc = main(["profile", "--frames", "50", "--frame-size", "700",
                   "--time-cap", "30", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["profile"]["events_fired"] > 0
        assert "event_counts" in data["profile"]
        assert "summary" in data
