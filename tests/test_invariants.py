"""Tests for the runtime invariant-checking subsystem (ISSUE 4 part 2).

Two properties matter: the checker *catches* real violations (each law is
exercised by deliberately corrupting the watched state), and the checker
*never perturbs* a healthy run (armed and disarmed summaries must be
bit-identical -- the purity property the fuzzer's pass D re-checks at
scale).
"""

from __future__ import annotations

import pickle
from heapq import heappush

import pytest

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.invariants import (CHECK_PRIORITY, CheckedSimulator,
                              InvariantChecker, InvariantViolation)
from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.transport.cc import FixedWindowCC
from repro.transport.rudp import RudpConnection


def _armed(**kw) -> ScenarioConfig:
    base = dict(transport="iq", workload="fixed_clocked", n_frames=40,
                time_cap=20.0, invariants=True)
    base.update(kw)
    return ScenarioConfig(**base)


# ----------------------------------------------------------------------
# The violation object
# ----------------------------------------------------------------------
def test_violation_carries_structure_and_renders():
    exc = InvariantViolation("queue-conservation", "books do not balance",
                             sim_time=1.25, scenario="iq/greedy/seed=1",
                             counters={"arrivals": 10, "departures": 9})
    assert exc.name == "queue-conservation"
    assert exc.sim_time == 1.25
    text = str(exc)
    assert "queue-conservation" in text and "t=1.250000s" in text
    assert "arrivals=10" in text and "iq/greedy/seed=1" in text


def test_violation_survives_pickle_roundtrip():
    exc = InvariantViolation("cwnd-bounds", "too big", sim_time=2.0,
                             scenario="s", counters={"cwnd": 99.0})
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, InvariantViolation)
    assert clone.name == exc.name and clone.counters == exc.counters
    assert str(clone) == str(exc)


# ----------------------------------------------------------------------
# Engine: checked run loop + audit
# ----------------------------------------------------------------------
def test_checked_simulator_runs_identically_to_stock():
    def workload(sim):
        order = []
        sim.schedule(0.2, order.append, "b")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.1, lambda: sim.schedule(0.05, order.append, "c"))
        fired = sim.run(until=1.0)
        return order, fired, sim.now

    plain = workload(Simulator())
    checked_sim = CheckedSimulator()
    checked = workload(checked_sim)
    assert plain == checked
    assert checked_sim.events_checked == checked[1]


def test_checked_simulator_catches_clock_regression():
    sim = CheckedSimulator()
    sim.at(1.0, lambda: None)
    sim.run(until=2.0)
    # Forge a past-dated heap entry, bypassing the scheduling-time guard
    # (at()/schedule() reject past times, so only heap corruption -- the
    # exact bug class this check exists for -- can produce one).
    ev = sim.at(3.0, lambda: None)
    sim._heap.clear()
    heappush(sim._heap, (0.5, 0, 0, ev))
    with pytest.raises(InvariantViolation) as ei:
        sim.run()
    assert ei.value.name == "time-monotonicity"
    assert ei.value.counters["event_time"] == 0.5


def test_engine_audit_flags_counter_corruption():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    assert sim.audit() is None
    sim._dead = 99  # more dead entries than the heap holds
    assert sim.audit() is not None


# ----------------------------------------------------------------------
# The checker: each law trips on deliberately corrupted state
# ----------------------------------------------------------------------
def test_checker_rejects_bad_period():
    with pytest.raises(ValueError):
        InvariantChecker(Simulator(), period=0.0)


def test_queue_conservation_breach_is_caught():
    sim = Simulator()
    net = Dumbbell(sim)
    checker = InvariantChecker(sim, scenario="tampered")
    checker.watch_network(net)
    checker.check_all()  # healthy books balance
    net.forward.queue.stats.arrivals += 7
    with pytest.raises(InvariantViolation) as ei:
        checker.check_all()
    assert ei.value.name == "queue-conservation"
    assert ei.value.scenario == "tampered"
    assert ei.value.counters["arrivals"] == 7


def test_cwnd_bounds_breach_is_caught():
    cc = FixedWindowCC()
    assert cc.bounds_violation() is None
    cc.cwnd = cc.max_cwnd * 2
    assert cc.bounds_violation() is not None
    cc.cwnd = cc.min_cwnd / 2
    assert cc.bounds_violation() is not None


def test_sequence_regression_is_caught():
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("f")
    log = DeliveryLog()
    conn = RudpConnection(sim, snd, rcv, on_deliver=log.on_deliver)
    checker = InvariantChecker(sim)
    checker.watch_flow(conn, log)
    for i in range(20):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=30.0)
    checker.check_all()  # healthy end state passes
    conn.receiver.reorder.rcv_nxt -= 1  # rewind the delivery cursor
    with pytest.raises(InvariantViolation) as ei:
        checker.check_all()
    assert ei.value.name == "sequence-monotonicity"
    assert "rcv_nxt" in str(ei.value)


def test_frame_accounting_breach_is_caught():
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("f")
    log = DeliveryLog()
    conn = RudpConnection(sim, snd, rcv, on_deliver=log.on_deliver)
    checker = InvariantChecker(sim)
    checker.watch_flow(conn, log)
    for i in range(10):
        conn.submit(1400, frame_id=i)
    conn.finish()
    sim.run(until=30.0)
    checker.check_all()
    conn.receiver.stats.delivered_packets += 1  # transport/middleware split
    with pytest.raises(InvariantViolation) as ei:
        checker.check_all()
    assert ei.value.name == "frame-accounting"


def test_check_priority_runs_after_same_instant_work():
    # A tick at time T must observe T's post-quiescent state: the
    # CHECK_PRIORITY event fires after an ordinary one at the same time.
    sim = Simulator()
    order = []
    sim.at(1.0, order.append, "check", priority=CHECK_PRIORITY)
    sim.at(1.0, order.append, "work")
    sim.run()
    assert order == ["work", "check"]


# ----------------------------------------------------------------------
# End-to-end arming through run_scenario
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["tcp", "rudp", "iq"])
def test_armed_scenario_runs_checks_and_matches_disarmed(transport):
    armed = run_scenario(_armed(transport=transport))
    disarmed = run_scenario(_armed(transport=transport, invariants=False))
    assert armed.invariant_checks > 0
    assert disarmed.invariant_checks == 0
    # Purity: arming must not change a single summary bit.
    assert armed.summary == disarmed.summary


def test_env_var_arms_invariants(monkeypatch):
    monkeypatch.setenv("REPRO_INVARIANTS", "1")
    res = run_scenario(_armed(invariants=False))
    assert res.invariant_checks > 0


def test_armed_run_with_faults_and_cross_traffic():
    from repro.faults.schedule import Blackout, FaultSchedule
    res = run_scenario(_armed(
        transport="iq", faults=FaultSchedule(Blackout(0.5, 0.9)),
        cbr_bps=2e6, tcp_cross_bytes=100_000))
    assert res.invariant_checks > 0
    # The blackout exercises the flush path in queue conservation.
    assert not res.failed


def test_violation_surfaces_as_failed_result_in_batch(monkeypatch):
    # Corrupt a watched counter mid-run via a hostile adaptation-like hook:
    # simplest honest route is monkeypatching check_all to trip once the
    # run is underway, proving the runner classifies kind="invariant".
    from repro.runner import FailedResult, run_batch

    real = InvariantChecker.check_all

    def tripping(self):
        real(self)
        if self.checks_run >= 3:
            self._fail("queue-conservation", "synthetic trip for test",
                       arrivals=1, departures=0)

    monkeypatch.setattr(InvariantChecker, "check_all", tripping)
    [res] = run_batch([_armed()], jobs=1, cache=False, on_error="capture")
    assert isinstance(res, FailedResult)
    assert res.kind == "invariant" and not res.transient
    assert "queue-conservation" in res.message
