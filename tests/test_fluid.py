"""Fluid background tier (repro.sim.fluid): coupling, limits, determinism.

FluidSource is an approximation by construction, so unlike the burst tier
it is tested for *correct pressure*, not bit-identity: the under-load
steady state must reduce to the residual-capacity limit, overload must pin
the link at its guaranteed packet share and shrink the drop-tail budget,
and stop()/profile transitions must restore the nominal operating point.
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.fluid import FluidSource
from repro.sim.link import Link


class _NullSink:
    def receive(self, pkt):
        pass


def _rig(nominal_bps=20e6, queue_bytes=64 * 1440):
    sim = Simulator()
    link = Link(sim, nominal_bps, 0.010, _NullSink(),
                queue_bytes=queue_bytes)
    return sim, link


def test_validation():
    sim, link = _rig()
    with pytest.raises(ValueError):
        FluidSource(sim, link, rate_bps=-1.0)
    with pytest.raises(ValueError):
        FluidSource(sim, link, rate_bps=1e6, tick_s=0.0)
    with pytest.raises(ValueError):
        FluidSource(sim, link, rate_bps=1e6, share_cap=1.0)
    with pytest.raises(ValueError):
        FluidSource(sim, link, rate_bps=1e6, queue_share=0.0)
    fl = FluidSource(sim, link, rate_bps=1e6)
    with pytest.raises(ValueError):
        fl.set_rate(-5.0)


def test_underload_reduces_to_residual_capacity():
    """rate < share_cap * nominal: no backlog, no drops, and the link is
    re-rated to exactly nominal - rate (the classic fluid limit)."""
    sim, link = _rig(nominal_bps=20e6)
    fl = FluidSource(sim, link, rate_bps=8e6)
    sim.run(until=5.0)
    assert link.bandwidth_bps == pytest.approx(12e6)
    assert fl.backlog_bytes == 0.0
    assert fl.dropped_bytes == 0.0
    assert fl.served_bytes == pytest.approx(fl.offered_bytes)
    assert link.queue.capacity_bytes == fl.base_queue_bytes
    assert fl.ticks == pytest.approx(5.0 / fl.tick_s, abs=2)


def test_overload_saturates_share_and_squeezes_queue():
    """rate > nominal: bandwidth pins at the (1 - share_cap) packet floor,
    the backlog caps at queue_share of the buffer (excess becomes fluid
    drops), and the drop-tail budget shrinks accordingly."""
    sim, link = _rig(nominal_bps=20e6)
    fl = FluidSource(sim, link, rate_bps=40e6,
                     share_cap=0.95, queue_share=0.5)
    sim.run(until=5.0)
    assert link.bandwidth_bps == pytest.approx(0.05 * 20e6)
    assert fl.backlog_bytes == pytest.approx(0.5 * fl.base_queue_bytes)
    assert fl.dropped_bytes > 0.0
    expected_cap = fl.base_queue_bytes - int(fl.backlog_bytes)
    assert link.queue.capacity_bytes == max(expected_cap,
                                            fl.min_queue_bytes)
    # Conservation: offered = served + dropped + standing backlog.
    assert fl.offered_bytes == pytest.approx(
        fl.served_bytes + fl.dropped_bytes + fl.backlog_bytes)


def test_stop_restores_nominal_operating_point():
    sim, link = _rig(nominal_bps=20e6)
    fl = FluidSource(sim, link, rate_bps=40e6, stop=2.0)
    sim.run(until=5.0)
    assert link.bandwidth_bps == fl.nominal_bps
    assert link.queue.capacity_bytes == fl.base_queue_bytes
    assert fl.backlog_bytes == 0.0
    assert fl.dropped_bytes > 0.0  # discarded backlog counts as drops
    assert not fl._running
    # Idempotent.
    fl.stop()
    assert link.bandwidth_bps == fl.nominal_bps


def test_profile_steps_change_rate():
    sim, link = _rig(nominal_bps=20e6)
    fl = FluidSource(sim, link, rate_bps=5e6,
                     profile=[(1.0, 15e6), (2.0, 0.0)])
    sim.run(until=0.9)
    assert link.bandwidth_bps == pytest.approx(15e6, rel=0.01)
    sim.run(until=1.9)
    assert fl.rate_bps == 15e6
    assert link.bandwidth_bps == pytest.approx(5e6, rel=0.01)
    sim.run(until=3.0)
    assert fl.rate_bps == 0.0
    assert link.bandwidth_bps == pytest.approx(20e6, rel=0.01)


def test_deterministic():
    """No RNG anywhere: two identical runs agree to the bit."""
    def run():
        sim, link = _rig()
        fl = FluidSource(sim, link, rate_bps=13e6,
                         profile=[(0.5, 25e6), (1.5, 4e6)])
        sim.run(until=3.0)
        return (link.bandwidth_bps, link.queue.capacity_bytes,
                fl.telemetry_probe())

    assert run() == run()


def test_telemetry_probe_keys():
    sim, link = _rig()
    fl = FluidSource(sim, link, rate_bps=1e6)
    sim.run(until=0.5)
    probe = fl.telemetry_probe()
    assert set(probe) == {"offered_bytes", "served_bytes", "dropped_bytes",
                          "backlog_bytes", "rate_bps"}
    assert probe["rate_bps"] == 1e6


def test_pressure_tracks_cbr_direction():
    """Directional sanity vs the packet-level CbrSource it replaces: a
    foreground greedy flow must see *less* goodput as the background rate
    rises, under either background model."""
    from repro.experiments.common import ScenarioConfig, run_scenario

    def goodput(fluid_bps, cbr_bps):
        # 8 Mbps bottleneck so 7 Mbps of background genuinely squeezes
        # the ~0.9 Mbps foreground demand.
        cfg = ScenarioConfig(transport="rudp", workload="greedy",
                             n_frames=100, cbr_bps=cbr_bps,
                             fluid_bps=fluid_bps, time_cap=60.0,
                             bottleneck_bps=8e6)
        return run_scenario(cfg).summary["throughput_kBps"]

    fluid_lo, fluid_hi = goodput(1e6, 0.0), goodput(7e6, 0.0)
    cbr_lo, cbr_hi = goodput(0.0, 1e6), goodput(0.0, 7e6)
    assert fluid_hi < 0.95 * fluid_lo
    assert cbr_hi < cbr_lo
    # Same ballpark as the packet model it replaces (approximation: 2x).
    assert 0.5 * cbr_hi < fluid_hi < 2.0 * cbr_hi
