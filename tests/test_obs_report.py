"""Report tests: the coordination audit on the paper's three coordination
cases (conflict discard, over-reaction re-inflation, limited-granularity
drift correction), plus timeline/report rendering."""

import pytest

from repro.core.attributes import (ADAPT_COND, ADAPT_MARK, ADAPT_PKTSIZE,
                                   ADAPT_WHEN, AttributeSet)
from repro.core.coordination import IQCoordinator
from repro.obs.bus import TraceBus
from repro.obs.events import (ATTR_RECEIVED, COORD_ACTION, CWND_CHANGE,
                              PACKET_SEND)
from repro.obs.report import (TIMELINE_EVENTS, coordination_audit,
                              render_audit, render_report, render_timeline)
from repro.obs.sinks import RingBufferSink
from repro.sim.engine import Simulator
from repro.transport.lda import LdaCC


class TracedSender:
    """Minimal sender surface for the coordinator, with a live bus."""

    def __init__(self, *, cwnd=20.0, frame_size=700, error_ratio=0.0):
        self.cc = LdaCC(initial_cwnd=cwnd, initial_ssthresh=4)
        self.mss = 1400
        self.last_frame_size = frame_size
        self.discard_unmarked = False
        self.flow_id = 1
        self._eratio = error_ratio
        self.sink = RingBufferSink()
        self.trace = TraceBus(Simulator(), sinks=[self.sink])

    def current_error_ratio(self):
        return self._eratio

    @property
    def events(self):
        return [ev.as_obj() for ev in self.sink.events]


def drive(snd, *attr_sets):
    coord = IQCoordinator()
    coord.bind(snd)
    for attrs in attr_sets:
        coord.on_callback_result(attrs)
    return coord


def action_events(events, action):
    return [ev for ev in events
            if ev["event"] == COORD_ACTION and ev["action"] == action]


class TestAuditPaperCases:
    def test_conflict_marking_pairs_with_discard(self):
        """Section 3.3: an ADAPT_MARK exchange must pair with the discard
        switch it caused."""
        snd = TracedSender()
        drive(snd, AttributeSet({ADAPT_MARK: 0.4}))
        events = snd.events
        (act,) = action_events(events, "discard")
        assert act["enabled"] is True and act["changed"] is True
        assert act["unmark_p"] == pytest.approx(0.4)
        audit = coordination_audit(events)
        assert len(audit["pairs"]) == 1
        assert audit["unmatched_attrs"] == []
        assert audit["unmatched_actions"] == []
        pair = audit["pairs"][0]
        assert pair["attr"]["event"] == ATTR_RECEIVED
        assert pair["actions"][0]["attr_seq"] == pair["attr"]["seq"]

    def test_overreaction_reinflates_by_paper_factor(self):
        """Section 3.4: rate_chg = 0.5 with a sub-MSS frame re-inflates the
        window by exactly 1/(1-rate_chg) = 2x."""
        snd = TracedSender(cwnd=20.0, frame_size=700)
        drive(snd, AttributeSet({ADAPT_PKTSIZE: 0.5}))
        (act,) = action_events(snd.events, "window_rescale")
        assert act["base_factor"] == pytest.approx(1.0 / (1.0 - 0.5))
        assert act["drift"] == pytest.approx(1.0)
        assert act["factor"] == pytest.approx(2.0)
        assert act["cwnd_after"] == pytest.approx(act["cwnd_before"] * 2.0)
        assert snd.cc.cwnd == pytest.approx(40.0)

    def test_overreaction_skipped_for_large_frames(self):
        """The paper only re-inflates when the frame is smaller than the
        MSS; the audit still records why nothing changed."""
        snd = TracedSender(cwnd=20.0, frame_size=1400)
        drive(snd, AttributeSet({ADAPT_PKTSIZE: 0.5}))
        (act,) = action_events(snd.events, "rescale_skipped_large_frame")
        assert act["last_frame_size"] == 1400 and act["mss"] == 1400
        assert snd.cc.cwnd == pytest.approx(20.0)
        assert len(coordination_audit(snd.events)["pairs"]) == 1

    def test_granularity_pending_then_drift_corrected_rescale(self):
        """Section 3.5: a pending adaptation followed by the executed change
        with ADAPT_COND applies the Eq. 1 drift (1-e_new)/(1-e_old)."""
        snd = TracedSender(cwnd=20.0, frame_size=700, error_ratio=0.05)
        coord = drive(
            snd,
            AttributeSet({ADAPT_WHEN: "pending"}),
            AttributeSet({ADAPT_PKTSIZE: 0.2,
                          ADAPT_COND: {"error_ratio": 0.1}}))
        events = snd.events
        assert len(action_events(events, "pending")) == 1
        (act,) = action_events(events, "window_rescale")
        drift = (1.0 - 0.05) / (1.0 - 0.1)
        assert act["drift"] == pytest.approx(drift)
        assert act["factor"] == pytest.approx(1.0 / (1.0 - 0.2) * drift)
        assert coord.pending_adaptations == 1
        assert coord.cond_corrections == 1
        audit = coordination_audit(events)
        assert len(audit["pairs"]) == 2  # both exchanges acted on
        assert audit["unmatched_actions"] == []


class TestAuditEdges:
    def test_unmatched_attr_and_action(self):
        events = [
            {"seq": 0, "t": 0.0, "layer": "coord", "event": ATTR_RECEIVED,
             "attrs": {}},
            {"seq": 5, "t": 0.1, "layer": "coord", "event": COORD_ACTION,
             "attr_seq": 99, "action": "discard"},
        ]
        audit = coordination_audit(events)
        assert audit["pairs"] == []
        assert len(audit["unmatched_attrs"]) == 1
        assert len(audit["unmatched_actions"]) == 1
        text = render_audit(events)
        assert "(no action)" in text and "(missing exchange)" in text

    def test_render_audit_empty(self):
        assert "no attribute exchanges" in render_audit([])


class TestTimeline:
    EVENTS = [
        {"seq": 0, "t": 0.0, "layer": "transport", "event": PACKET_SEND,
         "size": 1400},
        {"seq": 1, "t": 0.1, "layer": "transport", "event": CWND_CHANGE,
         "reason": "timeout", "old": 8.0, "new": 1.0},
        {"seq": 2, "t": 0.2, "layer": "coord", "event": COORD_ACTION,
         "attr_seq": 1, "action": "pending"},
    ]

    def test_default_filter_hides_packet_firehose(self):
        text = render_timeline(self.EVENTS)
        assert PACKET_SEND not in TIMELINE_EVENTS
        assert "PACKET_SEND" not in text
        assert "CWND_CHANGE" in text and "COORD_ACTION" in text

    def test_explicit_types_and_all(self):
        only = render_timeline(self.EVENTS, types=[PACKET_SEND])
        assert "PACKET_SEND" in only and "CWND_CHANGE" not in only
        everything = render_timeline(self.EVENTS, types=())
        assert "PACKET_SEND" in everything and "CWND_CHANGE" in everything

    def test_limit_keeps_last_rows(self):
        text = render_timeline(self.EVENTS, types=(), limit=1)
        assert "COORD_ACTION" in text and "PACKET_SEND" not in text
        assert "(1/3 events shown)" in text

    def test_no_matches(self):
        assert "no matching events" in render_timeline(
            self.EVENTS, types=["QUEUE_DEPTH"])


def test_render_report_end_to_end(tmp_path):
    """Full chain: congested IQ run with resolution adaptation -> trace file
    -> report with a timeline and an audit pairing every exchange."""
    from repro.experiments.common import ScenarioConfig
    from repro.middleware.adaptation import ResolutionAdaptation
    from repro.runner import run_batch

    path = tmp_path / "run.jsonl"
    cfg = ScenarioConfig(
        transport="iq", workload="greedy", n_frames=2000,
        base_frame_size=700, cbr_bps=17.5e6, vbr_mean_bps=1e6,
        metric_period=0.1,
        adaptation=lambda: ResolutionAdaptation(upper=0.05, lower=0.005),
        seed=2, time_cap=120.0)
    run_batch({"iq-run": cfg}, cache=False, trace=str(path))
    text = render_report(path)
    assert "== run iq-run" in text
    assert "Timeline" in text and "Coordination audit" in text
    assert "exchanges acted on" in text
    # Every recorded exchange must resolve to a transport action or be
    # explicitly listed as consumed-without-action; none may dangle.
    from repro.obs.sinks import read_trace
    _, runs = read_trace(path)
    audit = coordination_audit(runs[0]["events"])
    assert audit["pairs"], "IQ run produced no attribute->action pairs"
    assert audit["unmatched_actions"] == []

    with pytest.raises(ValueError):
        render_report(path, run="nope")


def test_report_cli(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "cli.jsonl"
    rc = main(["scenario", "--transport", "iq", "--workload", "greedy",
               "--frames", "2000", "--frame-size", "700", "--cbr", "17.5e6",
               "--vbr", "1e6", "--adaptation", "resolution", "--seed", "2",
               "--time-cap", "120", "--trace", str(path)])
    assert rc == 0
    assert path.exists()
    rc = main(["report", str(path), "--limit", "10"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Trace report" in out and "Coordination audit" in out


def test_report_json_matches_render_selection(tmp_path):
    import json
    from repro.experiments.common import ScenarioConfig
    from repro.middleware.adaptation import ResolutionAdaptation
    from repro.obs.report import report_json
    from repro.runner import run_batch

    path = tmp_path / "rep.jsonl"
    cfg = ScenarioConfig(transport="iq", workload="greedy", n_frames=2000,
                         base_frame_size=700, cbr_bps=17.5e6,
                         vbr_mean_bps=1e6, metric_period=0.1,
                         adaptation=lambda: ResolutionAdaptation(
                             upper=0.05, lower=0.005),
                         seed=2, time_cap=120.0)
    run_batch({"a": cfg}, cache=False, trace=str(path))
    data = report_json(path)
    json.dumps(data)  # must be JSON-clean
    assert data["format"] == "repro-trace"
    (run,) = data["runs"]
    assert run["run"] == "a"
    assert run["events_total"] > len(run["timeline"])  # firehose filtered
    assert {"pairs", "unmatched_attrs", "spontaneous",
            "unmatched_actions"} == set(run["audit"])
    # limit keeps the tail, types widens the filter
    limited = report_json(path, limit=3)
    assert len(limited["runs"][0]["timeline"]) == 3
    assert limited["runs"][0]["timeline"] == run["timeline"][-3:]
    everything = report_json(path, types=())
    assert len(everything["runs"][0]["timeline"]) == run["events_total"]
    with pytest.raises(ValueError):
        report_json(path, run="nope")


def test_report_cli_json(tmp_path, capsys):
    import json
    from repro.cli import main

    path = tmp_path / "cli.jsonl"
    rc = main(["scenario", "--transport", "iq", "--workload", "greedy",
               "--frames", "300", "--frame-size", "700", "--cbr", "17.5e6",
               "--time-cap", "60", "--trace", str(path)])
    assert rc == 0
    capsys.readouterr()  # drop the scenario table
    rc = main(["report", str(path), "--json", "--limit", "5"])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["format"] == "repro-trace"
    assert len(data["runs"][0]["timeline"]) <= 5
