"""Unit tests for the IQ-ECho event-channel middleware."""

import pytest

from repro.core.attributes import ADAPT_PKTSIZE, AttributeSet
from repro.middleware.echo import EventChannel
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.transport.iq_rudp import IqRudpConnection


def make_channel():
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("e")
    holder = {}
    conn = IqRudpConnection(
        sim, snd, rcv,
        on_deliver=lambda pkt, now: holder["ch"].on_deliver(pkt, now))
    ch = EventChannel(sim, conn, name="test")
    holder["ch"] = ch
    return sim, conn, ch


def test_submit_and_deliver_event():
    sim, conn, ch = make_channel()
    events = []
    ch.subscribe(events.append)
    ch.submit(1000)
    ch.close()
    sim.run(until=5.0)
    assert len(events) == 1
    ev = events[0]
    assert ev.size == 1000 and ev.segments == 1
    assert ev.latency > 0


def test_multi_segment_event_assembled():
    sim, conn, ch = make_channel()
    events = []
    ch.subscribe(events.append)
    ch.submit(5000)  # 4 segments
    ch.close()
    sim.run(until=5.0)
    assert len(events) == 1
    assert events[0].segments == 4
    assert events[0].size == 5000


def test_frame_ids_assigned_sequentially():
    sim, conn, ch = make_channel()
    ids = [ch.submit(100) for _ in range(5)]
    assert ids == list(range(5))
    assert ch.events_submitted == 5


def test_events_delivered_in_order():
    sim, conn, ch = make_channel()
    order = []
    ch.subscribe(lambda ev: order.append(ev.frame_id))
    for _ in range(20):
        ch.submit(2000)
    ch.close()
    sim.run(until=10.0)
    assert order == list(range(20))
    assert ch.events_delivered == 20


def test_cmwritev_attr_reaches_coordinator():
    sim, conn, ch = make_channel()
    # A sub-MSS event carrying a resolution attribute triggers the
    # over-reaction coordination.
    ch.cmwritev_attr(700, AttributeSet({ADAPT_PKTSIZE: 0.5}))
    assert conn.coordinator.window_rescales == 1


def test_multiple_subscribers():
    sim, conn, ch = make_channel()
    a, b = [], []
    ch.subscribe(a.append)
    ch.subscribe(b.append)
    ch.submit(100)
    ch.close()
    sim.run(until=5.0)
    assert len(a) == len(b) == 1


def test_event_repr_and_latency():
    sim, conn, ch = make_channel()
    got = []
    ch.subscribe(got.append)
    ch.submit(1400, tagged=True)
    ch.close()
    sim.run(until=5.0)
    ev = got[0]
    assert ev.tagged_segments == 1
    assert "latency" in repr(ev)
