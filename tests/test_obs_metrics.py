"""Unit tests for the metrics registry: instrument semantics, the bounded
deterministic histogram reservoir, summary export, and pickle transport."""

import pickle

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("retx")
        c.inc()
        c.inc(3)
        assert c.value == 4.0

    def test_gauge_last_value_wins(self):
        g = Gauge("cwnd")
        g.set(10)
        g.set(2.5)
        assert g.value == 2.5

    def test_pickle_roundtrip(self):
        c, g = Counter("a"), Gauge("b")
        c.inc(7)
        g.set(1.25)
        c2, g2 = pickle.loads(pickle.dumps((c, g)))
        assert (c2.name, c2.value) == ("a", 7.0)
        assert (g2.name, g2.value) == ("b", 1.25)


class TestHistogram:
    def test_exact_aggregates_always_tracked(self):
        h = Histogram("x", maxlen=8)
        for v in range(100):
            h.add(v)
        assert h.count == 100
        assert h.total == sum(range(100))
        assert (h.min, h.max) == (0.0, 99.0)
        assert h.mean == pytest.approx(49.5)

    def test_reservoir_stays_bounded(self):
        h = Histogram("x", maxlen=64)
        for v in range(10_000):
            h.add(v)
        assert len(h.samples) <= 64
        assert h.count == 10_000

    def test_reservoir_is_deterministic(self):
        a, b = Histogram("x", maxlen=32), Histogram("x", maxlen=32)
        for v in range(5000):
            a.add(v * 0.5)
            b.add(v * 0.5)
        assert a.samples == b.samples
        assert a._stride == b._stride

    def test_percentile_nearest_rank(self):
        h = Histogram("x", maxlen=256)
        for v in range(1, 101):
            h.add(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100
        assert h.percentile(50) == pytest.approx(50, abs=1)

    def test_stats_keys_and_empty(self):
        h = Histogram("x")
        empty = h.stats()
        assert empty == {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                         "p50": 0.0, "p95": 0.0}
        h.add(2.0)
        assert h.stats()["count"] == 1.0
        assert h.stats()["mean"] == 2.0

    def test_rejects_degenerate_maxlen(self):
        with pytest.raises(ValueError):
            Histogram("x", maxlen=1)

    def test_pickle_roundtrip_preserves_reservoir(self):
        h = Histogram("x", maxlen=16)
        for v in range(1000):
            h.add(v)
        h2 = pickle.loads(pickle.dumps(h))
        assert h2.samples == h.samples
        assert (h2.count, h2.total, h2.min, h2.max) == (
            h.count, h.total, h.min, h.max)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_summary_flattens_with_prefix(self):
        reg = MetricsRegistry()
        reg.counter("retx").inc(5)
        reg.gauge("cwnd").set(12.0)
        h = reg.histogram("rtt")
        h.add(0.03)
        h.add(0.05)
        out = reg.summary(prefix="obs_")
        assert out["obs_retx"] == 5.0
        assert out["obs_cwnd"] == 12.0
        assert out["obs_rtt_count"] == 2.0
        assert out["obs_rtt_mean"] == pytest.approx(0.04)
        for stat in ("count", "mean", "p50", "p95", "max"):
            assert f"obs_rtt_{stat}" in out
        assert all(isinstance(v, float) for v in out.values())

    def test_summary_order_is_deterministic(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.counter(name).inc()
            return list(reg.summary())
        assert build(["b", "a", "c"]) == build(["c", "b", "a"])

    def test_registry_pickle_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("sent").inc(9)
        reg.histogram("err").add(0.1)
        reg2 = pickle.loads(pickle.dumps(reg))
        assert reg2.summary() == reg.summary()


def test_scenario_summary_carries_obs_metrics():
    """run_scenario rolls the registry into the summary, and the registry
    itself survives detach()."""
    from repro.experiments.common import ScenarioConfig, run_scenario
    res = run_scenario(ScenarioConfig(transport="iq", workload="greedy",
                                      n_frames=100, time_cap=60.0)).detach()
    assert res.registry is not None
    assert res.summary["obs_packets_sent"] >= 100
    assert res.summary["obs_period_error_ratio_count"] > 0
    assert "obs_cwnd_final" in res.summary
    assert "obs_bottleneck_drops" in res.summary
    clone = pickle.loads(pickle.dumps(res))
    assert clone.summary == res.summary


class TestPrometheusRendering:
    def test_golden_exposition_text(self):
        # Byte-exact golden: render_prometheus pins ordering and number
        # formatting precisely so this test (and diff-based tooling) works.
        reg = MetricsRegistry()
        reg.counter("packets sent").inc(5)
        reg.gauge("cwnd").set(12.5)
        h = reg.histogram("rtt_s")
        for x in (0.01, 0.03, 0.05):
            h.add(x)
        expected = (
            "# TYPE repro_packets_sent counter\n"
            "repro_packets_sent 5\n"
            "# TYPE repro_cwnd gauge\n"
            "repro_cwnd 12.5\n"
            "# TYPE repro_rtt_s summary\n"
            'repro_rtt_s{quantile="0.5"} 0.03\n'
            'repro_rtt_s{quantile="0.95"} 0.05\n'
            "repro_rtt_s_sum 0.09\n"
            "repro_rtt_s_count 3\n"
        )
        assert reg.render_prometheus() == expected

    def test_name_sanitisation_and_prefix(self):
        from repro.obs.metrics import _prom_name
        assert _prom_name("repro_", "queue.fwd-drops") == \
            "repro_queue_fwd_drops"
        assert _prom_name("", "9lives") == "_9lives"

    def test_value_formatting_edges(self):
        from repro.obs.metrics import _prom_value
        assert _prom_value(float("nan")) == "NaN"
        assert _prom_value(float("inf")) == "+Inf"
        assert _prom_value(float("-inf")) == "-Inf"
        assert _prom_value(3.0) == "3"
        assert _prom_value(0.1234567890123) == "0.123456789"

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_render_is_deterministic_across_insert_order(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.counter(name).inc(2)
            return reg.render_prometheus()
        assert build(["b", "a"]) == build(["a", "b"])


class TestMetricsCli:
    def test_metrics_command_renders_scenario_registry(self, tmp_path,
                                                       capsys):
        import pickle
        from repro.cli import main
        from repro.experiments.common import ScenarioConfig, run_scenario
        res = run_scenario(ScenarioConfig(transport="iq", workload="greedy",
                                          n_frames=100,
                                          time_cap=60.0)).detach()
        path = tmp_path / "res.pkl"
        with open(path, "wb") as fh:
            pickle.dump(res, fh)
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_packets_sent counter" in out
        assert out == res.registry.render_prometheus()

    def test_metrics_command_missing_registry_is_user_error(self, tmp_path,
                                                            capsys):
        import pickle
        from repro.cli import main
        from repro.experiments.common import ScenarioResult
        bare = ScenarioResult(summary={}, log=[], conn=None, source=None,
                              strategy=None, net=None, sim=None,
                              completed=0)
        path = tmp_path / "bare.pkl"
        with open(path, "wb") as fh:
            pickle.dump(bare, fh)
        assert main(["metrics", str(path)]) == 2
        assert "error:" in capsys.readouterr().err
