"""Tests for the declarative network-dynamics subsystem (:mod:`repro.faults`).

Schedules must behave like every other ``ScenarioConfig`` field (validated,
immutable, hashable, picklable, repr-stable -- the results cache
fingerprints configs via repr), and the injector must translate each phase
kind into exactly the impairment it declares.
"""

import pickle
import random

import pytest

from repro.faults import (BandwidthRamp, Blackout, BurstyLoss, DelayRamp,
                          FaultInjector, FaultSchedule, Jitter, LinkFlap)
from repro.sim.engine import Simulator
from repro.sim.link import DelayJitter, GilbertElliottLoss
from repro.sim.packet import Packet
from repro.sim.topology import Dumbbell


# ----------------------------------------------------------------------
# Gilbert--Elliott loss model
# ----------------------------------------------------------------------
def test_gilbert_elliott_stationary_loss_rate():
    """Long-run loss converges to the bad-state occupancy p_gb/(p_gb+p_bg)
    (classic Gilbert: loss_good=0, loss_bad=1)."""
    p_gb, p_bg = 0.02, 0.2
    model = GilbertElliottLoss(p_gb=p_gb, p_bg=p_bg,
                               rng=random.Random(12345))
    pkt = Packet(flow_id=1, seq=0, size=1400)
    n = 200_000
    dropped = sum(model.drops(pkt) for _ in range(n))
    expected = p_gb / (p_gb + p_bg)
    assert dropped / n == pytest.approx(expected, rel=0.08)
    assert model.offered == n
    assert model.dropped == dropped
    assert model.bursts > 100  # it really alternates, not one long burst


def test_gilbert_elliott_losses_are_bursty():
    """Drops cluster: the mean run length of consecutive drops must be
    well above the IID value (~1) for the same loss rate."""
    model = GilbertElliottLoss(p_gb=0.01, p_bg=0.25, rng=random.Random(7))
    pkt = Packet(flow_id=1, seq=0, size=1400)
    outcomes = [model.drops(pkt) for _ in range(100_000)]
    runs, cur = [], 0
    for hit in outcomes:
        if hit:
            cur += 1
        elif cur:
            runs.append(cur)
            cur = 0
    assert sum(runs) / len(runs) > 2.0  # mean burst length 1/p_bg = 4


def test_gilbert_elliott_validates_probabilities():
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_gb=1.5, p_bg=0.1, rng=random.Random(0))
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_gb=0.0, p_bg=0.0, rng=random.Random(0))


# ----------------------------------------------------------------------
# Schedule construction & config-field contract
# ----------------------------------------------------------------------
def test_phase_validation_rejects_bad_windows_and_directions():
    with pytest.raises(ValueError):
        Blackout(start=-1.0, stop=2.0)
    with pytest.raises(ValueError):
        Blackout(start=2.0, stop=2.0)
    with pytest.raises(ValueError):
        Blackout(start=1.0, stop=2.0, direction="sideways")
    with pytest.raises(ValueError):
        LinkFlap(start=1.0, stop=5.0, down_s=0.0, up_s=1.0)
    with pytest.raises(ValueError):
        BurstyLoss(start=0.0, stop=5.0, p_gb=2.0, p_bg=0.5)
    with pytest.raises(ValueError):
        BandwidthRamp(start=0.0, stop=5.0, to_bps=-1.0)
    with pytest.raises(ValueError):
        DelayRamp(start=0.0, stop=5.0, to_s=0.01, steps=0)
    with pytest.raises(ValueError):
        Jitter(start=0.0, stop=5.0, max_extra_s=0.0)


def test_schedule_requires_phases_and_rejects_non_phases():
    with pytest.raises(ValueError):
        FaultSchedule()
    with pytest.raises(TypeError):
        FaultSchedule("not a phase")


def _flap_schedule() -> FaultSchedule:
    return FaultSchedule(
        LinkFlap(start=5.0, stop=16.0, down_s=0.7, up_s=1.3,
                 direction="both"),
        BurstyLoss(start=3.0, stop=20.0, p_gb=0.01, p_bg=0.25))


def test_schedule_equality_hash_and_repr_round_trip():
    a, b = _flap_schedule(), _flap_schedule()
    assert a == b
    assert hash(a) == hash(b)
    assert a != FaultSchedule(Blackout(start=1.0, stop=2.0))
    # The cache fingerprints configs via repr: it must reproduce the value.
    assert eval(repr(a)) == a  # noqa: S307 - controlled input
    assert repr(a).startswith("FaultSchedule(LinkFlap(")


def test_schedule_is_immutable_and_picklable():
    sched = _flap_schedule()
    with pytest.raises(AttributeError):
        sched.phases = ()
    clone = pickle.loads(pickle.dumps(sched))
    assert clone == sched and hash(clone) == hash(sched)


def test_schedule_horizon_len_iter_describe():
    sched = _flap_schedule()
    assert len(sched) == 2
    assert sched.horizon == 20.0
    assert [type(ph).__name__ for ph in sched] == ["LinkFlap", "BurstyLoss"]
    assert sched.describe() == "2 phase(s): LinkFlap, BurstyLoss"


# ----------------------------------------------------------------------
# Injector: each phase kind does what it declares
# ----------------------------------------------------------------------
def _inject(schedule: FaultSchedule, until: float):
    sim = Simulator()
    net = Dumbbell(sim)
    inj = FaultInjector(sim, net, schedule, random.Random(0))
    inj.install()
    sim.run(until=until)
    return sim, net, inj


def test_blackout_downs_and_restores_links():
    sched = FaultSchedule(Blackout(start=1.0, stop=2.0, direction="both"))
    sim, net, inj = _inject(sched, until=1.5)
    assert not net.forward.up and not net.backward.up
    sim.run(until=3.0)
    assert net.forward.up and net.backward.up
    assert inj.phases_begun == 1 and inj.phases_ended == 1


def test_flap_cycles_and_ends_with_service_restored():
    sched = FaultSchedule(
        LinkFlap(start=1.0, stop=5.0, down_s=0.2, up_s=0.8,
                 direction="fwd"))
    sim, net, inj = _inject(sched, until=10.0)
    assert inj.flap_cycles == 4  # cycles at t=1,2,3,4; window closes at 5
    assert net.forward.up
    assert net.backward.up  # "fwd" never touched the ACK path


def test_bandwidth_ramp_reaches_target_and_holds():
    sched = FaultSchedule(
        BandwidthRamp(start=1.0, stop=3.0, to_bps=10e6, steps=4,
                      direction="fwd"))
    sim, net, inj = _inject(sched, until=2.0)
    assert 10e6 < net.forward.bandwidth_bps < 20e6  # mid-ramp
    sim.run(until=5.0)
    assert net.forward.bandwidth_bps == pytest.approx(10e6)
    assert net.backward.bandwidth_bps == pytest.approx(20e6)


def test_delay_ramp_changes_propagation_delay():
    sched = FaultSchedule(
        DelayRamp(start=1.0, stop=2.0, to_s=0.025, steps=1,
                  direction="both"))
    sim, net, inj = _inject(sched, until=3.0)
    assert net.forward.delay_s == pytest.approx(0.025)
    assert net.backward.delay_s == pytest.approx(0.025)


def test_bursty_loss_installs_and_removes_model():
    sched = FaultSchedule(
        BurstyLoss(start=1.0, stop=2.0, p_gb=0.5, p_bg=0.5))
    sim, net, inj = _inject(sched, until=1.5)
    assert isinstance(net.forward.loss, GilbertElliottLoss)
    sim.run(until=3.0)
    assert not isinstance(net.forward.loss, GilbertElliottLoss)


def test_jitter_installs_and_removes_model():
    sched = FaultSchedule(
        Jitter(start=1.0, stop=2.0, max_extra_s=0.005, direction="bwd"))
    sim, net, inj = _inject(sched, until=1.5)
    assert isinstance(net.backward.jitter, DelayJitter)
    assert net.forward.jitter is None
    sim.run(until=3.0)
    assert net.backward.jitter is None
