"""Tests for :mod:`repro.campaign`: spec validation and expansion, stable
cell identity across processes, work-stealing execution (zero duplicate
executions, dead-worker lease reclaim), interrupt/resume byte-identity,
aggregation determinism, and the ``repro campaign`` CLI.

Scenario sizing: a greedy n_frames=5 cell runs in about a millisecond, so
even the 200+ cell acceptance campaign stays cheap.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.api import Scenario
from repro.campaign import (Campaign, CampaignStore, aggregate, cell_key,
                            load_campaign, run_campaign, run_rows)
from repro.experiments.common import ScenarioConfig
from repro.middleware.adaptation import ADAPTATIONS, resolution_default
from repro.runner.cache import ResultsCache
from repro.runner.failures import FailedResult

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

TINY = dict(workload="greedy", n_frames=5, time_cap=30.0)


def _tiny_campaign(**kw) -> Campaign:
    spec = dict(template=Scenario(**TINY), name="tiny",
                axes={"transport": ["tcp", "iq"]}, seeds=2)
    spec.update(kw)
    return Campaign(spec.pop("template"), **spec)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_unknown_axis_field_fails_with_did_you_mean():
    with pytest.raises(ValueError, match="did you mean 'transport'"):
        Campaign(Scenario(**TINY), axes={"transprot": ["tcp"]})


def test_unknown_top_level_spec_key_fails_with_hint():
    with pytest.raises(ValueError, match="did you mean 'axes'"):
        Campaign.from_mapping({"template": dict(TINY),
                               "axis": {"transport": ["tcp"]}})


def test_zip_length_mismatch_fails():
    with pytest.raises(ValueError, match="equal lengths"):
        Campaign(Scenario(**TINY),
                 zip_axes={"rtt_s": [0.03, 0.1], "queue_pkts": [64]})


def test_axis_and_zip_overlap_fails():
    with pytest.raises(ValueError, match="both 'axes' and 'zip'"):
        Campaign(Scenario(**TINY), axes={"rtt_s": [0.03]},
                 zip_axes={"rtt_s": [0.1]})


def test_seed_cannot_be_an_axis():
    with pytest.raises(ValueError, match="'seeds' section"):
        Campaign(Scenario(**TINY), axes={"seed": [1, 2]})


def test_case_with_seed_or_empty_rejected():
    with pytest.raises(ValueError, match="seeds come from"):
        Campaign(Scenario(**TINY), cases=[{"seed": 3}])
    with pytest.raises(ValueError, match="non-empty mapping"):
        Campaign(Scenario(**TINY), cases=[{}])


def test_duplicate_cells_rejected():
    with pytest.raises(ValueError, match="duplicate campaign cell"):
        Campaign(Scenario(**TINY), axes={"transport": ["tcp"]},
                 cases=[{"transport": "tcp"}]).cells()


def test_seeds_forms():
    base_seed = Scenario(**TINY).seed
    assert Campaign(Scenario(**TINY), seeds=3).seeds == (
        base_seed, base_seed + 1, base_seed + 2)
    assert Campaign(Scenario(**TINY), seeds=[5, 9]).seeds == (5, 9)
    with pytest.raises(ValueError, match=">= 1"):
        Campaign(Scenario(**TINY), seeds=0)
    with pytest.raises(ValueError, match="duplicate seeds"):
        Campaign(Scenario(**TINY), seeds=[1, 1])


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
def test_grid_zip_cases_seed_counts():
    camp = Campaign(
        Scenario(**TINY),
        axes={"transport": ["tcp", "iq"], "cbr_bps": [0.0, 4e6, 8e6]},
        zip_axes={"rtt_s": [0.03, 0.1], "queue_pkts": [64, 256]},
        cases=[{"transport": "rudp"}, {"transport": "iq_nocond"}],
        seeds=3)
    # grid 2*3 x zip 2 x seeds 3 = 36, plus cases 2 x seeds 3 = 6.
    assert len(camp) == 42
    # zip axes advance together: rtt 0.03 always pairs with queue 64.
    for cell in camp.cells():
        if "rtt_s" in cell.assignment:
            pair = (cell.assignment["rtt_s"], cell.assignment["queue_pkts"])
            assert pair in ((0.03, 64), (0.1, 256))


def test_expansion_order_is_deterministic_and_labels_stable():
    a = _tiny_campaign().cells()
    b = _tiny_campaign().cells()
    assert [c.key for c in a] == [c.key for c in b]
    assert [c.label for c in a] == [c.label for c in b]
    assert a[0].label == "transport='tcp',seed=1"


def test_spec_mapping_coercion_and_adaptation_registry():
    camp = Campaign.from_mapping({
        "name": "coerce",
        "template": {**TINY, "cbr_bps": "8e6", "adaptation": "resolution"},
        "axes": {"transport": ["tcp", "iq"]},
        "seeds": {"count": 2},
    })
    assert camp.template.cbr_bps == 8e6
    assert camp.template.adaptation is ADAPTATIONS["resolution"]
    assert len(camp) == 4
    with pytest.raises(ValueError, match="unknown adaptation"):
        Campaign.from_mapping({"template": {"adaptation": "resolutoin"}})


def test_lambda_adaptation_rejected_for_cell_identity():
    cfg = ScenarioConfig(**TINY).replace(adaptation=lambda: None)
    with pytest.raises(ValueError, match="stably hashable"):
        cell_key(cfg)
    with pytest.raises(ValueError, match="stably hashable"):
        Campaign(Scenario(**TINY).replace(adaptation=lambda: None),
                 axes={"transport": ["tcp"]}).cells()


def test_load_campaign_toml_and_json(tmp_path):
    spec = tmp_path / "spec.toml"
    spec.write_text(textwrap.dedent("""\
        name = "t"
        [template]
        workload = "greedy"
        n_frames = 5
        time_cap = 30.0
        [axes]
        transport = ["tcp", "iq"]
        [seeds]
        count = 2
    """))
    camp = load_campaign(str(spec))
    assert camp.name == "t" and len(camp) == 4
    jspec = tmp_path / "spec.json"
    jspec.write_text(json.dumps({"name": "t", "template": dict(TINY),
                                 "axes": {"transport": ["tcp", "iq"]},
                                 "seeds": 2}))
    assert [c.key for c in load_campaign(str(jspec)).cells()] == \
        [c.key for c in camp.cells()]
    with pytest.raises(ValueError, match="unrecognised campaign spec"):
        load_campaign(str(tmp_path / "spec.txt"))


# ----------------------------------------------------------------------
# Stable cell identity
# ----------------------------------------------------------------------
def test_cell_keys_agree_across_processes():
    """Two independent interpreters expanding the same spec agree
    byte-for-byte on every cell key (hash randomisation notwithstanding)."""
    prog = textwrap.dedent("""\
        from repro.api import Scenario
        from repro.campaign import Campaign
        from repro.middleware.adaptation import ADAPTATIONS
        camp = Campaign(Scenario(workload="greedy", n_frames=5,
                                 time_cap=30.0,
                                 adaptation=ADAPTATIONS["resolution"]),
                        axes={"transport": ["tcp", "iq"]}, seeds=2)
        print(",".join(c.key for c in camp.cells()))
    """)
    outs = []
    for hashseed in ("1", "2"):
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hashseed)
        outs.append(subprocess.run(
            [sys.executable, "-c", prog], env=env, capture_output=True,
            text=True, check=True).stdout.strip())
    assert outs[0] == outs[1]
    assert len(outs[0].split(",")) == 4


def test_scenario_repr_renders_callables_deterministically():
    sc = Scenario(**TINY).replace(adaptation=resolution_default)
    text = repr(sc)
    assert "repro.middleware.adaptation.resolution_default" in text
    assert "0x" not in text


# ----------------------------------------------------------------------
# Execution: in-memory and store-backed
# ----------------------------------------------------------------------
def test_run_campaign_in_memory():
    run = run_campaign(_tiny_campaign(), cache=False)
    assert run.complete and len(run.results) == 4
    report = run.report()
    assert report.done == 4 and report.failed == 0
    assert "transport" in report.axes


def test_two_workers_split_campaign_no_duplicate_executions(tmp_path):
    camp = _tiny_campaign(seeds=3)
    run = run_campaign(camp, dir=tmp_path / "camp", workers=2, cache=False)
    assert run.complete
    counts = CampaignStore(tmp_path / "camp").journal_counts()
    # The per-worker journals are the execution witness: summed, every
    # cell ran exactly once across the fleet.  (How the cells split
    # between the two workers is timing-dependent and not asserted.)
    assert sum(counts.values()) == len(camp)


def test_rerun_serves_from_store_without_reexecuting(tmp_path):
    camp = _tiny_campaign()
    r1 = run_campaign(camp, dir=tmp_path / "camp", workers=1, cache=False)
    counts1 = CampaignStore(tmp_path / "camp").journal_counts()
    r2 = run_campaign(camp, dir=tmp_path / "camp", workers=1, cache=False)
    counts2 = CampaignStore(tmp_path / "camp").journal_counts()
    assert sum(counts1.values()) == sum(counts2.values()) == len(camp)
    assert r1.report().to_json() == r2.report().to_json()


def test_campaign_dir_rejects_different_campaign(tmp_path):
    run_campaign(_tiny_campaign(), dir=tmp_path / "camp", cache=False)
    with pytest.raises(ValueError, match="different cell set"):
        run_campaign(_tiny_campaign(seeds=3), dir=tmp_path / "camp",
                     cache=False)


def test_failures_captured_and_aggregated(tmp_path):
    # queue_pkts=0 raises at run time -> deterministic "error" cells.
    camp = Campaign(Scenario(**TINY), name="mixed",
                    axes={"queue_pkts": [64, 0]}, seeds=2)
    run = run_campaign(camp, dir=tmp_path / "camp", cache=False)
    assert run.complete
    report = run.report()
    assert report.failed == 2
    assert report.failures.get("error") == 2
    assert report.as_dict()["cells"]["ok"] == 2
    prom = report.render_prometheus()
    assert 'repro_campaign_failures{kind="error"} 2' in prom


def test_interrupt_then_resume_is_byte_identical(tmp_path):
    """Partial run (half the store prefilled is equivalent to a worker
    having died mid-campaign), then resume; the final report must be
    byte-identical to an uninterrupted run elsewhere."""
    camp = _tiny_campaign(seeds=3)
    cells = camp.cells()

    # Partial: execute only the first half by hand.
    store = CampaignStore(tmp_path / "partial")
    store.init(camp)
    from repro.runner.pool import run_one
    for cell in cells[:len(cells) // 2]:
        store.store_cell(cell.key, run_one(cell.config, cache=False))
    partial = aggregate(camp, {c.key: store.load_cell(c.key)
                               for c in cells if store.load_cell(c.key)})
    assert not partial.complete

    resumed = run_campaign(camp, dir=tmp_path / "partial", cache=False)
    fresh = run_campaign(camp, dir=tmp_path / "fresh", cache=False)
    assert resumed.report().to_json() == fresh.report().to_json()


def test_sigint_mid_campaign_then_resume(tmp_path):
    """Real SIGINT against a running campaign process; the resume completes
    and reports byte-identically to an undisturbed campaign."""
    camp_dir = tmp_path / "camp"
    prog = textwrap.dedent(f"""\
        import sys
        from repro.api import Scenario
        from repro.campaign import run_campaign, Campaign
        camp = Campaign(Scenario(workload="greedy", n_frames=400,
                                 time_cap=30.0),
                        name="sig", axes={{"transport": ["tcp", "iq"]}},
                        seeds=6)
        run_campaign(camp, dir={str(camp_dir)!r}, workers=1, cache=False)
        print("DONE")
    """)
    env = dict(os.environ, PYTHONPATH=SRC, REPRO_PROGRESS="0")
    proc = subprocess.Popen([sys.executable, "-c", prog], env=env,
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    # Wait until at least one cell result landed, then interrupt.
    store = CampaignStore(camp_dir)
    deadline = time.time() + 60
    while time.time() < deadline and len(store.done_keys()) < 1:
        time.sleep(0.02)
        if proc.poll() is not None:
            break
    assert len(store.done_keys()) >= 1, proc.communicate()
    proc.send_signal(signal.SIGINT)
    proc.wait(timeout=60)
    assert proc.returncode != 0  # interrupted, not finished

    camp = Campaign(Scenario(workload="greedy", n_frames=400,
                             time_cap=30.0),
                    name="sig", axes={"transport": ["tcp", "iq"]}, seeds=6)
    assert len(store.done_keys()) < len(camp)  # genuinely partial
    resumed = run_campaign(camp, dir=camp_dir, cache=False)
    fresh = run_campaign(camp, dir=tmp_path / "fresh", cache=False)
    assert resumed.complete
    assert resumed.report().to_json() == fresh.report().to_json()


def test_torn_cell_file_is_healed_on_rerun(tmp_path):
    """A cell result file that exists but does not unpickle (torn write)
    must be re-executed, not skipped-on-existence forever."""
    camp = _tiny_campaign()
    cells = camp.cells()
    r1 = run_campaign(camp, dir=tmp_path / "camp", cache=False)
    victim = CampaignStore(tmp_path / "camp").cell_path(cells[0].key)
    victim.write_bytes(victim.read_bytes()[:10])
    r2 = run_campaign(camp, dir=tmp_path / "camp", cache=False)
    assert r2.complete
    assert r1.report().to_json() == r2.report().to_json()


def test_dead_worker_lease_is_reclaimed(tmp_path):
    camp = _tiny_campaign()
    cells = camp.cells()
    store = CampaignStore(tmp_path / "camp", worker="survivor",
                          lease_s=0.2)
    store.init(camp)
    # A "dead" worker claimed the first cell and never released it.
    dead = CampaignStore(tmp_path / "camp", worker="dead", lease_s=0.2)
    assert dead.try_claim(cells[0].key)
    # While the lease lives, the survivor cannot take the cell...
    assert not store.try_claim(cells[0].key)
    time.sleep(0.25)
    # ...after expiry it steals and the campaign completes.
    run = run_campaign(camp, dir=tmp_path / "camp", cache=False,
                       lease_s=0.2)
    assert run.complete
    claim = store.read_claim(cells[0].key)
    assert claim is None  # released after the steal finished the cell


def test_live_lease_blocks_and_leaves_campaign_incomplete(tmp_path):
    camp = _tiny_campaign()
    cells = camp.cells()
    holder = CampaignStore(tmp_path / "camp", worker="holder",
                           lease_s=3600.0)
    holder.init(camp)
    assert holder.try_claim(cells[0].key)
    run = run_campaign(camp, dir=tmp_path / "camp", cache=False)
    assert not run.complete
    assert [c.key for c in run.incomplete] == [cells[0].key]


# ----------------------------------------------------------------------
# run_rows bridge (tables/dynamics routing)
# ----------------------------------------------------------------------
def test_run_rows_without_dir_matches_run_batch():
    from repro.runner import run_batch
    rows = {"tcp": ScenarioConfig(**TINY).replace(transport="tcp"),
            "iq": ScenarioConfig(**TINY).replace(transport="iq")}
    a = run_rows(rows, name="t", cache=False)
    b = run_batch(rows, cache=False)
    assert list(a) == list(b) == ["tcp", "iq"]
    assert a["tcp"].summary == b["tcp"].summary


def test_run_rows_with_dir_keys_results_like_legacy(tmp_path):
    rows = {"tcp": ScenarioConfig(**TINY).replace(transport="tcp"),
            ("iq", 2): ScenarioConfig(**TINY).replace(transport="iq")}
    got = run_rows(rows, name="t", dir=tmp_path / "camp", cache=False)
    assert list(got) == ["tcp", ("iq", 2)]
    counts = CampaignStore(tmp_path / "camp").journal_counts()
    assert sum(counts.values()) == 2
    # Second pass re-executes nothing and returns identical summaries.
    again = run_rows(rows, name="t", dir=tmp_path / "camp", cache=False)
    counts2 = CampaignStore(tmp_path / "camp").journal_counts()
    assert sum(counts2.values()) == 2
    assert again["tcp"].summary == got["tcp"].summary


def test_run_rows_rejects_trace_with_dir(tmp_path):
    rows = {"tcp": ScenarioConfig(**TINY)}
    with pytest.raises(ValueError, match="trace"):
        run_rows(rows, name="t", dir=tmp_path / "camp", trace="t.jsonl")


def test_table_bench_accepts_campaign_dir(tmp_path):
    from repro.experiments import baseline
    res = baseline.run_table2(n_frames=5, cache=False,
                              campaign_dir=str(tmp_path / "camp"))
    assert list(res) == ["TCP", "IQ-RUDP"]
    assert (tmp_path / "camp" / "manifest.json").exists()


# ----------------------------------------------------------------------
# Aggregation determinism
# ----------------------------------------------------------------------
def test_report_json_has_no_wallclock(tmp_path):
    run = run_campaign(_tiny_campaign(), dir=tmp_path / "c", cache=False)
    payload = run.report().to_json()
    # Nothing epoch-like anywhere: resume byte-identity depends on it.
    assert "claimed_at" not in payload and "expires_at" not in payload
    decoded = json.loads(payload)
    assert decoded["cells"]["total"] == 4


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _write_spec(tmp_path):
    spec = tmp_path / "spec.toml"
    spec.write_text(textwrap.dedent("""\
        name = "cli"
        [template]
        workload = "greedy"
        n_frames = 5
        time_cap = 30.0
        [axes]
        transport = ["tcp", "iq"]
        [seeds]
        count = 2
    """))
    return spec


def test_campaign_cli_run_status_report(tmp_path, capsys, monkeypatch):
    from repro.cli import main
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    spec = _write_spec(tmp_path)
    camp_dir = str(tmp_path / "camp")
    assert main(["campaign", "run", str(spec), "--dir", camp_dir]) == 0
    out = capsys.readouterr().out
    assert "4/4 cells done" in out

    assert main(["campaign", "status", camp_dir]) == 0
    assert "4/4 done" in capsys.readouterr().out

    assert main(["campaign", "resume", camp_dir]) == 0
    capsys.readouterr()

    assert main(["campaign", "report", camp_dir, "--json"]) == 0
    decoded = json.loads(capsys.readouterr().out)
    assert decoded["cells"] == {"total": 4, "done": 4, "ok": 4,
                                "failed": 0, "pending": 0}

    assert main(["campaign", "report", camp_dir, "--prom"]) == 0
    assert 'repro_campaign_cells{state="done"} 4' in capsys.readouterr().out


def test_campaign_cli_set_overrides_template(tmp_path, capsys, monkeypatch):
    from repro.cli import main
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    spec = _write_spec(tmp_path)
    assert main(["campaign", "run", str(spec), "--set", "n_frames=3"]) == 0
    assert "4/4 cells done" in capsys.readouterr().out


def test_campaign_cli_errors_are_exit_2(tmp_path, capsys):
    from repro.cli import main
    assert main(["campaign", "status", str(tmp_path / "nope")]) == 2
    assert "no campaign manifest" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Acceptance: >= 200 cells, 2 workers, no duplicates, cache-served re-run
# ----------------------------------------------------------------------
def test_acceptance_200_cell_campaign_two_workers(tmp_path):
    camp = Campaign(
        Scenario(workload="greedy", n_frames=2, time_cap=30.0),
        name="acceptance",
        axes={"bottleneck_bps": [4e6 + i * 1e6 for i in range(9)],
              "rtt_s": [0.01 + 0.01 * i for i in range(8)]},
        seeds=3)
    assert len(camp) == 216
    cache = ResultsCache(tmp_path / "cache")
    run = run_campaign(camp, dir=tmp_path / "camp", workers=2, cache=cache)
    assert run.complete
    counts = CampaignStore(tmp_path / "camp").journal_counts()
    assert sum(counts.values()) == 216  # no cell executed twice
    # Immediate re-run in a fresh directory: served from the results cache
    # (single in-process worker so the hit counter is observable here).
    cache2 = ResultsCache(tmp_path / "cache")
    rerun = run_campaign(camp, dir=tmp_path / "camp2", workers=1,
                         cache=cache2)
    assert rerun.complete
    assert cache2.hits >= 216
    assert run.report().to_json() == rerun.report().to_json()
