"""Unit tests for hosts, routers and the dumbbell topology."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.node import Host, Router
from repro.sim.packet import Packet
from repro.sim.topology import Dumbbell


class Recorder:
    def __init__(self):
        self.got = []

    def receive(self, pkt):
        self.got.append(pkt)


def test_host_port_demux():
    sim = Simulator()
    h = Host(sim, address=1)
    a, b = Recorder(), Recorder()
    h.bind(10, a)
    h.bind(11, b)
    h.receive(Packet(flow_id=1, dport=10))
    h.receive(Packet(flow_id=1, dport=11))
    h.receive(Packet(flow_id=1, dport=99))  # unbound: silently sunk
    assert len(a.got) == 1 and len(b.got) == 1
    assert h.packets_received == 3


def test_host_double_bind_rejected():
    sim = Simulator()
    h = Host(sim, address=1)
    h.bind(10, Recorder())
    with pytest.raises(ValueError):
        h.bind(10, Recorder())


def test_host_unbind():
    sim = Simulator()
    h = Host(sim, address=1)
    r = Recorder()
    h.bind(10, r)
    h.unbind(10)
    h.receive(Packet(flow_id=1, dport=10))
    assert r.got == []


def test_host_send_without_uplink_counts_drop():
    sim = Simulator()
    h = Host(sim, address=1)
    assert not h.send(Packet(flow_id=1))
    assert h.no_route_drops == 1


def test_router_forwards_by_destination():
    sim = Simulator()
    r = Router(sim, address=9)
    sink = Recorder()

    class FakeLink:
        def send(self, pkt):
            sink.got.append(pkt)
            return True

    r.add_route(5, FakeLink())
    r.receive(Packet(flow_id=1, dst=5))
    r.receive(Packet(flow_id=1, dst=6))  # no route
    assert len(sink.got) == 1
    assert r.forwarded == 1 and r.no_route_drops == 1


def test_router_default_route():
    sim = Simulator()
    r = Router(sim, address=9)
    sink = Recorder()

    class FakeLink:
        def send(self, pkt):
            sink.got.append(pkt)
            return True

    r.set_default_route(FakeLink())
    r.receive(Packet(flow_id=1, dst=123))
    assert len(sink.got) == 1


class TestDumbbell:
    def test_paper_defaults(self):
        sim = Simulator()
        net = Dumbbell(sim)
        assert net.bottleneck_bps == 20e6
        assert net.rtt_s == pytest.approx(0.030)
        assert net.mss == 1400

    def test_round_trip_delivery(self):
        """A packet crosses sender -> bottleneck -> receiver, and a reply
        returns, in approximately one configured RTT."""
        sim = Simulator()
        net = Dumbbell(sim, rtt_s=0.030)
        snd, rcv = net.add_flow_hosts("t")
        fwd, bwd = Recorder(), Recorder()
        rcv.bind(7, fwd)
        snd.bind(7, bwd)

        def reply(pkt):
            rcv.send(Packet(flow_id=1, dst=snd.address, dport=7, size=0))

        fwd.receive = reply  # type: ignore[method-assign]
        t0 = sim.now
        snd.send(Packet(flow_id=1, dst=rcv.address, dport=7, size=0))
        sim.run()
        assert len(bwd.got) == 1
        # 30 ms propagation plus a little serialization.
        assert 0.029 < sim.now - t0 < 0.035

    def test_flow_pairs_are_isolated(self):
        sim = Simulator()
        net = Dumbbell(sim)
        s1, r1 = net.add_flow_hosts("a")
        s2, r2 = net.add_flow_hosts("b")
        rec1, rec2 = Recorder(), Recorder()
        r1.bind(7, rec1)
        r2.bind(7, rec2)
        s1.send(Packet(flow_id=1, dst=r1.address, dport=7, size=10))
        s2.send(Packet(flow_id=2, dst=r2.address, dport=7, size=10))
        sim.run()
        assert len(rec1.got) == 1 and len(rec2.got) == 1
        assert rec1.got[0].flow_id == 1 and rec2.got[0].flow_id == 2

    def test_utilization(self):
        sim = Simulator()
        net = Dumbbell(sim, bottleneck_bps=1e6)
        snd, rcv = net.add_flow_hosts("u")
        rcv.bind(7, Recorder())
        for _ in range(10):
            snd.send(Packet(flow_id=1, dst=rcv.address, dport=7, size=1400))
        sim.run()
        # 10 x 1440B on a 1 Mbps link = 115.2 ms busy.
        assert net.utilization(0.1152) == pytest.approx(1.0, rel=0.01)

    def test_bottleneck_queue_is_shared(self):
        sim = Simulator()
        net = Dumbbell(sim, queue_pkts=4)
        s1, r1 = net.add_flow_hosts("a")
        rec = Recorder()
        r1.bind(7, rec)
        for _ in range(20):
            s1.send(Packet(flow_id=1, dst=r1.address, dport=7, size=1400))
        sim.run()
        assert net.bottleneck_queue.stats.drops > 0
        assert len(rec.got) < 20
