"""Tests for causal frame-lineage spans (ISSUE 7 tentpole part 1).

The contract: ``ScenarioConfig(spans=True)`` yields a lineage artifact
that is a pure function of the config -- byte-identical across worker
counts, cache hit/miss and the burst speed tier -- whose frame accounting
reconciles exactly with the delivery log, and whose decision chain pairs
every attribute exchange with the coordination action(s) it caused.
Arming it must not perturb the summary by a single bit.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.lineage import (decision_chain, frame_accounting,
                                    render_frame_lineage, render_lineage)
from repro.experiments.common import ScenarioConfig, run_scenario
from repro.obs.spans import FRAME_OUTCOMES
from repro.runner import ResultsCache, run_batch

TRANSPORTS = ("tcp", "rudp", "rudp_nocc", "rudp_reno",
              "iq", "iq_nocond", "iq_nodiscard", "iq_noreinflate")


def _cfg(transport="iq", **kw) -> ScenarioConfig:
    base = dict(transport=transport, workload="fixed_clocked", n_frames=30,
                time_cap=15.0, spans=True)
    base.update(kw)
    return ScenarioConfig(**base)


def _lineage_bytes(res) -> tuple[bytes, bytes]:
    return pickle.dumps(res.spans), pickle.dumps(res.flight)


# ----------------------------------------------------------------------
# Shape and reconciliation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_frame_accounting_reconciles_with_delivery_log(transport):
    res = run_scenario(_cfg(transport))
    spans = res.spans
    assert spans is not None
    # The reconciliation anchor: frames with >= 1 delivered segment in the
    # lineage must equal the delivery log's frame count exactly
    # (summary["frames_completed"] is DeliveryLog.frames_delivered()).
    assert spans["frames_with_delivery"] == int(
        res.summary["frames_completed"])
    acct = frame_accounting(spans)
    assert acct["frames"] == len(spans["frames"])
    assert set(acct["outcomes"]) <= set(FRAME_OUTCOMES)
    assert sum(acct["outcomes"].values()) == acct["frames"]


def test_spans_disabled_by_default():
    res = run_scenario(ScenarioConfig(transport="iq",
                                      workload="fixed_clocked",
                                      n_frames=30, time_cap=15.0))
    assert res.spans is None


def test_arming_spans_does_not_perturb_summary():
    plain = run_scenario(_cfg(spans=False)).summary
    armed = run_scenario(_cfg(spans=True)).summary
    assert pickle.dumps(plain) == pickle.dumps(armed)


# ----------------------------------------------------------------------
# Purity: jobs / cache / burst
# ----------------------------------------------------------------------
def test_lineage_byte_identical_across_worker_counts():
    cfgs = [_cfg(t, seed=2) for t in TRANSPORTS]
    serial = run_batch(cfgs, jobs=1, cache=False)
    par = run_batch(cfgs, jobs=4, cache=False, timeout=120.0)
    for s, p in zip(serial, par):
        assert _lineage_bytes(s) == _lineage_bytes(p)


def test_lineage_byte_identical_across_cache_hit(tmp_path):
    store = ResultsCache(tmp_path)
    cfgs = [_cfg("iq", seed=3), _cfg("rudp", seed=3)]
    miss = run_batch(cfgs, jobs=1, cache=store)
    assert list(tmp_path.glob("*.pkl"))  # really persisted
    hit = run_batch(cfgs, jobs=1, cache=store)
    for m, h in zip(miss, hit):
        assert _lineage_bytes(m) == _lineage_bytes(h)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_lineage_byte_identical_across_burst_tier(transport):
    plain = run_scenario(_cfg(transport, seed=4, burst=False))
    burst = run_scenario(_cfg(transport, seed=4, burst=True))
    assert pickle.dumps(plain.summary) == pickle.dumps(burst.summary)
    assert _lineage_bytes(plain) == _lineage_bytes(burst)


# ----------------------------------------------------------------------
# Decision chain (the Table 3 causality, per run)
# ----------------------------------------------------------------------
def _marking_adaptation():
    from repro.middleware.adaptation import MarkingAdaptation
    return MarkingAdaptation(upper=0.05, lower=0.01, backoff=0.10)


def _conflict_cfg(**kw) -> ScenarioConfig:
    base = dict(transport="iq", workload="trace_clocked", frame_rate=25,
                frame_multiplier=3000, n_frames=120,
                adaptation=_marking_adaptation, loss_tolerance=0.40,
                cbr_bps=18.5e6, metric_period=0.25, time_cap=60.0,
                spans=True)
    base.update(kw)
    return ScenarioConfig(**base)


def test_decision_chain_pairs_episodes_with_actions():
    spans = run_scenario(_conflict_cfg()).spans
    assert spans["episodes"], "conflict case must produce attr exchanges"
    chain = decision_chain(spans)
    assert len(chain["chain"]) == len(spans["episodes"])
    # Every recorded action either cites a real episode or is
    # transport-initiated (stall degrade/recover).
    episode_ids = {ep["id"] for ep in spans["episodes"]}
    for act in spans["actions"]:
        ep = act.get("episode")
        assert ep is None or ep in episode_ids
    # The conflict case's point: discards actually happen and are chained
    # to the marking adaptation's attribute exchanges.
    chained = [a for link in chain["chain"] for a in link["actions"]]
    assert any(a["action"] == "discard" for a in chained)


def test_latency_decomposition_sums_to_total():
    spans = run_scenario(_cfg("rudp")).spans
    decomposed = 0
    for fr in spans["frames"]:
        lat = fr["latency"]
        if lat is None:
            continue
        decomposed += 1
        total = (lat["serialization_s"] + lat["queueing_s"]
                 + lat["propagation_s"] + lat["retx_wait_s"])
        assert total == pytest.approx(lat["total_s"], rel=1e-9)
        assert all(v >= 0.0 for v in lat.values())
    assert decomposed > 0


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def test_render_lineage_and_frame_lineage():
    res = run_scenario(_cfg("iq"))
    text = render_lineage(res.spans, limit=5)
    assert "Causal lineage: iq/fixed_clocked/seed=1" in text
    assert "frames: 30 submitted" in text
    assert "Decision chain" in text
    one = render_frame_lineage(res.spans, 0)
    assert one.startswith("Frame 0 [")
    assert "seg 0" in one
    with pytest.raises(ValueError, match="frame 999 not in lineage"):
        render_frame_lineage(res.spans, 999)


class TestLineageCli:
    def test_lineage_command_runs_and_saves(self, tmp_path, capsys):
        from repro.cli import main
        saved = tmp_path / "lineage.pkl"
        assert main(["lineage", "--transport", "iq", "--workload",
                     "fixed_clocked", "--frames", "30", "--time-cap", "15",
                     "--save", str(saved)]) == 0
        out = capsys.readouterr().out
        assert "Causal lineage: iq/fixed_clocked/seed=1" in out
        # --load round-trips the saved artifact without re-running.
        assert main(["lineage", "--load", str(saved), "--frame", "0"]) == 0
        assert capsys.readouterr().out.startswith("Frame 0 [")

    def test_lineage_load_without_spans_is_user_error(self, tmp_path,
                                                      capsys):
        from repro.cli import main
        res = run_scenario(ScenarioConfig(transport="iq",
                                          workload="fixed_clocked",
                                          n_frames=30,
                                          time_cap=15.0)).detach()
        path = tmp_path / "nospans.pkl"
        with open(path, "wb") as fh:
            pickle.dump(res, fh)
        assert main(["lineage", "--load", str(path)]) == 2
        assert "no lineage spans" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Fuzz forensics records
# ----------------------------------------------------------------------
def test_fuzz_compare_emits_forensics_record_on_mismatch():
    from repro.fuzz import FuzzReport, _compare
    from repro.obs.flight import FlightRecorder

    class _Res:
        telemetry = None

        def __init__(self, dur, flight):
            self.summary = {"duration_s": dur}
            self.flight = flight

    def _flight(n):
        fl = FlightRecorder(capacity=8)
        for i in range(n):
            fl.note("run", "E", i=i)
        return fl.dump()

    report = FuzzReport(budget=1, seed=1)
    cfg = _cfg("iq")
    _compare(report, "unit", 0, cfg, _Res(1.0, _flight(3)),
             _Res(2.0, _flight(5)))
    assert report.mismatches
    [rec] = report.forensics
    assert rec["label"] == "unit"
    assert rec["first_divergence"] == 3  # shorter run's first missing id
    assert rec["ref_flight"]["events_noted"] == 3
    assert rec["other_flight"]["events_noted"] == 5


def test_fuzz_compare_identical_runs_emit_no_forensics():
    from repro.fuzz import FuzzReport, _compare

    class _Res:
        telemetry = None
        flight = None
        summary = {"duration_s": 1.0}

    report = FuzzReport(budget=1, seed=1)
    _compare(report, "unit", 0, _cfg("iq"), _Res(), _Res())
    assert not report.mismatches and not report.forensics
