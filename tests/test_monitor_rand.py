"""Tests for the monitoring probes and seeded RNG streams."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.monitor import CountedSeries, PeriodicSampler, Probe
from repro.sim.rand import RandomStreams


class TestProbe:
    def test_record_and_arrays(self):
        p = Probe("x")
        p.record(1.0, 10.0)
        p.record(2.0, 20.0)
        t, v = p.as_arrays()
        assert np.array_equal(t, [1.0, 2.0])
        assert np.array_equal(v, [10.0, 20.0])
        assert len(p) == 2


class TestPeriodicSampler:
    def test_samples_at_period(self):
        sim = Simulator()
        clock = PeriodicSampler(sim, 0.5, lambda: sim.now, "t")
        clock.start()
        sim.run(until=2.1)
        t, v = clock.probe.as_arrays()
        assert np.allclose(t, [0.0, 0.5, 1.0, 1.5, 2.0])
        assert np.allclose(v, t)

    def test_stop_halts_sampling(self):
        sim = Simulator()
        s = PeriodicSampler(sim, 0.5, lambda: 1.0)
        s.start()
        sim.run(until=1.1)
        s.stop()
        sim.run(until=3.0)
        assert len(s.probe) <= 4

    def test_start_is_idempotent(self):
        sim = Simulator()
        s = PeriodicSampler(sim, 1.0, lambda: 1.0)
        s.start()
        s.start()
        sim.run(until=0.5)
        assert len(s.probe) == 1

    def test_period_validation(self):
        with pytest.raises(ValueError):
            PeriodicSampler(Simulator(), 0.0, lambda: 1.0)


class TestCountedSeries:
    def test_summary(self):
        cs = CountedSeries("jit")
        for i, v in enumerate((1.0, 2.0, 3.0)):
            cs.record(i, v)
        s = cs.summary()
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["max"] == 3.0

    def test_empty_summary(self):
        assert CountedSeries().summary()["count"] == 0

    def test_as_arrays(self):
        cs = CountedSeries()
        cs.record(5, 1.5)
        i, v = cs.as_arrays()
        assert i.dtype == np.int64 and v.dtype == np.float64


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        rs = RandomStreams(1)
        assert rs.get("a") is rs.get("a")

    def test_deterministic_across_instances(self):
        a = RandomStreams(7).get("marking").random()
        b = RandomStreams(7).get("marking").random()
        assert a == b

    def test_streams_independent_of_request_order(self):
        rs1 = RandomStreams(7)
        rs1.get("x")
        v1 = rs1.get("y").random()
        rs2 = RandomStreams(7)
        v2 = rs2.get("y").random()  # requested first this time
        assert v1 == v2

    def test_different_names_differ(self):
        rs = RandomStreams(7)
        assert rs.get("a").random() != rs.get("b").random()

    def test_different_seeds_differ(self):
        assert (RandomStreams(1).get("a").random()
                != RandomStreams(2).get("a").random())

    def test_numpy_generator(self):
        g1 = RandomStreams(3).numpy("trace")
        g2 = RandomStreams(3).numpy("trace")
        assert np.array_equal(g1.random(5), g2.random(5))
