"""Unit tests for drop-tail and RED queues."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, REDQueue


def mkpkt(size=1400, flow=1):
    return Packet(flow_id=flow, size=size)


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        DropTailQueue(0)


def test_fifo_order():
    q = DropTailQueue(10_000_000)
    pkts = [mkpkt(100) for _ in range(5)]
    for p in pkts:
        assert q.push(p)
    assert [q.pop() for _ in range(5)] == pkts


def test_byte_accounting_includes_headers():
    q = DropTailQueue(10_000_000)
    q.push(mkpkt(1400))
    assert q.bytes == 1440  # payload + 40B header
    q.pop()
    assert q.bytes == 0


def test_tail_drop_when_full():
    q = DropTailQueue(capacity_bytes=2 * 1440)
    assert q.push(mkpkt())
    assert q.push(mkpkt())
    assert not q.push(mkpkt())
    assert q.stats.drops == 1
    assert q.stats.arrivals == 3
    assert len(q) == 2


def test_drop_callback_observes_dropped_packet():
    dropped = []
    q = DropTailQueue(capacity_bytes=1440, on_drop=dropped.append)
    q.push(mkpkt())
    victim = mkpkt()
    q.push(victim)
    assert dropped == [victim]


def test_small_packet_fits_after_large_drop():
    """Byte budget, not packet slots: a small packet can still fit."""
    q = DropTailQueue(capacity_bytes=1500)
    assert q.push(mkpkt(1400))   # 1440 bytes
    assert not q.push(mkpkt(1400))
    assert q.push(mkpkt(10))     # 50 bytes fits in the remaining 60


def test_drop_ratio():
    q = DropTailQueue(capacity_bytes=1440)
    q.push(mkpkt())
    q.push(mkpkt())
    q.push(mkpkt())
    assert q.stats.drop_ratio == pytest.approx(2 / 3)


def test_peak_tracking():
    q = DropTailQueue(capacity_bytes=10 * 1440)
    for _ in range(4):
        q.push(mkpkt())
    q.pop()
    assert q.stats.peak_packets == 4
    assert q.stats.peak_bytes == 4 * 1440


def test_clear_resets_contents_but_not_stats():
    q = DropTailQueue(capacity_bytes=10 * 1440)
    q.push(mkpkt())
    q.clear()
    assert q.empty and q.bytes == 0
    assert q.stats.arrivals == 1


@given(st.lists(st.integers(min_value=1, max_value=3000), max_size=200))
@settings(max_examples=50, deadline=None)
def test_bytes_never_exceed_capacity(sizes):
    """Invariant: queued bytes stay within the configured budget."""
    q = DropTailQueue(capacity_bytes=8 * 1440)
    for s in sizes:
        q.push(mkpkt(s))
        assert q.bytes <= 8 * 1440
    # Conservation: arrivals = drops + still-queued + departures(0)
    assert q.stats.arrivals == q.stats.drops + len(q)


@given(st.lists(st.integers(min_value=1, max_value=3000), min_size=1,
                max_size=200), st.data())
@settings(max_examples=50, deadline=None)
def test_pop_returns_in_push_order(sizes, data):
    q = DropTailQueue(capacity_bytes=1 << 30)
    pkts = [mkpkt(s) for s in sizes]
    for p in pkts:
        q.push(p)
    out = [q.pop() for _ in range(len(pkts))]
    assert out == pkts


class TestRed:
    def test_no_drops_when_idle(self):
        q = REDQueue(100 * 1440, rng=random.Random(1))
        assert all(q.push(mkpkt()) for _ in range(10))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            REDQueue(1000, min_th=0.9, max_th=0.5)

    def test_drops_probabilistically_before_full(self):
        q = REDQueue(40 * 1440, max_p=0.5, weight=0.5,
                     rng=random.Random(7))
        accepted = sum(q.push(mkpkt()) for _ in range(30))
        # The queue never reached its hard byte budget, yet RED dropped.
        assert q.bytes < q.capacity_bytes
        assert q.stats.drops > 0
        assert accepted > 0
