"""Unit tests for threshold callbacks (level- and edge-triggered)."""

import pytest

from repro.core.attributes import AttributeSet
from repro.core.callbacks import CallbackRegistry


def make_recording_registry(**kw):
    reg = CallbackRegistry()
    events = []

    def up(e, m):
        events.append(("up", e))
        return AttributeSet({"X": e})

    def down(e, m):
        events.append(("down", e))
        return AttributeSet({"Y": e})

    reg.register(upper=0.3, lower=0.05, on_upper=up, on_lower=down, **kw)
    return reg, events


def test_threshold_validation():
    reg = CallbackRegistry()
    with pytest.raises(ValueError):
        reg.register(upper=0.05, lower=0.3)
    with pytest.raises(ValueError):
        reg.register(upper=1.5, lower=0.0)


def test_upper_fires_at_threshold():
    reg, events = make_recording_registry()
    out = reg.evaluate(0.3, {})
    assert events == [("up", 0.3)]
    assert out and out[0]["X"] == 0.3


def test_level_triggered_refires_every_period():
    reg, events = make_recording_registry()
    reg.evaluate(0.4, {})
    reg.evaluate(0.5, {})
    assert [e[0] for e in events] == ["up", "up"]


def test_lower_fires_at_or_below():
    reg, events = make_recording_registry()
    reg.evaluate(0.05, {})
    reg.evaluate(0.0, {})
    assert [e[0] for e in events] == ["down", "down"]


def test_dead_zone_fires_nothing():
    reg, events = make_recording_registry()
    reg.evaluate(0.1, {})
    reg.evaluate(0.2, {})
    assert events == []


def test_edge_triggered_fires_once_per_crossing():
    reg, events = make_recording_registry(edge_triggered=True)
    reg.evaluate(0.4, {})
    reg.evaluate(0.5, {})   # still congested: no re-fire
    reg.evaluate(0.1, {})   # dead zone
    reg.evaluate(0.01, {})  # crossing down
    reg.evaluate(0.01, {})  # still calm: no re-fire
    reg.evaluate(0.6, {})   # crossing up again
    assert [e[0] for e in events] == ["up", "down", "up"]


def test_none_results_are_skipped():
    reg = CallbackRegistry()
    reg.register(upper=0.3, lower=0.05, on_upper=lambda e, m: None)
    assert reg.evaluate(0.5, {}) == []


def test_multiple_registrations_all_evaluated():
    reg = CallbackRegistry()
    fired = []
    reg.register(upper=0.3, lower=0.05,
                 on_upper=lambda e, m: fired.append(1) or None)
    reg.register(upper=0.1, lower=0.01,
                 on_upper=lambda e, m: fired.append(2) or None)
    reg.evaluate(0.2, {})
    assert fired == [2]
    reg.evaluate(0.5, {})
    assert fired == [2, 1, 2]


def test_fired_counters_count_only_registered_handlers():
    reg, _ = make_recording_registry()
    reg.evaluate(0.5, {})
    reg.evaluate(0.01, {})
    assert reg.fired_upper == 1 and reg.fired_lower == 1


def test_metrics_dict_passed_through():
    reg = CallbackRegistry()
    seen = {}
    reg.register(upper=0.3, lower=0.05,
                 on_upper=lambda e, m: seen.update(m) or None)
    reg.evaluate(0.5, {"rate_bps": 123.0})
    assert seen["rate_bps"] == 123.0
