"""Tests for :mod:`repro.obs.live`: heartbeat atomicity/expiry, streaming
aggregation vs the batch aggregator, deterministic ``watch --once``
goldens, the Prometheus ``serve`` endpoint, and the heartbeat detail in
``campaign status``.

Golden discipline: a watch snapshot is a pure function of the directory
contents and the injected ``now``, so the goldens here pin exact bytes --
a formatting change must update them consciously.
"""

import json
import os
import threading
import time
import urllib.request

import pytest

from repro.api import Scenario
from repro.campaign import Campaign, CampaignStore, aggregate, run_campaign
from repro.experiments.common import ScenarioResult
from repro.obs.live import (DEFAULT_EXPIRY_S, PROM_CONTENT_TYPE,
                            HeartbeatWriter, StreamingAggregator,
                            _atomic_write_json, build_metrics_text,
                            heartbeat_state, make_live_server,
                            read_heartbeats, render_watch, watch_snapshot)

TINY = dict(workload="greedy", n_frames=5, time_cap=30.0)

SUMMARIES = {
    "tcp": {"duration_s": 2.0, "throughput_kBps": 100.0,
            "msg_interarrival_s": 0.01, "msg_jitter_s": 0.002},
    "iq": {"duration_s": 1.0, "throughput_kBps": 200.0,
           "msg_interarrival_s": 0.005, "msg_jitter_s": 0.001},
}


def _golden_campaign():
    return Campaign(Scenario(**TINY), name="golden",
                    axes={"transport": ["tcp", "iq"]}, seeds=1)


def _result(summary):
    return ScenarioResult(summary=dict(summary), log=[], conn=None,
                          source=None, strategy=None, net=None, sim=None,
                          completed=1)


@pytest.fixture()
def golden_dir(tmp_path):
    """A finished 2-cell campaign directory with one pinned heartbeat --
    every byte of it is deterministic (synthetic results, no clocks)."""
    camp = _golden_campaign()
    store = CampaignStore(tmp_path / "camp")
    store.init(camp)
    for cell in camp.cells():
        store.store_cell(cell.key,
                         _result(SUMMARIES[cell.assignment["transport"]]))
    _atomic_write_json(store.heartbeat_dir / "w1.json", {
        "v": 1, "worker": "w1", "pid": 4242, "host": "testhost",
        "state": "running", "started_at": 1000.0, "updated_at": 1000.0,
        "claimed": None, "claimed_key": None, "done": 2, "failed": 0,
        "rate_per_s": 0.5, "note": "transport:COMPLETE"})
    return tmp_path / "camp"


# ----------------------------------------------------------------------
# Heartbeat writer: atomicity, throttling, failure behaviour
# ----------------------------------------------------------------------
def test_heartbeat_write_is_atomic_and_leaves_no_tmp(tmp_path):
    hb = HeartbeatWriter(tmp_path, "w0", clock=lambda: 1000.0)
    for _ in range(20):
        hb.beat(force=True)
    names = sorted(os.listdir(tmp_path))
    assert names == ["w0.json"], "only the final renamed file may exist"
    payload = json.loads((tmp_path / "w0.json").read_text())
    assert payload["worker"] == "w0"
    assert payload["updated_at"] == 1000.0
    assert payload["state"] == "running"


def test_heartbeat_throttles_unforced_beats(tmp_path):
    hb = HeartbeatWriter(tmp_path, "w0", min_interval_s=3600.0,
                         clock=lambda: 1000.0)
    first = (tmp_path / "w0.json").read_text()
    hb.done = 99
    hb.beat()  # throttled: within min_interval of the construction write
    assert (tmp_path / "w0.json").read_text() == first
    hb.beat(force=True)
    assert json.loads((tmp_path / "w0.json").read_text())["done"] == 99


def test_heartbeat_counters_and_note(tmp_path):
    clock_now = [1000.0]
    hb = HeartbeatWriter(tmp_path, "w0", min_interval_s=0.0,
                         clock=lambda: clock_now[0])
    hb.claim("cell-a", "k1")
    assert json.loads((tmp_path / "w0.json").read_text())["claimed"] == \
        "cell-a"
    clock_now[0] = 1001.0
    hb.complete(note="run:COMPLETE")
    clock_now[0] = 1002.0
    hb.complete(failed=True, note="link:DOWN")
    payload = json.loads((tmp_path / "w0.json").read_text())
    assert payload["done"] == 2
    assert payload["failed"] == 1
    assert payload["claimed"] is None
    assert payload["note"] == "link:DOWN"
    assert payload["rate_per_s"] == pytest.approx(1.0)  # 2 in 2s window


def test_heartbeat_never_raises_on_broken_directory(tmp_path):
    hb = HeartbeatWriter(tmp_path / "hb", "w0")
    # Replace the heartbeat directory with a plain file: every future
    # write must fail -- silently.
    os.unlink(hb.path)
    os.rmdir(tmp_path / "hb")
    (tmp_path / "hb").write_text("not a directory")
    hb.beat(force=True)  # flips the writer into broken mode
    hb.complete()        # and stays silent thereafter
    hb.close()
    assert (tmp_path / "hb").read_text() == "not a directory"


def test_heartbeat_kill_switch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_HEARTBEAT", "0")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    run_campaign(_golden_campaign(), dir=tmp_path / "camp", workers=1)
    assert not os.path.exists(tmp_path / "camp" / "heartbeats")


def test_run_batch_pool_heartbeat(tmp_path, monkeypatch):
    from repro.experiments.common import ScenarioConfig
    from repro.runner import run_batch
    monkeypatch.setenv("REPRO_HEARTBEAT_DIR", str(tmp_path / "hb"))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    run_batch([ScenarioConfig(**TINY), ScenarioConfig(**TINY)])
    (hb,) = read_heartbeats(tmp_path / "hb")
    assert hb["worker"].startswith("pool-")
    assert hb["done"] == 2
    assert hb["failed"] == 0
    assert hb["state"] == "exited"


# ----------------------------------------------------------------------
# Liveness classification
# ----------------------------------------------------------------------
def test_heartbeat_state_expiry_window():
    hb = {"state": "running", "updated_at": 1000.0}
    assert heartbeat_state(hb, now=1000.0 + DEFAULT_EXPIRY_S - 1) == "live"
    assert heartbeat_state(hb, now=1000.0 + DEFAULT_EXPIRY_S) == "stale"
    assert heartbeat_state({"state": "exited", "updated_at": 1000.0},
                           now=1000.5) == "exited"
    assert heartbeat_state({"state": "running"}, now=0.0) == "stale"


def test_read_heartbeats_skips_corrupt_files(tmp_path):
    _atomic_write_json(tmp_path / "good.json",
                       {"worker": "good", "updated_at": 1.0})
    (tmp_path / "torn.json").write_text('{"worker": "to')
    (tmp_path / "noise.txt").write_text("ignored")
    assert [hb["worker"] for hb in read_heartbeats(tmp_path)] == ["good"]


def test_dead_worker_reported_stale_after_lease_timeout(golden_dir):
    store = CampaignStore(golden_dir)
    status = store.status(now=1000.0 + store.lease_s + 1)
    (hb,) = status["heartbeats"]
    assert hb["worker"] == "w1"
    assert hb["state"] == "stale"
    assert hb["age_s"] == pytest.approx(store.lease_s + 1)
    # ... while a just-renewed view of the same file reads live.
    assert store.status(now=1001.0)["heartbeats"][0]["state"] == "live"


def test_status_reports_stale_lease_detail(tmp_path):
    camp = _golden_campaign()
    store = CampaignStore(tmp_path, lease_s=0.01)
    store.init(camp)
    cells = camp.cells()
    assert store.try_claim(cells[0].key)
    time.sleep(0.02)  # let the lease expire
    status = store.status()
    assert status["stale_claims"] == 1
    (claim,) = [c for c in status["claims"] if c["expired"]]
    assert claim["cell"] == cells[0].label
    assert claim["worker"] == store.worker


# ----------------------------------------------------------------------
# Streaming aggregation
# ----------------------------------------------------------------------
def test_streaming_axes_match_batch_aggregate(golden_dir):
    camp = _golden_campaign()
    store = CampaignStore(golden_dir)
    agg = StreamingAggregator(
        [(c.key, c.label, c.assignment) for c in camp.cells()])
    assert agg.poll(store) == 2
    assert agg.poll(store) == 0  # idempotent: nothing new to fold
    results = {c.key: store.load_cell(c.key) for c in camp.cells()}
    batch = aggregate(camp, results)
    assert agg.axes() == batch.axes
    assert agg.snapshot()["failures"] == batch.failures


def test_streaming_fold_is_incremental(golden_dir):
    camp = _golden_campaign()
    store = CampaignStore(golden_dir)
    cells = camp.cells()
    agg = StreamingAggregator(
        [(c.key, c.label, c.assignment) for c in cells])
    os.unlink(store.cell_path(cells[1].key))
    assert agg.poll(store) == 1
    assert agg.done == 1
    # The second cell lands later; only it is folded by the next poll.
    store.store_cell(cells[1].key,
                     _result(SUMMARIES[cells[1].assignment["transport"]]))
    assert agg.poll(store) == 1
    assert agg.done == 2
    assert not agg.fold(cells[1].key, _result(SUMMARIES["iq"]))


# ----------------------------------------------------------------------
# watch --once golden
# ----------------------------------------------------------------------
GOLDEN_WATCH = """\
campaign golden: 2/2 done (0 failed), 0 running, 0 pending

workers
worker  state  age  cell  done  failed  cells/s  last note
------  -----  ---  ----  ----  ------  -------  ------------------
w1      live   1s   -     2     0       0.50     transport:COMPLETE

axis: transport (streaming, 2 cells in)
transport  metric              n  mean   min    max    std
---------  ------------------  -  -----  -----  -----  ---
'iq'       duration_s          1  1      1      1      0
'iq'       throughput_kBps     1  200    200    200    0
'iq'       msg_interarrival_s  1  0.005  0.005  0.005  0
'iq'       msg_jitter_s        1  0.001  0.001  0.001  0
'tcp'      duration_s          1  2      2      2      0
'tcp'      throughput_kBps     1  100    100    100    0
'tcp'      msg_interarrival_s  1  0.01   0.01   0.01   0
'tcp'      msg_jitter_s        1  0.002  0.002  0.002  0"""


def _rstripped(text):
    # The renderer pads table cells with trailing spaces; strip them so
    # the golden survives editors that trim trailing whitespace.
    return "\n".join(line.rstrip() for line in text.splitlines())


def test_watch_snapshot_golden(golden_dir):
    snap = watch_snapshot(golden_dir, now=1001.0)
    assert _rstripped(render_watch(snap)) == GOLDEN_WATCH


def test_watch_snapshot_is_deterministic_given_now(golden_dir):
    a = watch_snapshot(golden_dir, now=1001.0)
    b = watch_snapshot(golden_dir, now=1001.0)
    assert a == b


def test_watch_once_cli(golden_dir, capsys):
    from repro.cli import main
    assert main(["campaign", "watch", str(golden_dir), "--once"]) == 0
    out = capsys.readouterr().out
    assert "campaign golden: 2/2 done" in out
    assert "w1" in out
    assert "axis: transport (streaming, 2 cells in)" in out


def test_watch_missing_dir_is_user_error(tmp_path, capsys):
    from repro.cli import main
    assert main(["campaign", "watch", str(tmp_path / "nope"),
                 "--once"]) == 2
    assert "no campaign manifest" in capsys.readouterr().err


def test_watch_shows_stale_claim_warning(golden_dir):
    camp = _golden_campaign()
    store = CampaignStore(golden_dir, lease_s=0.01)
    cells = camp.cells()
    os.unlink(store.cell_path(cells[0].key))
    assert store.try_claim(cells[0].key)
    time.sleep(0.02)
    # Claim leases carry wall-clock expiries, so use the real clock here.
    out = render_watch(watch_snapshot(golden_dir))
    assert "warning: stale claim" in out
    assert "stealable" in out


# ----------------------------------------------------------------------
# Prometheus serving
# ----------------------------------------------------------------------
def test_metrics_text_reuses_pinned_report_formatting(golden_dir):
    text = build_metrics_text(golden_dir, now=1001.0)
    camp = _golden_campaign()
    store = CampaignStore(golden_dir)
    results = {c.key: store.load_cell(c.key) for c in camp.cells()}
    report_lines = aggregate(camp, results).render_prometheus().rstrip("\n")
    assert text.startswith(report_lines)
    assert 'repro_campaign_workers{state="live"} 1' in text
    assert 'repro_campaign_worker_cells{worker="w1",state="done"} 2' in text
    assert 'repro_campaign_worker_rate_cells_per_s{worker="w1"} 0.5' in text


def test_serve_endpoint_content_type_and_pinned_bytes(golden_dir):
    server = make_live_server(golden_dir, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        resp = urllib.request.urlopen(f"{base}/metrics")
        assert resp.headers["Content-Type"] == PROM_CONTENT_TYPE
        body = resp.read()
        # Scrapes over an unchanged directory are byte-identical, and
        # agree with the offline renderer up to the (age-independent)
        # worker-state lines.
        assert body == urllib.request.urlopen(f"{base}/metrics").read()
        assert body.decode() == build_metrics_text(golden_dir)
        root = urllib.request.urlopen(f"{base}/")
        assert "campaign golden: 2/2 done" in root.read().decode()
        assert urllib.request.urlopen(f"{base}/healthz").read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/nope")
        assert err.value.code == 404
    finally:
        server.shutdown()
        server.server_close()


def test_serve_refuses_non_campaign_dir(tmp_path):
    with pytest.raises(FileNotFoundError, match="no campaign manifest"):
        make_live_server(tmp_path, port=0)


# ----------------------------------------------------------------------
# Acceptance: a real 2-worker campaign is observable end to end
# ----------------------------------------------------------------------
def test_two_worker_campaign_shows_heartbeats_and_aggregates(
        tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_PROGRESS", "0")
    camp = Campaign(Scenario(**TINY), name="accept",
                    axes={"transport": ["tcp", "iq"]}, seeds=2)
    run = run_campaign(camp, dir=tmp_path / "camp", workers=2)
    assert run.complete

    from repro.cli import main
    assert main(["campaign", "watch", str(tmp_path / "camp"),
                 "--once"]) == 0
    out = capsys.readouterr().out
    assert "campaign accept: 4/4 done" in out
    assert "axis: transport (streaming, 4 cells in)" in out
    workers = [hb["worker"]
               for hb in read_heartbeats(tmp_path / "camp" / "heartbeats")]
    assert len(workers) == 2
    for worker in workers:
        assert worker in out

    assert main(["campaign", "status", str(tmp_path / "camp")]) == 0
    status_out = capsys.readouterr().out
    assert "heartbeat" in status_out
    assert "exited" in status_out
