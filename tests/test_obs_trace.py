"""Trace-file tests: determinism across worker counts, cache interplay,
gzip round-trips, and the no-perturbation guarantee (tracing must never
change a scenario's results)."""

import pathlib

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.middleware.adaptation import ResolutionAdaptation
from repro.obs.events import (ATTR_SENT, CALLBACK_FIRED, COORD_ACTION,
                              CWND_CHANGE, EVENT_TYPES, PACKET_SEND)
from repro.obs.sinks import RingBufferSink, read_trace, write_trace
from repro.runner import ResultsCache, run_batch


def _resolution():
    return ResolutionAdaptation(upper=0.05, lower=0.005)


def _congested(seed=2, **kw):
    """Small but genuinely congested IQ scenario: CBR + VBR cross traffic
    push the loss ratio over the adaptation thresholds, so the trace shows
    the whole coordination chain."""
    defaults = dict(transport="iq", workload="greedy", n_frames=2000,
                    base_frame_size=700, cbr_bps=17.5e6, vbr_mean_bps=1e6,
                    metric_period=0.1, adaptation=_resolution, seed=seed,
                    time_cap=120.0)
    defaults.update(kw)
    return ScenarioConfig(**defaults)


def test_trace_file_identical_for_any_worker_count(tmp_path):
    cfgs = {f"s{seed}": _congested(seed=seed) for seed in (1, 2, 3)}
    p1 = tmp_path / "j1.jsonl"
    p4 = tmp_path / "j4.jsonl"
    r1 = run_batch(cfgs, jobs=1, cache=False, trace=str(p1))
    r4 = run_batch(cfgs, jobs=4, cache=False, trace=str(p4))
    assert p1.read_bytes() == p4.read_bytes()
    for key in cfgs:
        assert r1[key].summary == r4[key].summary


def test_trace_events_well_formed_and_ordered(tmp_path):
    path = tmp_path / "t.jsonl"
    run_batch({"only": _congested()}, cache=False, trace=str(path))
    header, runs = read_trace(path)
    assert header["format"] == "repro-trace"
    assert header["runs"] == 1
    (entry,) = runs
    assert entry["run"] == "only"
    assert entry["cached"] is False
    assert entry["meta"]["transport"] == "iq"
    events = entry["events"]
    assert events, "traced run produced no events"
    assert [ev["seq"] for ev in events] == list(range(len(events)))
    assert all(ev["event"] in EVENT_TYPES for ev in events)
    ts = [ev["t"] for ev in events]
    assert ts == sorted(ts), "timestamps must be monotone in seq order"


def test_iq_coordinated_run_emits_required_event_types(tmp_path):
    """The acceptance set: an IQ run with application adaptation must show
    the full coordination chain in its trace."""
    path = tmp_path / "iq.jsonl"
    run_batch([_congested()], cache=False, trace=str(path))
    _, runs = read_trace(path)
    seen = {ev["event"] for ev in runs[0]["events"]}
    assert {CWND_CHANGE, CALLBACK_FIRED, ATTR_SENT, COORD_ACTION,
            PACKET_SEND} <= seen


def test_tracing_does_not_perturb_results(tmp_path):
    cfg = _congested()
    plain = run_scenario(cfg)
    traced = run_scenario(cfg, trace_sink=RingBufferSink())
    assert traced.summary == plain.summary


def test_cache_hits_recorded_honestly(tmp_path):
    store = ResultsCache(tmp_path / "cache")
    cfg = _congested(adaptation=None)  # hashable -> cacheable
    p1 = tmp_path / "fresh.jsonl"
    p2 = tmp_path / "hit.jsonl"
    run_batch([cfg], cache=store, trace=str(p1))
    run_batch([cfg], cache=store, trace=str(p2))
    _, fresh_runs = read_trace(p1)
    _, hit_runs = read_trace(p2)
    assert fresh_runs[0]["cached"] is False and fresh_runs[0]["events"]
    assert hit_runs[0]["cached"] is True and not hit_runs[0]["events"]
    # The cached payload itself must not smuggle an event stream.
    assert store.get(store_key(cfg)).trace is None


def store_key(cfg):
    from repro.runner import config_key
    return config_key(cfg)


def test_gzip_trace_roundtrip_and_determinism(tmp_path):
    cfg = _congested(n_frames=150)
    plain = tmp_path / "a.jsonl"
    gz1 = tmp_path / "b.jsonl.gz"
    gz2 = tmp_path / "c.jsonl.gz"
    run_batch([cfg], cache=False, trace=str(plain))
    run_batch([cfg], cache=False, trace=str(gz1))
    run_batch([cfg], cache=False, trace=str(gz2))
    assert read_trace(gz1) == read_trace(plain)
    # mtime is pinned, so even the compressed bytes are reproducible.
    assert gz1.read_bytes() == gz2.read_bytes()


def test_write_trace_round_trip_with_synthetic_runs(tmp_path):
    path = tmp_path / "synth.jsonl"
    total = write_trace(path, [
        {"run": "a", "cached": False,
         "events": [{"seq": 0, "t": 0.0, "layer": "transport",
                     "event": PACKET_SEND, "size": 1400}],
         "meta": {"seed": 7}},
        {"run": "b", "cached": True, "events": None, "meta": {}},
    ])
    assert total == 1
    header, runs = read_trace(path)
    assert header["runs"] == 2
    assert [r["run"] for r in runs] == ["a", "b"]
    assert runs[0]["meta"] == {"seed": 7}
    assert runs[1]["cached"] is True and runs[1]["events"] == []


def test_read_trace_rejects_foreign_files(tmp_path):
    bogus = tmp_path / "x.jsonl"
    bogus.write_text('{"type":"header","format":"other","version":1}\n')
    import pytest
    with pytest.raises(ValueError):
        read_trace(bogus)
    empty = tmp_path / "y.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError):
        read_trace(empty)


def test_ring_buffer_bounds():
    sink = RingBufferSink(capacity=4)
    from repro.obs.events import TraceEvent
    for i in range(10):
        sink.append(TraceEvent(i, 0.0, "net", PACKET_SEND, {}))
    assert len(sink) == 4
    assert sink.appended == 10
    assert [ev.seq for ev in sink.events] == [6, 7, 8, 9]
    sink.clear()
    assert len(sink) == 0
