#!/usr/bin/env python
"""Remote visualization with selective reliability (paper section 3.3).

A scientist steers a remote visualization of a large dataset.  Some of the
data being streamed lies outside the viewport the user is focused on; when
the network congests, the application *unmarks* off-focus datagrams
(droppable) while tagging every fifth datagram as control information that
must arrive.  IQ-RUDP, told about the adaptation through quality
attributes, discards unmarked datagrams before they ever occupy the
bottleneck -- so the control stream stays timely.

The script runs the scenario twice (coordinated IQ-RUDP vs plain RUDP) and
reports the tagged-stream latency the end user would experience.

Run:  python examples/remote_visualization.py
"""

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.middleware.adaptation import MarkingAdaptation


def scenario(transport: str) -> ScenarioConfig:
    return ScenarioConfig(
        transport=transport,
        workload="trace_clocked",      # frame sizes follow dataset activity
        n_frames=250,
        frame_rate=25,
        frame_multiplier=3000,
        adaptation=lambda: MarkingAdaptation(upper=0.10, lower=0.01),
        loss_tolerance=0.40,           # the receiver tolerates 40% loss
        cbr_bps=18e6,                  # heavy background transfer
        metric_period=0.1,
        seed=1,
    )


def describe(name: str, res) -> None:
    s = res.summary
    st = res.conn.sender.stats
    print(f"--- {name} ---")
    print(f"  session duration      : {s['duration_s']:.1f} s")
    print(f"  control (tagged) delay: {s['tagged_delay_ms']:.1f} ms "
          f"(jitter {s['tagged_jitter_ms']:.1f} ms)")
    print(f"  datagrams delivered   : {s['pct_received']:.1f} %")
    print(f"  discarded at sender   : {st.discarded_msgs} "
          f"(coordinated drop of off-focus data)")
    print(f"  skipped via reliability: {st.skips_sent}")


def main() -> None:
    print("Remote visualization: trading off-focus data for timeliness\n")
    iq = run_scenario(scenario("iq"))
    rudp = run_scenario(scenario("rudp"))
    describe("IQ-RUDP (coordinated)", iq)
    describe("RUDP (uncoordinated)", rudp)

    gain = (1 - iq.summary["tagged_delay_ms"]
            / max(rudp.summary["tagged_delay_ms"], 1e-9)) * 100
    print(f"\nCoordination cut the control-stream delay by {gain:.0f}% "
          f"while staying within the 40% loss tolerance.")


if __name__ == "__main__":
    main()
