#!/usr/bin/env python
"""Declarative campaign in ~40 lines: spec -> expansion -> fleet -> report.

A campaign is "one scenario template x named parameter axes x seed
replicates".  This demo declares a small coordinated-vs-uncoordinated
grid as a plain dict (the same shape a ``.toml`` spec file takes), runs
it through a shared campaign directory with two worker processes doing
filesystem work-stealing, and prints the per-axis aggregate report.

Everything here scales to thousands of cells and multiple hosts: point
more ``repro campaign run`` invocations at the same directory and they
join the fleet; interrupt any of them and ``repro campaign resume``
finishes the remainder without re-executing a single finished cell.

Run:  python examples/campaign_demo.py
"""

import tempfile

from repro import load_campaign, run_campaign

SPEC = {
    "name": "demo",
    "template": {
        # Greedy bulk transfer, small enough that each cell is fast.
        "workload": "greedy",
        "n_frames": 200,
        "time_cap": 60.0,
    },
    "axes": {
        # Coordinated (iq) vs uncoordinated (rudp) vs TCP baseline...
        "transport": ["iq", "rudp", "tcp"],
        # ...under three cross-traffic loads.
        "cbr_bps": [0.0, 8e6, 16e6],
    },
    "seeds": 3,  # three replicates per grid point
    "metrics": ["throughput_kBps", "duration_s"],
}


def main() -> None:
    campaign = load_campaign(SPEC)
    print(campaign.describe())  # demo: transport[3] x cbr_bps[3] x ... cells

    with tempfile.TemporaryDirectory() as camp_dir:
        run = run_campaign(campaign, dir=camp_dir, workers=2, cache=False)

    report = run.report()
    assert run.complete and report.failed == 0
    print()
    print(report.render())


if __name__ == "__main__":
    main()
