#!/usr/bin/env python
"""Quickstart: run an IQ-RUDP scenario through the stable public API and
print the metrics the paper's tables report.

This is the smallest end-to-end tour of :mod:`repro.api`:

1. describe the experiment as a :class:`~repro.api.Scenario` (validated at
   construction -- misspell a field and you get a did-you-mean error),
2. :func:`~repro.api.run` it (results come from the persistent cache when
   the identical configuration has run before),
3. read the receiver-side metrics from ``result.summary``,
4. :func:`~repro.api.sweep` the same workload over plain RUDP for contrast.

Run:  python examples/quickstart.py
"""

from repro.api import Scenario, run, sweep
from repro.core.attributes import NET_CWND, NET_ERROR_RATIO
from repro.middleware.adaptation import ResolutionAdaptation


def main() -> None:
    base = Scenario(
        transport="iq",              # the paper's protocol; try "rudp"/"tcp"
        workload="greedy",           # send as fast as IQ-RUDP allows
        n_frames=4000,
        base_frame_size=1400,
        adaptation=lambda: ResolutionAdaptation(upper=0.05, lower=0.005),
        cbr_bps=16e6,                # iperf-style cross traffic
        vbr_mean_bps=1e6,            # MBone-driven VBR cross traffic
        seed=2,
    )
    res = run(base)

    print("=== IQ-RUDP quickstart ===")
    print(f"completed          : {res.completed}")
    s = res.summary
    print(f"duration           : {s['duration_s']:.2f} s")
    print(f"throughput         : {s['throughput_kBps']:.1f} KB/s")
    print(f"datagram delay     : {s['delay_ms']:.2f} ms "
          f"(jitter {s['jitter_ms']:.2f} ms)")
    print(f"delivered          : {s['pct_received']:.1f} % of datagrams")
    print(f"final resolution   : {res.strategy.scale:.2f} x")

    coord = res.conn.coordinator
    print(f"window re-scales   : {coord.window_rescales} "
          f"(coordinated adaptations)")
    print(f"exported error rate: "
          f"{res.conn.query_metric(NET_ERROR_RATIO):.3f}")
    print(f"exported cwnd      : {res.conn.query_metric(NET_CWND):.1f} pkts")

    # The same workload over the uncoordinated transports, as one sweep
    # (TCP has no adaptation callbacks, so the strategy comes off).
    others = sweep({"rudp": base.replace(transport="rudp"),
                    "tcp": base.replace(transport="tcp", adaptation=None)})
    for tp, other in others.items():
        print(f"\n=== same workload over {tp} (no coordination) ===")
        print(f"duration           : {other.summary['duration_s']:.2f} s")
        print(f"throughput         : "
              f"{other.summary['throughput_kBps']:.1f} KB/s")


if __name__ == "__main__":
    main()
