#!/usr/bin/env python
"""Quickstart: open an IQ-RUDP connection over the paper's dumbbell, send
adaptive frames through the IQ-ECho event channel, and print the metrics.

This is the smallest end-to-end tour of the public API:

1. build the simulated network (20 Mb bottleneck, 30 ms RTT),
2. open an IQ-RUDP connection with a resolution-adaptation strategy,
3. push frames while a CBR "iperf" flow congests the bottleneck,
4. read the receiver-side metrics the paper's tables report.

Run:  python examples/quickstart.py
"""

from repro.analysis.stats import flow_summary
from repro.core.attributes import NET_CWND, NET_ERROR_RATIO
from repro.experiments.common import ScenarioConfig, run_scenario
from repro.middleware.adaptation import ResolutionAdaptation


def main() -> None:
    cfg = ScenarioConfig(
        transport="iq",              # the paper's protocol; try "rudp"/"tcp"
        workload="greedy",           # send as fast as IQ-RUDP allows
        n_frames=4000,
        base_frame_size=1400,
        adaptation=lambda: ResolutionAdaptation(upper=0.05, lower=0.005),
        cbr_bps=16e6,                # iperf-style cross traffic
        vbr_mean_bps=1e6,            # MBone-driven VBR cross traffic
        seed=2,
    )
    res = run_scenario(cfg)

    print("=== IQ-RUDP quickstart ===")
    print(f"completed          : {res.completed}")
    s = res.summary
    print(f"duration           : {s['duration_s']:.2f} s")
    print(f"throughput         : {s['throughput_kBps']:.1f} KB/s")
    print(f"datagram delay     : {s['delay_ms']:.2f} ms "
          f"(jitter {s['jitter_ms']:.2f} ms)")
    print(f"delivered          : {s['pct_received']:.1f} % of datagrams")
    print(f"final resolution   : {res.strategy.scale:.2f} x")

    coord = res.conn.coordinator
    print(f"window re-scales   : {coord.window_rescales} "
          f"(coordinated adaptations)")
    print(f"exported error rate: "
          f"{res.conn.query_metric(NET_ERROR_RATIO):.3f}")
    print(f"exported cwnd      : {res.conn.query_metric(NET_CWND):.1f} pkts")

    # The same run without coordination, for contrast.
    res_rudp = run_scenario(cfg.replace(transport="rudp"))
    print("\n=== same workload over plain RUDP (no coordination) ===")
    print(f"duration           : {res_rudp.summary['duration_s']:.2f} s")
    print(f"throughput         : "
          f"{res_rudp.summary['throughput_kBps']:.1f} KB/s")


if __name__ == "__main__":
    main()
