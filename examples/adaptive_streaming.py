#!/usr/bin/env python
"""Adaptive scientific-data streaming with down-sampling (paper section 3.4),
built directly on the IQ-ECho event-channel API.

A simulation code streams snapshots to a remote collaborator at a fixed
frame rate.  When the transport reports congestion, the application
down-samples (reduces snapshot resolution); IQ-RUDP re-inflates its packet
window so the flow keeps its fair share of bandwidth instead of
over-reacting.  This example wires the pieces by hand -- event channel,
callbacks, cmwritev_attr -- rather than going through the experiment
harness, to show the programming model a downstream user would adopt.

Run:  python examples/adaptive_streaming.py
"""

from repro.core.attributes import (ADAPT_COND, ADAPT_PKTSIZE, ADAPT_WHEN,
                                   NET_ERROR_RATIO, NET_RTT, AttributeSet)
from repro.middleware.echo import EventChannel
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.traffic.cbr import CbrSource
from repro.transport.iq_rudp import IqRudpConnection
from repro.transport.udp import UdpSender, UdpSink

FRAME_RATE = 100.0        # snapshots per second
BASE_SNAPSHOT = 1200      # bytes at full resolution
N_FRAMES = 3000


class StreamingApp:
    """A self-clocked source that owns its resolution control loop."""

    def __init__(self, sim: Simulator, channel: EventChannel):
        self.sim = sim
        self.channel = channel
        self.scale = 1.0
        self.sent = 0
        self.pending_attrs: AttributeSet | None = None
        # Register the threshold callbacks (section 2.1 mechanism 2).
        channel.conn.register_callbacks(
            upper=0.02, lower=0.002,
            on_upper=self.on_congestion, on_lower=self.on_calm)

    # -- transport-triggered callbacks ------------------------------------
    def on_congestion(self, eratio: float, metrics: dict):
        new_scale = max(self.scale * (1.0 - eratio), 0.25)
        if new_scale == self.scale:
            return None
        rate_chg = 1.0 - new_scale / self.scale
        self.scale = new_scale
        # Describe the adaptation to the transport (cmwritev_attr piggyback
        # happens on the next snapshot).
        self.pending_attrs = AttributeSet({
            ADAPT_PKTSIZE: rate_chg,
            ADAPT_WHEN: "now",
            ADAPT_COND: {"error_ratio": eratio,
                         "rate": metrics.get("rate_bps", 0.0)},
        })
        return self.pending_attrs

    def on_calm(self, eratio: float, metrics: dict):
        if self.scale >= 1.0:
            return None
        old = self.scale
        self.scale = min(self.scale * 1.10, 1.0)
        return AttributeSet({ADAPT_PKTSIZE: 1.0 - self.scale / old,
                             ADAPT_WHEN: "now"})

    # -- delay-based adaptation via metric queries (mechanism 1) ----------
    # A smoothly ACK-clocked flow may never *lose* packets under moderate
    # congestion -- the signal shows up as RTT growth (self-queueing), so
    # the app also polls the exported NET_RTT attribute each second.
    def check_delay(self):
        if self.sent >= N_FRAMES:
            return
        rtt = self.channel.conn.query_metric(NET_RTT, 0.03)
        if rtt > 0.050 and self.scale > 0.25:
            self.on_congestion(min((rtt - 0.03) / rtt, 0.5),
                               {"rate_bps": 0.0})
        elif rtt < 0.040:
            self.on_calm(0.0, {})
        self.sim.schedule(1.0, self.check_delay)

    # -- the snapshot clock -------------------------------------------------
    def tick(self):
        if self.sent >= N_FRAMES:
            self.channel.close()
            return
        size = max(int(BASE_SNAPSHOT * self.scale), 64)
        attrs, self.pending_attrs = self.pending_attrs, None
        self.channel.cmwritev_attr(size, attrs)
        self.sent += 1
        self.sim.schedule(1.0 / FRAME_RATE, self.tick)


def main() -> None:
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("viz")

    latencies = []
    channel_holder = {}

    def on_deliver(pkt, now):
        channel_holder["ch"].on_deliver(pkt, now)

    conn = IqRudpConnection(sim, snd, rcv, metric_period=0.25,
                            on_deliver=on_deliver)
    channel = EventChannel(sim, conn, name="snapshots")
    channel_holder["ch"] = channel
    channel.subscribe(lambda ev: latencies.append(ev.latency))

    app = StreamingApp(sim, channel)

    # Background congestion: a 19.4 Mb blast for the middle of the run.
    c_snd, c_rcv = net.add_flow_hosts("cross")
    cbr_tx = UdpSender(sim, c_snd, port=9001, peer_addr=c_rcv.address,
                       peer_port=9001)
    UdpSink(sim, c_rcv, port=9001, flow_id=cbr_tx.flow_id)
    CbrSource(sim, cbr_tx, rate_bps=19.4e6, start=5.0, stop=20.0)

    sim.schedule(0.0, app.tick)
    sim.schedule(1.0, app.check_delay)
    while sim.now < 120.0 and not conn.completed:
        sim.run(until=sim.now + 1.0)

    print("=== adaptive streaming over IQ-ECho / IQ-RUDP ===")
    print(f"snapshots sent/delivered : {channel.events_submitted} / "
          f"{channel.events_delivered}")
    print(f"final resolution scale   : {app.scale:.2f}")
    if latencies:
        latencies.sort()
        mid = latencies[len(latencies) // 2]
        p99 = latencies[int(len(latencies) * 0.99)]
        print(f"snapshot latency median  : {mid * 1e3:.1f} ms")
        print(f"snapshot latency p99     : {p99 * 1e3:.1f} ms")
    print(f"window re-scales         : "
          f"{conn.coordinator.window_rescales}")


if __name__ == "__main__":
    main()
