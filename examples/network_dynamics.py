#!/usr/bin/env python
"""Network dynamics: a flapping bottleneck under a marking workload.

The paper's testbed holds the network fixed and lets the *traffic* change;
this example does the opposite.  A :class:`~repro.api.FaultSchedule`
declares what the bottleneck does and when -- here a last-mile flap (700 ms
outages separated by 1.3 s of service) while the application is streaming
and adapting -- and the same schedule runs over coordinated IQ-RUDP and
plain RUDP.  Because the sender discards droppable datagrams during
congestion, the metric that matters is delivered-frame goodput
(``goodput_fps``: distinct frames with at least one delivered segment per
second), not raw datagram counts.

The full calibrated sweep over flap / handover / burst / cliff schedules is
``python -m repro dynamics``; this is the two-run core of it.

Run:  python examples/network_dynamics.py
"""

from repro.api import FaultSchedule, Scenario, sweep
from repro.faults import LinkFlap
from repro.middleware.adaptation import MarkingAdaptation


def main() -> None:
    flap = FaultSchedule(
        LinkFlap(start=5.0, stop=16.0, down_s=0.7, up_s=1.3,
                 direction="both"))
    base = Scenario(
        workload="trace_clocked",
        n_frames=250,
        frame_rate=25,
        frame_multiplier=3000,
        adaptation=lambda: MarkingAdaptation(upper=0.05, lower=0.01,
                                             backoff=0.10),
        loss_tolerance=0.40,
        cbr_bps=18.5e6,
        metric_period=0.25,
        faults=flap,
        time_cap=900.0,
        seed=1,
    )
    results = sweep({tp: base.replace(transport=tp)
                     for tp in ("iq", "rudp")})

    print("=== flapping bottleneck: coordinated vs uncoordinated ===")
    print(f"schedule: {flap.describe()}")
    for tp, res in results.items():
        s = res.summary
        print(f"\n--- {tp} ---")
        print(f"duration        : {s['duration_s']:.1f} s")
        print(f"frame goodput   : {s['goodput_fps']:.2f} frames/s")
        print(f"delivered       : {s['pct_received']:.1f} % of datagrams")
        print(f"transport stalls: {s['stalls']:.0f} "
              f"(recovered {s['stall_recoveries']:.0f})")

    gain = (results["iq"].summary["goodput_fps"] /
            results["rudp"].summary["goodput_fps"] - 1.0) * 100.0
    print(f"\ncoordination gain: {gain:+.1f}% frame goodput vs plain RUDP")


if __name__ == "__main__":
    main()
