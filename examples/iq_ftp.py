#!/usr/bin/env python
"""IQ-FTP: selectively lossy file transfer (the paper's future-work sketch).

The conclusions describe IQ-FTP, a GridFTP-flavoured transfer "for
selectively lossy file transfers: end users can dynamically select (with
user-provided functions) the most critical file contents to be transferred
to their local sites."  This example implements that idea on IQ-RUDP:

* a file is a sequence of blocks; a user-provided ``criticality(block)``
  function scores each block;
* critical blocks are sent marked (reliable), the rest unmarked;
* under congestion the app lowers its criticality threshold (more blocks
  become droppable) and IQ-RUDP discards unmarked blocks at the sender.

The receiver reports which fraction of the file -- and which fraction of
the *critical* content -- arrived, and how long the transfer took,
coordinated vs uncoordinated.

Run:  python examples/iq_ftp.py
"""

import math
import random

from repro.core.attributes import ADAPT_MARK, ADAPT_WHEN, AttributeSet
from repro.middleware.receiver import DeliveryLog
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell
from repro.traffic.cbr import CbrSource
from repro.transport.iq_rudp import IqRudpConnection
from repro.transport.rudp import RudpConnection
from repro.transport.udp import UdpSender, UdpSink

BLOCK = 1400
N_BLOCKS = 6000


def criticality(block_index: int) -> float:
    """User-provided importance score in [0, 1].

    Here: a synthetic dataset whose header region and periodic index
    blocks matter most, with a smooth interest hump in the middle (say,
    the supernova core the paper's collaboration cares about).
    """
    if block_index < 50 or block_index % 100 == 0:
        return 1.0
    hump = math.exp(-((block_index - N_BLOCKS / 2) / (N_BLOCKS / 6)) ** 2)
    return 0.2 + 0.6 * hump


class IqFtpSender:
    """Transfers the block list, adapting its criticality threshold."""

    def __init__(self, sim, conn):
        self.sim = sim
        self.conn = conn
        self.threshold = 0.0          # blocks below it are droppable
        self.next_block = 0
        conn.register_callbacks(upper=0.05, lower=0.005,
                                on_upper=self.on_congestion,
                                on_lower=self.on_calm)
        conn.sender.on_space = self.pump
        self._pumping = False

    def on_congestion(self, eratio, metrics):
        self.threshold = min(self.threshold + 0.25, 0.75)
        # Tell the transport roughly what fraction just became droppable.
        return AttributeSet({ADAPT_MARK: self.threshold,
                             ADAPT_WHEN: "now"})

    def on_calm(self, eratio, metrics):
        if self.threshold == 0.0:
            return None
        self.threshold = max(self.threshold - 0.25, 0.0)
        return AttributeSet({ADAPT_MARK: self.threshold,
                             ADAPT_WHEN: "now"})

    def pump(self):
        if self._pumping:
            return
        self._pumping = True
        try:
            for _ in range(16):
                if self.next_block >= N_BLOCKS:
                    break
                i = self.next_block
                self.conn.submit(BLOCK,
                                 marked=criticality(i) >= self.threshold,
                                 tagged=criticality(i) >= 0.99,
                                 frame_id=i)
                self.next_block += 1
        finally:
            self._pumping = False
        if self.next_block >= N_BLOCKS and not self.conn.completed:
            try:
                self.conn.finish()
            except Exception:
                pass


def transfer(coordinated: bool) -> dict:
    sim = Simulator()
    net = Dumbbell(sim)
    snd, rcv = net.add_flow_hosts("ftp")
    log = DeliveryLog()
    cls = IqRudpConnection if coordinated else RudpConnection
    conn = cls(sim, snd, rcv, loss_tolerance=0.5, metric_period=0.25,
               on_deliver=log.on_deliver)
    ftp = IqFtpSender(sim, conn)

    # Congest the path for the middle of the transfer.
    c_snd, c_rcv = net.add_flow_hosts("bg")
    tx = UdpSender(sim, c_snd, port=9001, peer_addr=c_rcv.address,
                   peer_port=9001)
    UdpSink(sim, c_rcv, port=9001, flow_id=tx.flow_id)
    CbrSource(sim, tx, rate_bps=18e6, start=1.0, stop=12.0)

    sim.schedule(0.0, ftp.pump)
    while sim.now < 300.0 and not conn.completed:
        sim.run(until=sim.now + 1.0)

    got = set(int(f) for f in log.frame_ids)
    critical = [i for i in range(N_BLOCKS) if criticality(i) >= 0.75]
    return {
        "duration": log.duration,
        "blocks": len(got) / N_BLOCKS * 100,
        "critical": sum(1 for i in critical if i in got)
        / len(critical) * 100,
        "tagged_delay_ms": float(__import__("numpy").diff(
            log.tagged_times()).mean() * 1e3) if
        log.tagged_times().size > 1 else 0.0,
    }


def main() -> None:
    print("IQ-FTP: selectively lossy file transfer "
          f"({N_BLOCKS * BLOCK / 1e6:.1f} MB, congested mid-transfer)\n")
    results = {}
    for name, coordinated in (("IQ-RUDP (coordinated)", True),
                              ("RUDP (uncoordinated)", False)):
        r = results[name] = transfer(coordinated)
        print(f"--- {name} ---")
        print(f"  transfer time      : {r['duration']:.1f} s")
        print(f"  file delivered     : {r['blocks']:.1f} % of blocks")
        print(f"  critical delivered : {r['critical']:.1f} %")
        print(f"  index-block spacing: {r['tagged_delay_ms']:.1f} ms")
    iq, ru = results["IQ-RUDP (coordinated)"], results["RUDP (uncoordinated)"]
    shed = ru["blocks"] - iq["blocks"]
    print(f"\nThe coordinated transfer shed {shed:.0f}% of low-criticality "
          "blocks during the\ncongested phase while critical content "
          f"arrived {iq['critical']:.0f}% complete --\nthe user-selected "
          "data survives, the bulk yields.")


if __name__ == "__main__":
    main()
