"""repro -- reproduction of IQ-RUDP (He & Schwan, HPDC 2002).

Coordinating application adaptation with network transport: a reliable-UDP
transport (RUDP) whose IQ extension exchanges *quality attributes* with the
application so that transport- and application-level adaptations reinforce
instead of fighting each other.

Layering (bottom-up):

* :mod:`repro.sim` -- deterministic discrete-event network simulator
  (the Emulab testbed substitute).
* :mod:`repro.transport` -- TCP (Reno) baseline, RUDP, IQ-RUDP, UDP.
* :mod:`repro.core` -- quality attributes, callbacks, metric export, and
  the coordination engine (the paper's contribution).
* :mod:`repro.middleware` -- IQ-ECho event channels, adaptive application
  sources, delivery metrics.
* :mod:`repro.traffic` -- MBone trace synthesis and cross-traffic sources.
* :mod:`repro.experiments` / :mod:`repro.analysis` -- the evaluation
  harness regenerating every table and figure.
* :mod:`repro.runner` -- resilient process-pool batch execution of
  independent scenarios (crash isolation, timeouts, retries,
  checkpoint/resume) with a persistent, code-version-salted results cache.
* :mod:`repro.invariants` -- runtime correctness checks (conservation,
  monotonicity, bounds) armed per scenario; :mod:`repro.fuzz` drives them
  over seeded random configs with differential oracles (``repro fuzz``).

Quickstart (the stable public surface is :mod:`repro.api`)::

    from repro.api import Scenario, run
    from repro.middleware.adaptation import ResolutionAdaptation

    res = run(Scenario(
        transport="iq", workload="greedy", cbr_bps=16e6,
        adaptation=ResolutionAdaptation))
    print(res.summary)
"""

from . import analysis, api, core, middleware, sim, traffic, transport
from .api import (BatchExecutionError, FailedResult, InvariantViolation,
                  Scenario, load_campaign, load_result, run, run_campaign,
                  sweep)
from .campaign import Campaign

__version__ = "1.0.0"

__all__ = ["analysis", "api", "core", "middleware", "sim", "traffic",
           "transport", "Scenario", "run", "sweep", "load_result",
           "FailedResult", "BatchExecutionError", "InvariantViolation",
           "Campaign", "run_campaign", "load_campaign",
           "__version__"]
