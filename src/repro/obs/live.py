"""Live campaign observability: worker heartbeats + streaming aggregates.

A work-stealing campaign (:mod:`repro.campaign`) is thousands of cells
executed by N coordination-free workers over a shared directory -- and
until now the only view into a *running* campaign was ``campaign status``
polling result-file counts.  This module adds the live tier:

* **Heartbeats** -- every worker (campaign workers and ``run_batch`` pool
  parents) periodically writes one small JSON file into a ``heartbeats/``
  directory next to the results: claimed cell, cells done/failed, a
  rolling cell rate, the last flight-recorder note and process identity.
  Writes are atomic (tmp + ``os.replace``) and throttled, so a reader
  never sees a torn file and a worker never spends its time painting.
  ``REPRO_HEARTBEAT=0`` disables the writer entirely (the disarmed path
  is one env-dict lookup at construction).
* **Streaming aggregation** -- :class:`StreamingAggregator` folds each
  completed cell's summary into incremental per-axis aggregates *as the
  result files land*: a poll reads only cells it has not folded yet, so a
  watcher over a 10k-cell campaign does O(new) work per refresh instead
  of re-reading the whole directory.
* **Watch snapshots** -- :func:`watch_snapshot` +
  :func:`render_watch` produce the ``repro campaign watch`` table; the
  snapshot is a pure function of the directory contents and the ``now``
  argument, so ``--once`` output is deterministic and golden-testable.
* **Prometheus serving** -- :func:`build_metrics_text` renders the same
  state in Prometheus text exposition (0.0.4), reusing
  :meth:`~repro.campaign.aggregate.CampaignReport.render_prometheus`'s
  pinned number formatting; :func:`make_live_server` wraps it in a
  stdlib :class:`http.server.ThreadingHTTPServer` for ``repro serve``.

Heartbeat liveness reuses the campaign lease discipline: a worker whose
heartbeat has not been renewed within the expiry window (default: the
claim lease, :data:`DEFAULT_EXPIRY_S`) is reported ``stale`` -- the same
condition under which its claimed cell becomes stealable.

Module-level imports are stdlib-only on purpose: the campaign store
imports this module for status reporting, so everything campaign-shaped
is imported lazily inside the functions that need it.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import tempfile
import time
from collections import deque
from typing import Any, Iterable, Mapping

__all__ = [
    "HeartbeatWriter", "heartbeat_enabled", "read_heartbeats",
    "heartbeat_state", "StreamingAggregator", "watch_snapshot",
    "render_watch", "build_metrics_text", "make_live_server",
    "DEFAULT_EXPIRY_S", "DEFAULT_BEAT_INTERVAL_S",
]

#: A worker whose heartbeat is older than this is reported ``stale`` --
#: matches the default claim lease (``store.DEFAULT_LEASE_S``), because a
#: worker that stopped renewing for a full lease is exactly the worker
#: whose cells are about to be stolen.
DEFAULT_EXPIRY_S = 300.0

#: Minimum wall-clock seconds between heartbeat file writes; between
#: writes a ``beat`` costs one monotonic-clock read and a compare.
DEFAULT_BEAT_INTERVAL_S = 1.0

#: Completions inside this trailing window feed the rolling cell rate.
RATE_WINDOW_S = 30.0


def heartbeat_enabled() -> bool:
    """``REPRO_HEARTBEAT=0`` is the kill switch; anything else arms."""
    return os.environ.get("REPRO_HEARTBEAT", "") != "0"


def _atomic_write_json(path: pathlib.Path, payload: Mapping[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class HeartbeatWriter:
    """One worker's liveness file, written atomically and throttled.

    The writer never raises out of :meth:`beat`: a full disk or a removed
    campaign directory silently disables it -- heartbeats are advisory
    telemetry and must not take the worker down with them.

    ``clock`` is injectable so tests can pin the timestamps that land in
    the file (throttling still uses the monotonic clock).
    """

    def __init__(self, directory: "str | os.PathLike", worker: str, *,
                 total: int | None = None,
                 min_interval_s: float = DEFAULT_BEAT_INTERVAL_S,
                 clock=time.time) -> None:
        self.path = pathlib.Path(directory) / f"{worker}.json"
        self.worker = worker
        self.total = total
        self.min_interval_s = min_interval_s
        self.clock = clock
        self.done = 0
        self.failed = 0
        self.claimed: str | None = None
        self.claimed_key: str | None = None
        self.note: str | None = None
        self.started_at = clock()
        self._completions: deque = deque()
        self._last_write = float("-inf")
        self._broken = False
        self.beat(force=True)

    # ------------------------------------------------------------------
    def _rate_per_s(self, now: float) -> float:
        while self._completions and now - self._completions[0] > RATE_WINDOW_S:
            self._completions.popleft()
        window = min(max(now - self.started_at, 1e-9), RATE_WINDOW_S)
        return len(self._completions) / window

    def _payload(self, state: str) -> dict[str, Any]:
        now = self.clock()
        payload = {
            "v": 1,
            "worker": self.worker,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "state": state,
            "started_at": self.started_at,
            "updated_at": now,
            "claimed": self.claimed,
            "claimed_key": self.claimed_key,
            "done": self.done,
            "failed": self.failed,
            "rate_per_s": round(self._rate_per_s(now), 4),
            "note": self.note,
        }
        if self.total is not None:
            payload["total"] = self.total
        return payload

    def beat(self, *, force: bool = False, state: str = "running") -> None:
        """Write the heartbeat file (throttled unless ``force``)."""
        if self._broken:
            return
        mono = time.monotonic()
        if not force and mono - self._last_write < self.min_interval_s:
            return
        self._last_write = mono
        try:
            _atomic_write_json(self.path, self._payload(state))
        except OSError:
            self._broken = True

    # -- campaign-worker verbs -----------------------------------------
    def claim(self, label: str, key: str | None = None) -> None:
        """Record the cell this worker is about to execute."""
        self.claimed = label
        self.claimed_key = key
        self.beat()

    def complete(self, *, failed: bool = False,
                 note: str | None = None) -> None:
        """Record one finished cell (throttled write; the counters are
        always current in the next write whenever it happens)."""
        self.done += 1
        if failed:
            self.failed += 1
        self.claimed = None
        self.claimed_key = None
        if note is not None:
            self.note = note
        self._completions.append(self.clock())
        self.beat()

    # -- pool-parent verb ----------------------------------------------
    def pool_update(self, *, done: int, failed: int) -> None:
        """Mirror a ``run_batch`` pool's progress counters (the parent is
        the only process that sees completions, so it beats for the
        whole pool)."""
        while self.done < done:
            self.done += 1
            self._completions.append(self.clock())
        self.failed = failed
        self.beat()

    def close(self, state: str = "exited") -> None:
        """Final forced write so readers can tell exit from death."""
        self.claimed = None
        self.claimed_key = None
        self.beat(force=True, state=state)


# ---------------------------------------------------------------------------
# reading side


def read_heartbeats(directory: "str | os.PathLike") -> list[dict[str, Any]]:
    """All readable heartbeat files under ``directory``, sorted by worker
    name.  Corrupt or torn files are skipped (writes are atomic, so a
    torn file means a foreign artifact, not a crashed worker)."""
    root = pathlib.Path(directory)
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    out: list[dict[str, Any]] = []
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(root / name) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict) and "worker" in payload:
            out.append(payload)
    return out


def heartbeat_state(hb: Mapping[str, Any], *, now: float,
                    expiry_s: float = DEFAULT_EXPIRY_S) -> str:
    """Classify one heartbeat: ``live``, ``stale`` or ``exited``.

    ``stale`` means the worker claimed to be running but has not renewed
    within ``expiry_s`` -- the heartbeat analogue of an expired claim
    lease, so a stale worker's in-flight cell is exactly the one the
    store will let another worker steal.
    """
    if hb.get("state") == "exited":
        return "exited"
    updated = hb.get("updated_at")
    if not isinstance(updated, (int, float)) or now - updated >= expiry_s:
        return "stale"
    return "live"


# ---------------------------------------------------------------------------
# streaming aggregation


class StreamingAggregator:
    """Incremental per-axis aggregation over a campaign's landing cells.

    ``cells`` is the expanded cell list as ``(key, label, assignment)``
    triples (``assignment`` maps axis field -> value; empty for
    programmatic campaigns with no axis structure).  :meth:`poll` folds
    every *newly finished* cell from a
    :class:`~repro.campaign.store.CampaignStore`; :meth:`snapshot`
    renders the running totals in the same per-axis shape as the batch
    :func:`~repro.campaign.aggregate.aggregate`, so a watch table over a
    half-done campaign agrees exactly with the final report's rows for
    the cells that have landed.
    """

    def __init__(self, cells: Iterable[tuple], *,
                 metrics: Iterable[str] | None = None) -> None:
        from ..campaign.aggregate import DEFAULT_METRICS
        self.cells = [(key, label, dict(assignment))
                      for key, label, assignment in cells]
        self.metrics = tuple(metrics) if metrics else DEFAULT_METRICS
        self._by_key = {key: (label, assignment)
                        for key, label, assignment in self.cells}
        self._folded: set[str] = set()
        self.done = 0
        self.failed = 0
        self.failed_kinds: list[str] = []
        # axis field -> rendered value -> metric -> [values]
        self._axis_pools: dict[str, dict[str, dict[str, list[float]]]] = {}
        self._axis_fields: list[str] = []
        for _key, _label, assignment in self.cells:
            for field in assignment:
                if field not in self._axis_fields:
                    self._axis_fields.append(field)

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def folded(self) -> frozenset:
        return frozenset(self._folded)

    def fold(self, key: str, result) -> bool:
        """Fold one finished cell; returns False for unknown/duplicate
        keys (idempotent, so a re-poll after a torn read is harmless)."""
        if key in self._folded or key not in self._by_key:
            return False
        self._folded.add(key)
        self.done += 1
        if getattr(result, "failed", False):
            self.failed += 1
            self.failed_kinds.append(getattr(result, "kind", "error"))
            return True
        from ..campaign.spec import stable_value
        _label, assignment = self._by_key[key]
        summary = result.summary
        for field, raw in assignment.items():
            value = stable_value(raw)
            pool = self._axis_pools.setdefault(field, {}).setdefault(value, {})
            for m in self.metrics:
                if m in summary:
                    pool.setdefault(m, []).append(float(summary[m]))
        return True

    def poll(self, store) -> int:
        """Fold every not-yet-folded finished cell; returns the count of
        cells folded by this call (O(new), not O(total))."""
        fresh = 0
        for key in sorted(store.done_keys() - self._folded):
            if key not in self._by_key:
                continue
            res = store.load_cell(key)
            if res is None:
                continue  # torn write: the next poll retries
            if self.fold(key, res):
                fresh += 1
        return fresh

    def axes(self) -> dict[str, dict]:
        """Per-axis stats in the batch aggregator's exact shape."""
        from ..campaign.aggregate import _stats
        out: dict[str, dict] = {}
        for field in self._axis_fields:
            groups = self._axis_pools.get(field, {})
            out[field] = {value: {m: _stats(vs)
                                  for m, vs in groups[value].items()}
                          for value in sorted(groups)}
        return out

    def snapshot(self) -> dict:
        from ..obs.report import failures_by_kind
        return {
            "total": self.total, "done": self.done, "failed": self.failed,
            "failures": failures_by_kind(self.failed_kinds),
            "metrics": list(self.metrics), "axes": self.axes(),
        }


def _manifest_cells(store, manifest) -> list[tuple]:
    """Cell triples for a campaign directory: assignments come from the
    re-expanded spec when the manifest stores one, else empty (labels
    still render; there is just no axis structure to aggregate over)."""
    spec = manifest.get("spec")
    if spec is not None:
        from ..campaign.spec import Campaign
        return [(c.key, c.label, c.assignment)
                for c in Campaign.from_mapping(spec).cells()]
    return [(c["key"], c["label"], {}) for c in manifest["cells"]]


# ---------------------------------------------------------------------------
# watch snapshots


def watch_snapshot(directory: "str | os.PathLike", *,
                   agg: StreamingAggregator | None = None,
                   now: float | None = None,
                   expiry_s: float = DEFAULT_EXPIRY_S,
                   metrics: Iterable[str] | None = None) -> dict:
    """One deterministic-given-inputs view of a running campaign.

    Pass a persistent ``agg`` to keep folding incrementally across
    refreshes (the watch loop does); a fresh one is built otherwise.
    ``now`` defaults to wall clock and is injectable so goldens can pin
    worker ages.  Returns a plain dict; render with :func:`render_watch`.
    """
    from ..campaign.store import CampaignStore
    store = CampaignStore(directory)
    manifest = store.read_manifest()
    if manifest is None:
        raise FileNotFoundError(
            f"no campaign manifest in {directory}; start one with "
            f"'repro campaign run SPEC --dir {directory}'")
    if now is None:
        now = time.time()
    if agg is None:
        agg = StreamingAggregator(_manifest_cells(store, manifest),
                                  metrics=metrics)
    agg.poll(store)

    workers = []
    for hb in read_heartbeats(store.heartbeat_dir):
        state = heartbeat_state(hb, now=now, expiry_s=expiry_s)
        workers.append({
            "worker": hb.get("worker", "?"),
            "state": state,
            "age_s": max(now - hb.get("updated_at", now), 0.0),
            "claimed": hb.get("claimed"),
            "done": hb.get("done", 0),
            "failed": hb.get("failed", 0),
            "rate_per_s": hb.get("rate_per_s", 0.0),
            "note": hb.get("note"),
        })

    running = stale_claims = 0
    claims = []
    for cell in manifest["cells"]:
        key = cell["key"]
        if key in agg.folded:
            continue
        claim = store.read_claim(key)
        if claim is None:
            continue
        expires = claim.get("expires_at")
        live = isinstance(expires, (int, float)) and now < expires
        running += live
        stale_claims += not live
        claims.append({
            "cell": cell["label"], "worker": claim.get("worker", "?"),
            "age_s": max(now - claim.get("claimed_at", now), 0.0),
            "expired": not live,
        })

    snap = agg.snapshot()
    snap.update({
        "name": manifest.get("name"),
        "pending": agg.total - agg.done - running,
        "running": running,
        "stale_claims": stale_claims,
        "workers": workers,
        "claims": claims,
        "now": now,
    })
    return snap


def render_watch(snap: Mapping[str, Any]) -> str:
    """Monospace watch table for one :func:`watch_snapshot`."""
    from ..analysis.tables import render_table
    lines = [f"campaign {snap['name']}: {snap['done']}/{snap['total']} done"
             f" ({snap['failed']} failed), {snap['running']} running, "
             f"{snap['pending']} pending"
             + (f", {snap['stale_claims']} stale claim(s)"
                if snap["stale_claims"] else "")]
    if snap["failures"]:
        detail = ", ".join(f"{kind}: {n}"
                           for kind, n in snap["failures"].items())
        lines.append(f"failures by kind: {detail}")
    if snap["workers"]:
        rows = [[w["worker"], w["state"], f"{w['age_s']:.0f}s",
                 w["claimed"] or "-", w["done"], w["failed"],
                 f"{w['rate_per_s']:.2f}", w["note"] or "-"]
                for w in snap["workers"]]
        lines.append("")
        lines.append(render_table(
            ("worker", "state", "age", "cell", "done", "failed", "cells/s",
             "last note"), rows, title="workers"))
    stale = [c for c in snap["claims"] if c["expired"]]
    if stale:
        lines.append("")
        for c in stale:
            lines.append(f"warning: stale claim on {c['cell']!r} held by "
                         f"{c['worker']} for {c['age_s']:.0f}s (stealable)")
    for field, groups in snap["axes"].items():
        rows = []
        for value, by_metric in groups.items():
            for metric, st in by_metric.items():
                rows.append([value, metric, st["n"], st["mean"], st["min"],
                             st["max"], st["std"]])
        if rows:
            lines.append("")
            lines.append(render_table(
                (field, "metric", "n", "mean", "min", "max", "std"), rows,
                title=f"axis: {field} (streaming, {snap['done']} cells in)"))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Prometheus serving

#: Prometheus text exposition content type (version 0.0.4).
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def build_metrics_text(directory: "str | os.PathLike", *,
                       agg: StreamingAggregator | None = None,
                       now: float | None = None,
                       expiry_s: float = DEFAULT_EXPIRY_S) -> str:
    """Prometheus text for a campaign directory's live state.

    The cell/failure/per-axis lines come from
    :meth:`CampaignReport.render_prometheus` -- the same pinned formatting
    the offline report uses, so scrape output is byte-stable for a given
    directory state.  Worker-liveness gauges are appended under
    ``repro_campaign_worker*``.
    """
    from ..campaign.aggregate import CampaignReport
    from ..obs.metrics import _prom_name, _prom_value
    snap = watch_snapshot(directory, agg=agg, now=now, expiry_s=expiry_s)
    report = CampaignReport(
        name=str(snap["name"]), total=snap["total"], done=snap["done"],
        failed=snap["failed"], failures=snap["failures"],
        metrics=tuple(snap["metrics"]), cells=[], axes=snap["axes"])
    lines = [report.render_prometheus().rstrip("\n")]
    esc = lambda s: str(s).replace("\\", r"\\").replace('"', r'\"')
    wname = _prom_name("repro_campaign_", "workers")
    lines.append(f"# TYPE {wname} gauge")
    for state in ("live", "stale", "exited"):
        n = sum(1 for w in snap["workers"] if w["state"] == state)
        lines.append(f'{wname}{{state="{state}"}} {_prom_value(n)}')
    if snap["workers"]:
        cname = _prom_name("repro_campaign_", "worker_cells")
        lines.append(f"# TYPE {cname} gauge")
        for w in snap["workers"]:
            for state in ("done", "failed"):
                lines.append(f'{cname}{{worker="{esc(w["worker"])}",'
                             f'state="{state}"}} {_prom_value(w[state])}')
        rname = _prom_name("repro_campaign_", "worker_rate_cells_per_s")
        lines.append(f"# TYPE {rname} gauge")
        for w in snap["workers"]:
            lines.append(f'{rname}{{worker="{esc(w["worker"])}"}} '
                         f'{_prom_value(w["rate_per_s"])}')
    return "\n".join(lines) + "\n"


def make_live_server(directory: "str | os.PathLike", *, port: int = 0,
                     host: str = "127.0.0.1",
                     expiry_s: float = DEFAULT_EXPIRY_S):
    """A ready-to-serve :class:`~http.server.ThreadingHTTPServer` exposing
    ``/metrics`` (Prometheus), ``/`` (the watch table) and ``/healthz``.

    The server keeps one :class:`StreamingAggregator` across scrapes (a
    lock serialises polls), so each request folds only newly landed
    cells.  ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.server_address``.
    """
    import threading
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    from ..campaign.store import CampaignStore
    store = CampaignStore(directory)
    manifest = store.read_manifest()
    if manifest is None:
        raise FileNotFoundError(
            f"no campaign manifest in {directory}; start one with "
            f"'repro campaign run SPEC --dir {directory}'")
    agg = StreamingAggregator(_manifest_cells(store, manifest))
    lock = threading.Lock()

    class Handler(BaseHTTPRequestHandler):
        def _send(self, body: bytes, content_type: str,
                  status: int = 200) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            try:
                if path == "/metrics":
                    with lock:
                        body = build_metrics_text(directory, agg=agg,
                                                  expiry_s=expiry_s)
                    self._send(body.encode(), PROM_CONTENT_TYPE)
                elif path == "/":
                    with lock:
                        snap = watch_snapshot(directory, agg=agg,
                                              expiry_s=expiry_s)
                    self._send((render_watch(snap) + "\n").encode(),
                               "text/plain; charset=utf-8")
                elif path == "/healthz":
                    self._send(b"ok\n", "text/plain; charset=utf-8")
                else:
                    self._send(b"not found\n",
                               "text/plain; charset=utf-8", status=404)
            except Exception as exc:  # pragma: no cover - defensive
                self._send(f"error: {exc}\n".encode(),
                           "text/plain; charset=utf-8", status=500)

        def log_message(self, *args):  # quiet: stderr is for progress
            pass

    return ThreadingHTTPServer((host, port), Handler)
