"""Trace-event vocabulary and the event record itself.

Every event names *one* causally meaningful step of a run.  The vocabulary
deliberately mirrors the paper's two control loops plus the substrate they
share:

========================  =================================================
Packet life cycle         :data:`PACKET_SEND`, :data:`PACKET_DROP`,
                          :data:`PACKET_ACK`, :data:`PACKET_RETX`
Transport adaptation      :data:`CWND_CHANGE`, :data:`PERIOD_ROLL`
Network state             :data:`QUEUE_DEPTH`
Network dynamics          :data:`FAULT_PHASE`, :data:`LINK_FAIL`,
                          :data:`LINK_RECOVER`
Application loop          :data:`CALLBACK_FIRED`, :data:`ADAPT_ACTION`
Coordination channel      :data:`ATTR_SENT`, :data:`ATTR_RECEIVED`,
                          :data:`COORD_ACTION`
========================  =================================================

:data:`ATTR_RECEIVED` events carry the attribute set the coordinator saw;
each :data:`COORD_ACTION` it produces carries ``attr_seq`` -- the sequence
number of that ``ATTR_RECEIVED`` event -- so the report's coordination audit
can pair every attribute exchange with the transport action it caused.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "PACKET_SEND", "PACKET_DROP", "PACKET_ACK", "PACKET_RETX",
    "CWND_CHANGE", "QUEUE_DEPTH", "CALLBACK_FIRED", "ATTR_SENT",
    "ATTR_RECEIVED", "COORD_ACTION", "ADAPT_ACTION", "PERIOD_ROLL",
    "FAULT_PHASE", "LINK_FAIL", "LINK_RECOVER",
    "FEC_REPAIR", "FEC_RECOVERED", "FRAME_ABANDONED",
    "EVENT_TYPES", "LAYERS", "TraceEvent",
]

PACKET_SEND = "PACKET_SEND"
PACKET_DROP = "PACKET_DROP"
PACKET_ACK = "PACKET_ACK"
PACKET_RETX = "PACKET_RETX"
CWND_CHANGE = "CWND_CHANGE"
QUEUE_DEPTH = "QUEUE_DEPTH"
CALLBACK_FIRED = "CALLBACK_FIRED"
ATTR_SENT = "ATTR_SENT"
ATTR_RECEIVED = "ATTR_RECEIVED"
COORD_ACTION = "COORD_ACTION"
ADAPT_ACTION = "ADAPT_ACTION"
PERIOD_ROLL = "PERIOD_ROLL"
FAULT_PHASE = "FAULT_PHASE"
LINK_FAIL = "LINK_FAIL"
LINK_RECOVER = "LINK_RECOVER"
# FEC repair tier (armed scenarios only; disarmed traces never carry these).
FEC_REPAIR = "FEC_REPAIR"
FEC_RECOVERED = "FEC_RECOVERED"
# Deadline-aware frame scheduling: a segment abandoned unsent because its
# frame's delivery deadline passed.
FRAME_ABANDONED = "FRAME_ABANDONED"

#: The closed vocabulary; sinks and the report validate against it.
EVENT_TYPES = frozenset({
    PACKET_SEND, PACKET_DROP, PACKET_ACK, PACKET_RETX, CWND_CHANGE,
    QUEUE_DEPTH, CALLBACK_FIRED, ATTR_SENT, ATTR_RECEIVED, COORD_ACTION,
    ADAPT_ACTION, PERIOD_ROLL, FAULT_PHASE, LINK_FAIL, LINK_RECOVER,
    FEC_REPAIR, FEC_RECOVERED, FRAME_ABANDONED,
})

#: Emitting layers, in stack order (used by the report for display only).
LAYERS = ("net", "transport", "coord", "app")


class TraceEvent:
    """One trace record: ``(seq, t, layer, etype, fields)``.

    ``seq`` is the per-bus emission counter -- the total order of events
    within one simulation, stable across worker counts because each scenario
    owns its bus.  ``fields`` is a flat mapping of event-specific data
    (JSON-serialisable values only); field names must not collide with the
    reserved keys ``seq``/``t``/``layer``/``event``, which :meth:`as_obj`
    flattens into the same namespace -- e.g. packet sequence numbers travel
    as ``pkt``, never ``seq``.
    """

    __slots__ = ("seq", "t", "layer", "etype", "fields")

    def __init__(self, seq: int, t: float, layer: str, etype: str,
                 fields: Mapping[str, Any]):
        self.seq = seq
        self.t = t
        self.layer = layer
        self.etype = etype
        self.fields = fields

    def as_obj(self) -> dict[str, Any]:
        """Flat JSON-ready dict; reserved keys first, fields merged in."""
        obj = {"seq": self.seq, "t": self.t, "layer": self.layer,
               "event": self.etype}
        obj.update(self.fields)
        return obj

    # __slots__ classes need explicit pickle support (workers ship events
    # back to the batch parent).
    def __getstate__(self):
        return (self.seq, self.t, self.layer, self.etype, self.fields)

    def __setstate__(self, state):
        self.seq, self.t, self.layer, self.etype, self.fields = state

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TraceEvent):
            return self.__getstate__() == other.__getstate__()
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"<TraceEvent #{self.seq} t={self.t:.6f} {self.etype} {inner}>"
