"""Persistent cross-run ledger + rolling-window regression sentinels.

Every completed scenario batch row, campaign and bench produces summary
metrics -- and until now they evaporated with the process (the one
exception, ``bench_perf.json``, is overwritten on every rerun and judged
against a single frozen baseline).  The ledger gives runs longitudinal
memory:

* :class:`RunLedger` -- an append-only JSONL file (``ledger.jsonl``
  under :data:`REPRO_LEDGER_DIR <LEDGER_ENV>`) where each line is one
  finished run: kind (``scenario``/``campaign``/``bench``), a caller
  key, config fingerprint, code salt, summary metrics and timings.
  Appends are a single ``O_APPEND`` write of one complete line, so
  concurrent writers (pool workers, parallel benches) interleave at line
  granularity and never interleave *within* a line; the reader skips a
  torn tail the same way the checkpoint journal does.  Replay is
  deterministic: reading a ledger back yields exactly the records that
  were appended, in append order.
* :func:`record_run` -- the armed-only convenience every producer calls:
  a no-op (one env lookup) unless ``REPRO_LEDGER_DIR`` is set, so
  disarmed paths stay byte-identical to pre-ledger behaviour.
* :func:`sentinel_verdicts` -- the regression sentinel: for each key,
  the newest run is compared against the **median of a rolling window**
  of its predecessors instead of one frozen baseline.  Direction is
  inferred from the metric name (``*_per_s``/``*_fps`` higher-better;
  ``*_pct``/``*_s``/``*_ns``/``*_ms`` lower-better; anything else is
  informational only) and each comparison yields a typed verdict:
  ``ok``, ``regression``, ``improved`` or ``insufficient-data``.

``repro history KEY`` and ``repro sentinel`` are the CLI front ends;
``benchmarks/check_regression.py`` runs the sentinel alongside the
static-baseline gate when a ledger is armed.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import socket
import time
import warnings
from typing import Any, Iterable, Mapping

from ..runner.hashing import code_salt

__all__ = [
    "LEDGER_ENV", "RunLedger", "ledger_dir", "ledger_enabled", "record_run",
    "metric_direction", "sentinel_verdicts", "render_sentinel",
    "render_history", "DEFAULT_WINDOW", "DEFAULT_TOLERANCE",
]

#: Environment variable naming the ledger directory; unset = disarmed.
LEDGER_ENV = "REPRO_LEDGER_DIR"

#: Rolling-window size the sentinel compares the newest run against.
DEFAULT_WINDOW = 5

#: Fractional drift beyond which a verdict stops being ``ok`` (0.10 =
#: 10%; well under the 20%-slowdown class of regression it must catch).
DEFAULT_TOLERANCE = 0.10

_warned_broken = False


def ledger_dir() -> str | None:
    """The armed ledger directory, or None when disarmed."""
    return os.environ.get(LEDGER_ENV) or None


def ledger_enabled() -> bool:
    return ledger_dir() is not None


class RunLedger:
    """Append-only JSONL record of finished runs (see module docstring)."""

    def __init__(self, root: "str | os.PathLike"):
        self.root = pathlib.Path(root)
        self.path = self.root / "ledger.jsonl"

    def append(self, *, kind: str, key: str,
               metrics: Mapping[str, Any],
               fingerprint: str | None = None,
               timings: Mapping[str, float] | None = None,
               t: float | None = None,
               host: str | None = None,
               salt: str | None = None) -> dict:
        """Append one run record; returns the record as written.

        ``t``/``host``/``salt`` default to wall clock, hostname and the
        package code salt -- injectable so tests can pin every byte.
        Only JSON-serialisable finite scalars survive into ``metrics``
        (the ledger is a trajectory store, not an artifact store).
        """
        record = {
            "v": 1,
            "kind": str(kind),
            "key": str(key),
            "t": float(t if t is not None else time.time()),
            "host": host if host is not None else socket.gethostname(),
            "code_salt": (salt if salt is not None else code_salt())[:16],
            "fingerprint": fingerprint,
            "metrics": _clean_metrics(metrics),
            "timings": _clean_metrics(timings or {}),
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        return record

    def read(self, *, key: str | None = None,
             kind: str | None = None) -> list[dict]:
        """All records (append order), optionally filtered; a torn or
        foreign tail line is skipped, never raised."""
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return []
        out: list[dict] = []
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or "key" not in record:
                continue
            if key is not None and record.get("key") != key:
                continue
            if kind is not None and record.get("kind") != kind:
                continue
            out.append(record)
        return out

    def keys(self, *, kind: str | None = None) -> list[str]:
        """Distinct record keys, first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.read(kind=kind):
            seen.setdefault(record["key"], None)
        return list(seen)


def _clean_metrics(metrics: Mapping[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for name, value in metrics.items():
        if isinstance(value, bool):
            out[str(name)] = value
        elif isinstance(value, (int, float)):
            out[str(name)] = value if math.isfinite(value) else repr(value)
        elif isinstance(value, str):
            out[str(name)] = value
    return out


def record_run(kind: str, key: str, metrics: Mapping[str, Any],
               **kw) -> dict | None:
    """Append to the armed ledger; silent no-op when disarmed.

    Producer-facing wrapper: an OSError (read-only filesystem, full
    disk) degrades to a one-time :class:`RuntimeWarning` and the run
    continues unledgered -- longitudinal memory must never fail the run
    it is remembering.
    """
    root = ledger_dir()
    if root is None:
        return None
    global _warned_broken
    try:
        return RunLedger(root).append(kind=kind, key=key, metrics=metrics,
                                      **kw)
    except OSError as exc:
        if not _warned_broken:
            _warned_broken = True
            warnings.warn(f"run ledger at {root} is not writable ({exc}); "
                          f"continuing without longitudinal records",
                          RuntimeWarning, stacklevel=2)
        return None


# ---------------------------------------------------------------------------
# sentinel


def metric_direction(name: str) -> str | None:
    """Which way is better for ``name``: ``higher``, ``lower`` or None
    (informational).  Order matters: ``*_per_s`` is a rate even though it
    ends in ``_s``."""
    if name.endswith(("_per_s", "_fps", "_bps", "_speedup")):
        return "higher"
    if name.endswith(("_pct", "_s", "_ns", "_ms", "_us")):
        return "lower"
    return None


def _median(values: "list[float]") -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def sentinel_verdicts(records: Iterable[Mapping[str, Any]], *,
                      window: int = DEFAULT_WINDOW,
                      tolerance: float = DEFAULT_TOLERANCE,
                      metrics: Iterable[str] | None = None) -> list[dict]:
    """Judge the newest record per key against its rolling window.

    ``records`` is a single key's (or several keys') ledger slice in
    append order.  Per key: the newest record is the candidate, the up to
    ``window`` records before it are the reference pool, and every
    directional metric of the candidate is compared against the pool
    median with ``tolerance`` fractional slack.  Returns one verdict dict
    per (key, metric): ``{key, metric, verdict, newest, baseline,
    window_n, delta_pct}``; a key with no history yields a single
    ``insufficient-data`` verdict.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window!r}")
    if tolerance < 0:
        raise ValueError(f"tolerance cannot be negative, got {tolerance!r}")
    wanted = set(metrics) if metrics is not None else None
    by_key: dict[str, list[Mapping[str, Any]]] = {}
    for record in records:
        by_key.setdefault(record["key"], []).append(record)

    verdicts: list[dict] = []
    for key, history in by_key.items():
        newest = history[-1]
        pool = history[max(0, len(history) - 1 - window):-1]
        if not pool:
            verdicts.append({"key": key, "metric": None,
                             "verdict": "insufficient-data",
                             "newest": None, "baseline": None,
                             "window_n": 0, "delta_pct": None})
            continue
        for name in sorted(newest.get("metrics", {})):
            if wanted is not None and name not in wanted:
                continue
            direction = metric_direction(name)
            if direction is None:
                continue
            value = newest["metrics"][name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            prior = [r["metrics"][name] for r in pool
                     if isinstance(r.get("metrics", {}).get(name),
                                   (int, float))
                     and not isinstance(r["metrics"][name], bool)]
            if not prior:
                continue
            baseline = _median(prior)
            if baseline == 0:
                continue
            delta = (value - baseline) / abs(baseline)
            worse = -delta if direction == "higher" else delta
            if worse > tolerance:
                verdict = "regression"
            elif worse < -tolerance:
                verdict = "improved"
            else:
                verdict = "ok"
            verdicts.append({"key": key, "metric": name, "verdict": verdict,
                             "newest": value, "baseline": baseline,
                             "window_n": len(prior),
                             "delta_pct": round(100.0 * delta, 2)})
    return verdicts


def render_sentinel(verdicts: "list[dict]") -> str:
    """Monospace verdict table, regressions first."""
    from ..analysis.tables import render_table
    order = {"regression": 0, "improved": 1, "ok": 2,
             "insufficient-data": 3}
    rows = []
    for v in sorted(verdicts, key=lambda v: (order.get(v["verdict"], 9),
                                             v["key"], v["metric"] or "")):
        rows.append([v["key"], v["metric"] or "-", v["verdict"],
                     "-" if v["newest"] is None else f"{v['newest']:g}",
                     "-" if v["baseline"] is None else f"{v['baseline']:g}",
                     v["window_n"],
                     "-" if v["delta_pct"] is None
                     else f"{v['delta_pct']:+.1f}%"])
    n_reg = sum(1 for v in verdicts if v["verdict"] == "regression")
    title = (f"sentinel: {len(verdicts)} verdict(s), "
             f"{n_reg} regression(s)")
    if not rows:
        return title + " (no ledger history)"
    return render_table(("key", "metric", "verdict", "newest", "baseline",
                         "window", "delta"), rows, title=title)


# ---------------------------------------------------------------------------
# history

_SPARK = "._-=*#%@"


def _sparkline(values: "list[float]") -> str:
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK[0] * len(values)
    span = hi - lo
    return "".join(_SPARK[min(int((v - lo) / span * len(_SPARK)),
                              len(_SPARK) - 1)] for v in values)


def render_history(records: "list[Mapping[str, Any]]", *,
                   metrics: Iterable[str] | None = None,
                   limit: int | None = None) -> str:
    """Metric trajectories across a key's ledger records.

    One table row per run (newest last) plus a per-metric trend footer
    with an ASCII sparkline -- enough to see a trajectory in a terminal
    without plotting dependencies.
    """
    from ..analysis.tables import render_table
    if not records:
        return "no ledger records (is REPRO_LEDGER_DIR set and populated?)"
    if limit is not None and limit > 0:
        records = records[-limit:]
    if metrics is None:
        chosen = [name for name in sorted(records[-1].get("metrics", {}))
                  if isinstance(records[-1]["metrics"][name], (int, float))
                  and not isinstance(records[-1]["metrics"][name], bool)
                  and metric_direction(name) is not None]
        if not chosen:  # fall back to any numeric metric at all
            chosen = [name for name in sorted(records[-1].get("metrics", {}))
                      if isinstance(records[-1]["metrics"][name],
                                    (int, float))][:6]
        chosen = chosen[:6]
    else:
        chosen = list(metrics)
    rows = []
    for i, record in enumerate(records):
        when = time.strftime("%Y-%m-%d %H:%M:%S",
                             time.gmtime(record.get("t", 0.0)))
        row = [i, when, record.get("code_salt", "")[:8]]
        for name in chosen:
            value = record.get("metrics", {}).get(name)
            row.append("-" if not isinstance(value, (int, float))
                       or isinstance(value, bool) else f"{value:g}")
        rows.append(row)
    key = records[-1].get("key", "?")
    out = [render_table(("run", "when (utc)", "salt", *chosen), rows,
                        title=f"history: {key} ({len(records)} run(s))")]
    trends = []
    for name in chosen:
        series = [r["metrics"][name] for r in records
                  if isinstance(r.get("metrics", {}).get(name), (int, float))
                  and not isinstance(r["metrics"][name], bool)]
        if len(series) < 2:
            continue
        first, last = series[0], series[-1]
        delta = ((last - first) / abs(first) * 100.0) if first else 0.0
        trends.append(f"  {name}: {first:g} -> {last:g} ({delta:+.1f}%)  "
                      f"{_sparkline(series)}")
    if trends:
        out.append("")
        out.append("trend (oldest -> newest):")
        out.extend(trends)
    return "\n".join(out)
