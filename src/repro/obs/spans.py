"""Hierarchical causal spans: scenario -> flow -> frame -> datagram attempt.

The paper's whole argument is causal -- an application attribute change
propagates into transport coordination actions, which decide each datagram's
fate (deliver / discard / re-inflate), which determines frame timeliness --
and this module records exactly that chain.  Armed via
``ScenarioConfig(spans=True)``, a :class:`SpanRecorder` links every
application frame to:

* each of its datagram segments and every transmission / retransmission
  attempt (with the skip re-inflation flag),
* every queue/wire/down drop the segment suffered on the way,
* the coordination episodes (attribute exchange -> coordination actions,
  stall degrade/recover) running concurrently,
* the segment's final fate -- delivered, recovered (rebuilt by the FEC
  repair tier without a retransmission round trip), skipped, locally
  discarded, expired (abandoned unsent past its delivery deadline), or
  still pending at run end,

and derives a per-frame latency decomposition (serialization / queueing /
propagation / retransmission-wait) against the nominal dumbbell path.

Design constraints mirror the rest of :mod:`repro.obs`:

1. **Passive.**  Hooks only record; the recorder never schedules events,
   draws randomness or touches transport state, so an armed run's summary
   is bit-identical to a disarmed one (``spans`` *is* part of the config
   and cache key, but behaviour does not depend on it).
2. **Disarmed cost is one attribute check.**  ``spans`` is a ``None`` class
   attribute on the sender/receiver; hook points read it once.
3. **Determinism.**  Everything is keyed on simulation-derived values
   (frame ids, ``(flow_id, seq)``, the sim clock), so :meth:`finalize`'s
   output is a pure function of the ``ScenarioConfig`` -- byte-identical
   across ``--jobs N``, cache hit/miss, and ``burst=True`` (all hook sites
   sit on paths the burst fast path degrades out of or never fuses).
4. **Serialisable.**  :meth:`finalize` returns plain dicts/lists that ride
   ``ScenarioResult.spans`` through pickling and the persistent cache.
"""

from __future__ import annotations

from typing import Any

from ..sim.packet import HEADER_BYTES, Packet

__all__ = ["SpanRecorder", "FRAME_OUTCOMES"]

#: Closed vocabulary of frame outcomes (see :meth:`SpanRecorder.finalize`).
FRAME_OUTCOMES = ("delivered", "degraded", "discarded", "abandoned",
                  "pending")


class SpanRecorder:
    """Collects the causal lineage of one scenario's application flow.

    Wire-up (done by ``run_scenario`` when ``cfg.spans`` is set):

    * construct right after the :class:`~repro.sim.engine.Simulator` and
      assign ``sim.spans = recorder`` so links bind their drop hooks,
    * :meth:`watch_network` after the topology exists (captures the nominal
      path for the latency decomposition),
    * :meth:`watch_flow` after the connection exists (installs the
      sender/receiver hooks),
    * :meth:`finalize` after the run loop.
    """

    def __init__(self, sim, *, scenario: str = ""):
        self.sim = sim
        self.scenario = scenario
        self._frames: dict[int, dict[str, Any]] = {}
        self._order: list[int] = []
        # Untransmitted segments keyed by packet identity; once a segment
        # is first transmitted it moves to the (flow_id, seq) map, which
        # both the retransmission and the receiver-side hooks resolve.
        self._by_pkt: dict[int, dict[str, Any]] = {}
        self._by_key: dict[tuple[int, int], dict[str, Any]] = {}
        self.episodes: list[dict[str, Any]] = []
        self.actions: list[dict[str, Any]] = []
        self._path_hops: list[tuple[float, float]] = []
        self._flow_id: int | None = None
        self._conn = None

    # ------------------------------------------------------------------
    # Wire-up
    # ------------------------------------------------------------------
    def watch_network(self, net) -> None:
        """Capture the nominal forward path (sender access -> bottleneck ->
        receiver access) for the latency decomposition.  Mid-run bandwidth
        ramps are deliberately ignored: the decomposition is a model
        against the configured path, not a measurement."""
        self._path_hops = [
            (net.ACCESS_BPS, net.ACCESS_DELAY_S),
            (net.forward.bandwidth_bps, net.forward.delay_s),
            (net.ACCESS_BPS, net.ACCESS_DELAY_S),
        ]

    def watch_flow(self, conn) -> None:
        """Install the sender/receiver hook references on ``conn``."""
        self._conn = conn
        self._flow_id = conn.sender.flow_id
        conn.sender.spans = self
        conn.receiver.spans = self

    # ------------------------------------------------------------------
    # Sender-side hooks (see repro.transport.base)
    # ------------------------------------------------------------------
    def on_segment(self, pkt: Packet) -> None:
        """A segment of an application frame entered the send queue."""
        fid = pkt.frame_id
        if fid < 0:
            return
        fr = self._frames.get(fid)
        if fr is None:
            fr = {"frame_id": fid, "t_submit": self.sim._now, "bytes": 0,
                  "msgs": 0, "segments": []}
            self._frames[fid] = fr
            self._order.append(fid)
        seg = {"size": pkt.size, "marked": pkt.marked, "tagged": pkt.tagged,
               "last": pkt.last_of_frame, "seq": None, "fate": "pending",
               "t_done": None, "attempts": [], "drops": []}
        fr["segments"].append(seg)
        fr["bytes"] += pkt.size
        if pkt.last_of_frame:
            fr["msgs"] += 1
        self._by_pkt[id(pkt)] = seg

    def on_discard(self, pkt: Packet) -> None:
        """Conflict-scheme local discard: the segment never got a sequence
        number and never touched the network."""
        seg = self._by_pkt.pop(id(pkt), None)
        if seg is None:
            return
        seg["fate"] = "discarded"
        seg["t_done"] = self.sim._now

    def on_expire(self, pkt: Packet) -> None:
        """Deadline-aware scheduling abandoned the segment unsent: its
        frame's delivery deadline passed while it queued.  Like a local
        discard, it never got a sequence number."""
        seg = self._by_pkt.pop(id(pkt), None)
        if seg is None:
            return
        seg["fate"] = "expired"
        seg["t_done"] = self.sim._now

    def on_transmit(self, pkt: Packet) -> None:
        """First transmission or retransmission of a segment."""
        key = (pkt.flow_id, pkt.seq)
        seg = self._by_key.get(key)
        if seg is None:
            seg = self._by_pkt.pop(id(pkt), None)
            if seg is None:
                return
            seg["seq"] = pkt.seq
            self._by_key[key] = seg
            kind = "tx"
        else:
            kind = "retx"
        seg["attempts"].append(
            {"t": self.sim._now, "kind": kind, "skip": pkt.skip})

    # ------------------------------------------------------------------
    # Network hooks (links bind these through ``sim.spans``)
    # ------------------------------------------------------------------
    def on_drop(self, pkt: Packet, link: str, kind: str) -> None:
        """A wire copy of a tracked segment was dropped en route."""
        if pkt.frame_id < 0:
            return
        seg = self._by_key.get((pkt.flow_id, pkt.seq))
        if seg is None:
            return
        seg["drops"].append({"t": self.sim._now, "link": link, "kind": kind})

    # ------------------------------------------------------------------
    # Receiver-side hooks
    # ------------------------------------------------------------------
    def on_deliver(self, pkt: Packet) -> None:
        seg = self._by_key.get((pkt.flow_id, pkt.seq))
        if seg is None or seg["fate"] != "pending":
            return
        seg["fate"] = "delivered"
        seg["t_done"] = self.sim._now

    def on_recover(self, pkt: Packet) -> None:
        """The FEC decoder rebuilt the segment from a repair -- delivery
        without a retransmission round trip.  Fired *before* the rebuilt
        packet is injected through the receive path, so the subsequent
        ``on_deliver`` sees a non-pending fate and leaves it alone."""
        seg = self._by_key.get((pkt.flow_id, pkt.seq))
        if seg is None or seg["fate"] != "pending":
            return
        seg["fate"] = "recovered"
        seg["t_done"] = self.sim._now

    def on_skip(self, pkt: Packet) -> None:
        """A skip (hole-fill) segment consumed the sequence number: the
        original payload was abandoned by adaptive reliability."""
        seg = self._by_key.get((pkt.flow_id, pkt.seq))
        if seg is None or seg["fate"] != "pending":
            return
        seg["fate"] = "skipped"
        seg["t_done"] = self.sim._now

    # ------------------------------------------------------------------
    # Coordination hooks (see repro.core.coordination)
    # ------------------------------------------------------------------
    def on_attrs(self, attrs: dict[str, Any]) -> int:
        """An attribute set reached the coordinator; opens an episode and
        returns its id for pairing with the actions it causes."""
        ep = {"id": len(self.episodes), "t": self.sim._now, "attrs": attrs}
        self.episodes.append(ep)
        return ep["id"]

    def on_action(self, episode: int | None, action: str,
                  **fields: Any) -> None:
        """A coordination action fired; ``episode`` pairs it with the
        attribute exchange that caused it (None for spontaneous actions
        such as stall degrade/recover)."""
        rec = {"t": self.sim._now, "action": action, "episode": episode}
        rec.update(fields)
        self.actions.append(rec)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def _classify(self, fr: dict[str, Any]) -> str:
        segs = fr["segments"]
        n = len(segs)
        # A recovered segment reached the application exactly like a
        # delivered one (just via the repair tier); expired segments were
        # abandoned unsent, like skips without the sequence number.
        delivered = sum(1 for s in segs
                        if s["fate"] in ("delivered", "recovered"))
        discarded = sum(1 for s in segs if s["fate"] == "discarded")
        skipped = sum(1 for s in segs
                      if s["fate"] in ("skipped", "expired"))
        if delivered == n:
            return "delivered"
        if delivered > 0:
            return "degraded"
        if discarded == n:
            return "discarded"
        if discarded + skipped == n:
            return "abandoned"
        return "pending"

    def _decompose(self, fr: dict[str, Any]) -> dict[str, float] | None:
        """Per-frame latency decomposition over the delivered segments.

        ``total`` is submit-to-last-delivery.  Serialization charges each
        delivered segment's wire bytes on every hop (store-and-forward);
        propagation is the one-way path delay (paid once -- segments
        pipeline); retransmission-wait is the span from each segment's
        first to last transmission attempt; queueing absorbs the residual
        (clamped at zero), which on the dumbbell is bottleneck queueing
        delay plus pipelining slack.
        """
        done = [s for s in fr["segments"]
                if s["fate"] in ("delivered", "recovered")
                and s["t_done"] is not None]
        if not done or not self._path_hops:
            return None
        t_done = max(s["t_done"] for s in done)
        total = t_done - fr["t_submit"]
        inv_bw = sum(8.0 / bw for bw, _d in self._path_hops)
        prop = sum(d for _bw, d in self._path_hops)
        ser = sum((s["size"] + HEADER_BYTES) * inv_bw for s in done)
        retx_wait = 0.0
        for s in done:
            at = s["attempts"]
            if len(at) > 1:
                retx_wait += at[-1]["t"] - at[0]["t"]
        queueing = max(total - ser - prop - retx_wait, 0.0)
        return {"total_s": total, "serialization_s": ser,
                "propagation_s": prop, "retx_wait_s": retx_wait,
                "queueing_s": queueing}

    def finalize(self) -> dict[str, Any]:
        """Freeze the lineage into a plain-data artifact.

        ``frames_with_delivery`` is the reconciliation anchor: it must
        equal ``DeliveryLog.frames_delivered()`` exactly (a frame counts
        once it has at least one delivered payload segment -- the same
        predicate the delivery log applies).
        """
        frames = []
        counts = {k: 0 for k in FRAME_OUTCOMES}
        frames_with_delivery = 0
        for fid in sorted(self._frames):
            fr = self._frames[fid]
            outcome = self._classify(fr)
            counts[outcome] += 1
            if any(s["fate"] in ("delivered", "recovered")
                   for s in fr["segments"]):
                frames_with_delivery += 1
            done = [s["t_done"] for s in fr["segments"]
                    if s["t_done"] is not None]
            frames.append({
                "frame_id": fid,
                "t_submit": fr["t_submit"],
                "bytes": fr["bytes"],
                "msgs": fr["msgs"],
                "outcome": outcome,
                "t_done": max(done) if done else None,
                "latency": self._decompose(fr),
                "segments": fr["segments"],
            })
        return {
            "scenario": self.scenario,
            "flow": self._flow_id,
            "path": {"hops": [[bw, d] for bw, d in self._path_hops]},
            "frames": frames,
            "episodes": self.episodes,
            "actions": self.actions,
            "counts": counts,
            "frames_with_delivery": frames_with_delivery,
        }
