"""The trace bus: where every instrumented component publishes events.

Design constraints, in order:

1. **The disabled path must be nearly free.**  Every hook point in the
   simulator's hot loops is written as::

       tr = self.trace
       if tr.enabled:
           tr.emit(...)

   With tracing off, ``trace`` is the shared :data:`NULL_BUS` whose
   ``enabled`` is a class attribute ``False`` -- the hook costs one
   attribute check and a branch, nothing is allocated, and ``emit`` is
   never called.  The micro-bench ``bench_trace_overhead`` gates this.

2. **Determinism.**  The bus draws its timestamps from the simulation
   clock (never the wall clock) and numbers events with a per-bus counter,
   so a scenario's event stream is a pure function of its config -- the
   property the jobs=1 == jobs=N trace test pins down.

3. **Serialisability.**  Results that hold a bus (via components that
   cached it) must still pickle for the worker pool and the persistent
   cache.  A pickled :class:`TraceBus` comes back *inert*: disabled, no
   sinks, no simulator reference -- the events themselves travel separately
   as the worker's collected list.
"""

from __future__ import annotations

from typing import Any

from .events import TraceEvent

__all__ = ["TraceBus", "NullBus", "NULL_BUS"]


class NullBus:
    """Null object for the disabled path.

    ``enabled`` is a *class* attribute so the hook-point check compiles to
    a plain attribute load; ``emit`` exists only for code that wants to
    emit unconditionally (it does nothing and allocates nothing).
    """

    __slots__ = ()
    enabled = False

    def emit(self, layer: str, etype: str, **fields: Any) -> int:
        return -1

    def __reduce__(self):
        return (_null_bus, ())  # preserve the singleton across pickling

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullBus>"


#: Process-wide null bus; ``Simulator`` attaches it by default.
NULL_BUS = NullBus()


def _null_bus() -> NullBus:
    return NULL_BUS


class TraceBus:
    """Enabled trace bus bound to one simulator.

    ``emit`` stamps the event with the simulation clock and a monotonically
    increasing sequence number, fans it out to every sink, and returns the
    sequence number so callers can correlate follow-up events (the
    ``ATTR_RECEIVED`` -> ``COORD_ACTION`` pairing the audit relies on).
    """

    def __init__(self, sim, sinks=()) -> None:
        self.enabled = True
        self._sim = sim
        self._seq = 0
        self.sinks = list(sinks)

    def emit(self, layer: str, etype: str, **fields: Any) -> int:
        seq = self._seq
        self._seq = seq + 1
        ev = TraceEvent(seq, self._sim._now, layer, etype, fields)
        for sink in self.sinks:
            sink.append(ev)
        return seq

    @property
    def events_emitted(self) -> int:
        return self._seq

    # -- pickling: come back inert (see module docstring) -----------------
    def __getstate__(self):
        return {"enabled": False, "_sim": None, "_seq": self._seq,
                "sinks": []}

    def __setstate__(self, state):
        self.__dict__.update(state)
