"""Deterministic self-profiler for the simulation engine.

Answers the ROADMAP question "where does engine time actually go?" without
ever touching the stock hot loop: like
:class:`~repro.invariants.engine.CheckedSimulator`, profiling swaps in a
:class:`Simulator` subclass whose ``run()`` attributes every dispatched
event to its callback (per-event-type counts plus wall-clock time), so
the unprofiled engine stays byte-identical and disarmed overhead is zero
by construction.

Two kinds of numbers come out, with very different contracts:

* **event counts** are a pure function of the scenario config (the event
  sequence is deterministic), so tests may assert on them exactly;
* **wall-clock attributions** (per-callback and the coarse setup/run/
  collect phase timers) are *advisory* -- they vary with host load and are
  deliberately excluded from cache keys, summaries and every determinism
  oracle.

``repro profile <scenario-args>`` renders both.
"""

from __future__ import annotations

from heapq import heappop
from time import perf_counter
from typing import Any

from ..analysis.tables import render_table
from ..sim.engine import SimulationError, Simulator, callback_label

__all__ = ["EngineProfile", "ProfiledSimulator", "profile_scenario",
           "render_profile"]


class EngineProfile:
    """Per-callback event counts and wall-time attribution for one run.

    ``event_counts``/``events_fired`` are config-deterministic;
    ``event_wall_s``/``phase_s`` are advisory wall-clock measurements.
    """

    def __init__(self) -> None:
        self.event_counts: dict[str, int] = {}
        self.event_wall_s: dict[str, float] = {}
        self.events_fired = 0
        self.phase_s: dict[str, float] = {}

    # ------------------------------------------------------------------
    def phase(self, name: str, seconds: float) -> None:
        """Record (accumulate) one coarse phase timer."""
        self.phase_s[name] = self.phase_s.get(name, 0.0) + seconds

    def counts(self) -> dict[str, int]:
        """Event counts keyed by callback label, sorted by key (the
        deterministic half -- safe to assert on)."""
        return {k: self.event_counts[k] for k in sorted(self.event_counts)}

    def total_wall_s(self) -> float:
        return sum(self.event_wall_s.values())

    def as_dict(self) -> dict[str, Any]:
        return {"events_fired": self.events_fired,
                "event_counts": self.counts(),
                "event_wall_s": {k: self.event_wall_s[k]
                                 for k in sorted(self.event_wall_s)},
                "phase_s": dict(self.phase_s)}


class ProfiledSimulator(Simulator):
    """Drop-in :class:`Simulator` whose run loop attributes every event.

    Scheduling, cancellation and compaction are inherited unchanged, so a
    profiled run fires the exact same event sequence as a stock one; the
    override only counts and times.
    """

    def __init__(self, profile: EngineProfile | None = None) -> None:
        super().__init__()
        self.profile = profile if profile is not None else EngineProfile()

    def run(self, until: float | None = None, max_events: int | None = None
            ) -> int:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heappop
        fired = 0
        prof = self.profile
        counts = prof.event_counts
        walls = prof.event_wall_s
        clock = perf_counter
        try:
            while heap:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                entry = heap[0]
                ev = entry[3]
                if not ev._alive:
                    pop(heap)
                    self._dead -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                pop(heap)
                self._now = time
                ev._alive = False
                label = callback_label(ev.fn)
                t0 = clock()
                ev.fn(*ev.args)
                walls[label] = walls.get(label, 0.0) + (clock() - t0)
                counts[label] = counts.get(label, 0) + 1
                fired += 1
        finally:
            self._running = False
        prof.events_fired += fired
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return fired


def profile_scenario(cfg) -> "tuple[Any, EngineProfile]":
    """Run one scenario on a :class:`ProfiledSimulator`; returns
    ``(ScenarioResult, EngineProfile)``.

    Always runs fresh and in-process (a cached result has no events left
    to profile).  Mutually exclusive with armed invariants -- both
    features claim the engine run loop by subclassing.
    """
    from ..experiments.common import run_scenario
    profile = EngineProfile()
    res = run_scenario(cfg, profile=profile)
    return res, profile


def render_profile(profile: EngineProfile, *, top: int | None = 20) -> str:
    """Table of per-callback counts/wall time plus the phase timers.

    Rows are ordered by event count (descending, then label) -- a
    deterministic order -- with wall-time columns explicitly advisory.
    """
    total_wall = profile.total_wall_s()
    items = sorted(profile.event_counts.items(),
                   key=lambda kv: (-kv[1], kv[0]))
    shown = items if top is None else items[:top]
    rows = []
    for label, count in shown:
        wall = profile.event_wall_s.get(label, 0.0)
        pct = 100.0 * wall / total_wall if total_wall > 0 else 0.0
        rows.append([label, count, f"{wall * 1e3:.2f}", f"{pct:.1f}"])
    parts = [render_table(
        ["callback", "events", "wall ms*", "wall %*"], rows,
        title=(f"Engine profile: {profile.events_fired} events, "
               f"{total_wall * 1e3:.1f} ms in callbacks "
               f"({len(items)} callback types"
               + (f", top {len(shown)} shown" if len(shown) < len(items)
                  else "") + ")"))]
    if profile.phase_s:
        phase_rows = [[name, f"{profile.phase_s[name] * 1e3:.2f}"]
                      for name in sorted(profile.phase_s)]
        parts.append("")
        parts.append(render_table(["phase", "wall ms*"], phase_rows,
                                  title="Phases"))
    parts.append("")
    parts.append("* wall-clock columns are advisory (host-load dependent); "
                 "event counts are config-deterministic.")
    return "\n".join(parts)
