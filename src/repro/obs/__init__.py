"""Observability subsystem: trace bus, metrics registry, sinks and reports.

The paper's argument is causal -- "loss spike -> callback fired ->
``ADAPT_WHEN``/``ADAPT_COND`` sent -> coordinator re-inflated cwnd" -- yet
summary numbers alone cannot show that sequence for a given run.  This
package provides the run-level evidence chain:

* :mod:`.events` -- typed, ``__slots__`` trace events and the event-type
  vocabulary (packet life cycle, window changes, callback/attribute flow,
  coordination actions).
* :mod:`.bus` -- the per-simulation :class:`~repro.obs.bus.TraceBus` and the
  :data:`~repro.obs.bus.NULL_BUS` null object; with tracing disabled every
  hook point costs exactly one attribute check.
* :mod:`.sinks` -- JSONL writer (gzip capable, deterministic ordering so
  ``jobs=1`` and ``jobs=N`` produce identical files), bounded ring buffer
  for tests, and the batch trace-file writer with cache-aware run headers.
* :mod:`.metrics` -- counters/gauges/bounded-reservoir histograms rolled
  per scenario into ``ScenarioResult.summary`` (``obs_*`` keys); survives
  ``detach()`` and the persistent runner cache.
* :mod:`.report` -- the ``repro report`` renderers: per-run adaptation
  timeline and the coordination audit pairing every ``ADAPT_*`` attribute
  exchange with the transport action it produced.
* :mod:`.telemetry` -- sampled per-flow/queue/link time series
  (``ScenarioConfig(telemetry=...)``) with bounded M4-style downsampling.
* :mod:`.profiler` -- the engine self-profiler behind ``repro profile``.
* :mod:`.compare` -- the ``repro compare`` run-diff tooling.
* :mod:`.flight` -- the always-on bounded flight recorder whose dump is
  attached to every result and failure (``repro forensics``).
* :mod:`.spans` -- causal frame-lineage spans linking application frames
  to datagram attempts, drops and coordination episodes
  (``ScenarioConfig(spans=True)``, ``repro lineage``).
"""

from .bus import NULL_BUS, NullBus, TraceBus
from .events import (ADAPT_ACTION, ATTR_RECEIVED, ATTR_SENT, CALLBACK_FIRED,
                     COORD_ACTION, CWND_CHANGE, EVENT_TYPES, FEC_RECOVERED,
                     FEC_REPAIR, FRAME_ABANDONED, PACKET_ACK, PACKET_DROP,
                     PACKET_RETX, PACKET_SEND, PERIOD_ROLL, QUEUE_DEPTH,
                     TraceEvent)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      collect_scenario_metrics)
from .sinks import JsonlTraceSink, RingBufferSink, read_trace, write_trace
# Imported after .bus: telemetry reaches repro.invariants, whose checked
# engine imports repro.sim.engine, which imports .bus -- the order here
# keeps that cycle resolvable.
from .compare import ComparisonReport, compare_artifacts
from .flight import (DEFAULT_CAPACITY, FlightRecorder, first_divergence,
                     flight_from_env, render_flight)
from .profiler import EngineProfile, ProfiledSimulator, profile_scenario
from .spans import FRAME_OUTCOMES, SpanRecorder
from .telemetry import Series, Telemetry, TelemetryConfig, TelemetryRecorder

__all__ = [
    "TraceEvent", "EVENT_TYPES",
    "PACKET_SEND", "PACKET_DROP", "PACKET_ACK", "PACKET_RETX",
    "CWND_CHANGE", "QUEUE_DEPTH", "CALLBACK_FIRED", "ATTR_SENT",
    "ATTR_RECEIVED", "COORD_ACTION", "ADAPT_ACTION", "PERIOD_ROLL",
    "FEC_REPAIR", "FEC_RECOVERED", "FRAME_ABANDONED",
    "TraceBus", "NullBus", "NULL_BUS",
    "JsonlTraceSink", "RingBufferSink", "write_trace", "read_trace",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "collect_scenario_metrics",
    "TelemetryConfig", "Telemetry", "TelemetryRecorder", "Series",
    "EngineProfile", "ProfiledSimulator", "profile_scenario",
    "ComparisonReport", "compare_artifacts",
    "FlightRecorder", "flight_from_env", "first_divergence",
    "render_flight", "DEFAULT_CAPACITY",
    "SpanRecorder", "FRAME_OUTCOMES",
]
