"""Always-on bounded flight recorder: the last N causal events of a run.

A failed or divergent scenario used to leave behind only a traceback; the
trace bus captures everything but is opt-in (and disables the burst fast
path), so the one run you actually needed evidence from never had it armed.
The flight recorder closes that gap: a deterministic, O(1)-append ring of
the last :data:`DEFAULT_CAPACITY` *cold-path* events -- retransmissions,
RTOs, stall transitions, coordination actions, drops, fault phases,
invariant violations -- that every scenario keeps by default.

Design constraints, in order:

1. **Near-zero disarmed delta, tiny armed delta.**  Hook points follow the
   telemetry idiom::

       fl = self.flight
       if fl is not None:
           fl.note(...)

   ``flight`` is ``None`` by default (class attribute), so a disarmed run
   pays one attribute check.  Armed, each note is a single ``deque.append``
   of a small tuple, and notes sit only on cold paths (per adaptation, per
   retransmission, per drop -- never per packet send/ack), which keeps the
   armed cost inside the ``flight_overhead_pct_max`` ceiling.

2. **Determinism.**  Timestamps come from the simulation clock and event
   ids from a monotone per-recorder counter that survives ring eviction, so
   the dump is a pure function of the ``ScenarioConfig`` -- byte-identical
   across ``--jobs N``, cache hit/miss, and ``burst=True`` -- and a
   first-divergence id between two runs of the same config is meaningful.

3. **Serialisability.**  :meth:`FlightRecorder.dump` returns plain dicts
   and lists; the dump rides ``ScenarioResult``/``FailedResult`` through
   pickling, the worker pipe and the persistent cache unchanged.

``REPRO_FLIGHT`` controls the recorder globally: unset or empty keeps the
default capacity, an integer overrides it, and ``0`` disables recording
entirely (debugging aid only -- dumps are part of the result artifact).
"""

from __future__ import annotations

import os
from collections import deque
from typing import Any, Mapping

__all__ = [
    "FlightRecorder", "flight_from_env", "first_divergence",
    "render_flight", "DEFAULT_CAPACITY",
]

#: Default ring capacity: enough to hold the last few coordination periods
#: of a congested run without letting dumps dominate result pickles.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Bounded ring of the last N engine/transport events.

    The recorder is created before the simulator (so a crash during setup
    still yields a dump) and bound to it with :meth:`bind`; until then
    notes carry ``t=0.0``.  It deliberately has no sinks, no filtering and
    no schema beyond ``(id, t, layer, event, fields)`` -- it is a black
    box, not a trace.
    """

    __slots__ = ("capacity", "_ring", "_next_id", "_sim")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self._next_id = 0
        self._sim = None

    def bind(self, sim) -> None:
        """Attach the simulation clock (idempotent, cheap)."""
        self._sim = sim

    def note(self, layer: str, etype: str, **fields: Any) -> int:
        """Append one event; returns its monotone id.  O(1)."""
        i = self._next_id
        self._next_id = i + 1
        sim = self._sim
        self._ring.append(
            (i, sim._now if sim is not None else 0.0, layer, etype, fields))
        return i

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def events_noted(self) -> int:
        """Total notes ever taken (>= len(ring); ids run 0..noted-1)."""
        return self._next_id

    def dump(self) -> dict[str, Any]:
        """Plain-data snapshot of the ring, oldest event first."""
        return {
            "capacity": self.capacity,
            "events_noted": self._next_id,
            "events": [
                {"id": i, "t": t, "layer": layer, "event": etype, **f}
                for (i, t, layer, etype, f) in self._ring
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlightRecorder {len(self._ring)}/{self.capacity} "
                f"noted={self._next_id}>")


def flight_from_env() -> FlightRecorder | None:
    """Build the per-run recorder according to ``REPRO_FLIGHT``.

    Unset/empty -> default capacity; ``0`` -> disabled (returns None);
    any other integer -> that capacity.  Invalid values fall back to the
    default rather than killing the run.
    """
    raw = os.environ.get("REPRO_FLIGHT", "").strip()
    if not raw:
        return FlightRecorder()
    try:
        cap = int(raw)
    except ValueError:
        return FlightRecorder()
    if cap == 0:
        return None
    return FlightRecorder(capacity=cap)


def first_divergence(a: Mapping[str, Any] | None,
                     b: Mapping[str, Any] | None) -> int | None:
    """First event id at which two flight dumps disagree, or None.

    Dumps from two runs of the same config share the monotone id space, so
    events are aligned by id (robust to ring eviction when the two rings
    hold different windows).  An id present in only one dump, or present in
    both with different content, is a divergence; if all shared ids agree
    but one run noted more events, the divergence is the first extra id.
    """
    if a is None or b is None:
        return None
    ea = {e["id"]: e for e in a.get("events", ())}
    eb = {e["id"]: e for e in b.get("events", ())}
    lo = 0
    if ea and eb:
        # Ignore ids evicted from one ring but still held by the other:
        # only the overlap of the two windows is comparable.
        lo = max(min(ea), min(eb))
    for i in sorted(set(ea) | set(eb)):
        if i < lo:
            continue
        if ea.get(i) != eb.get(i):
            return i
    na, nb = a.get("events_noted", 0), b.get("events_noted", 0)
    if na != nb:
        return min(na, nb)
    return None


def render_flight(dump: Mapping[str, Any] | None, *,
                  limit: int | None = None,
                  mark_id: int | None = None) -> str:
    """Human-readable last-moments timeline of one flight dump.

    ``limit`` keeps only the newest events; ``mark_id`` prefixes the named
    event with ``>>`` (the fuzzer's first-divergence marker).
    """
    if not dump or not dump.get("events"):
        return "(flight recorder empty)"
    events = list(dump["events"])
    noted = dump.get("events_noted", len(events))
    dropped = noted - len(events)
    lines = [f"flight recorder: last {len(events)} of {noted} events"
             + (f" ({dropped} older evicted)" if dropped > 0 else "")]
    if limit is not None and len(events) > limit:
        lines.append(f"  ... {len(events) - limit} earlier events elided")
        events = events[-limit:]
    for ev in events:
        extra = " ".join(
            f"{k}={v}" for k, v in ev.items()
            if k not in ("id", "t", "layer", "event"))
        marker = ">>" if ev["id"] == mark_id else "  "
        lines.append(f"{marker}#{ev['id']:<6d} t={ev['t']:.6f}s "
                     f"[{ev['layer']}] {ev['event']}"
                     + (f" {extra}" if extra else ""))
    return "\n".join(lines)
