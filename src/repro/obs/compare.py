"""Run-diff tooling: ``repro compare A B``.

Answers "did this change alter behaviour, and where?" by diffing two run
artifacts -- pickled :class:`~repro.experiments.common.ScenarioResult`
files (``repro scenario --save`` / the results cache) or JSONL(.gz) trace
files (``--trace``) -- along three axes:

* **summary metrics**: per-key deltas against configurable relative/
  absolute tolerances (the determinism contract is *exact*, so the default
  tolerance is zero);
* **telemetry series**: for each sampled series present on both sides, the
  first bucket whose means disagree beyond ``eps`` -- the "where did the
  trajectories split" answer that summary deltas cannot give;
* **trace events**: per ``layer.event`` count deltas.

The comparison only diffs axes both artifacts carry (two traces have no
summaries; an untelemetered result has no series) and says so in
``notes`` rather than silently passing.  ``compare_artifacts`` returns a
:class:`ComparisonReport` whose ``exit_code`` follows diff(1) convention:
0 identical-within-tolerance, 1 diverged.
"""

from __future__ import annotations

import pathlib
import pickle
from typing import Any

from ..analysis.tables import fmt, render_table
from ..analysis.timeseries import first_divergence

__all__ = ["ComparisonReport", "load_artifact", "compare_summaries",
           "compare_telemetry", "compare_traces", "compare_artifacts",
           "render_comparison_report"]


class ComparisonReport:
    """Structured diff of two run artifacts; see module docstring."""

    def __init__(self, a: str, b: str) -> None:
        self.a = a
        self.b = b
        #: Per-metric rows {metric, a, b, delta, within}.
        self.summary: list[dict[str, Any]] = []
        #: Per-series rows {series, status, first_divergence?}.
        self.series: list[dict[str, Any]] = []
        #: Per-event-type rows {event, a, b, delta}.
        self.trace: list[dict[str, Any]] = []
        #: Axes that could not be compared and why.
        self.notes: list[str] = []

    @property
    def differences(self) -> int:
        """Count of rows that diverged (summary beyond tolerance, series
        with a located divergence, trace types with unequal counts)."""
        return (sum(1 for row in self.summary if not row["within"])
                + sum(1 for row in self.series
                      if row["status"] != "identical")
                + sum(1 for row in self.trace if row["delta"] != 0))

    @property
    def identical(self) -> bool:
        return self.differences == 0

    @property
    def exit_code(self) -> int:
        return 0 if self.identical else 1

    def as_dict(self) -> dict[str, Any]:
        return {"a": self.a, "b": self.b, "identical": self.identical,
                "differences": self.differences, "summary": self.summary,
                "series": self.series, "trace": self.trace,
                "notes": self.notes}


def load_artifact(path: str | pathlib.Path) -> dict[str, Any]:
    """Sniff and load one comparison side.

    ``*.jsonl`` / ``*.jsonl.gz`` load as trace files; anything else is
    unpickled and must hold a ScenarioResult-shaped object (``summary``
    attribute).  Returns ``{"kind": "trace"|"result", ...payload}``.
    """
    p = pathlib.Path(path)
    name = p.name
    if name.endswith(".jsonl") or name.endswith(".jsonl.gz"):
        from .sinks import read_trace
        header, runs = read_trace(p)
        return {"kind": "trace", "path": str(p), "header": header,
                "runs": runs}
    with open(p, "rb") as fh:
        res = pickle.load(fh)
    if not hasattr(res, "summary"):
        raise TypeError(f"{p} holds {type(res).__name__}, not a scenario "
                        f"result (and is not named *.jsonl[.gz])")
    return {"kind": "result", "path": str(p), "result": res}


def compare_summaries(a: dict[str, float], b: dict[str, float], *,
                      rtol: float = 0.0, atol: float = 0.0
                      ) -> list[dict[str, Any]]:
    """Per-metric delta rows over the union of keys (missing keys are
    never ``within``)."""
    rows: list[dict[str, Any]] = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va is None or vb is None:
            rows.append({"metric": key, "a": va, "b": vb,
                         "delta": None, "within": False})
            continue
        delta = vb - va
        within = abs(delta) <= atol + rtol * abs(va)
        rows.append({"metric": key, "a": va, "b": vb,
                     "delta": delta, "within": within})
    return rows


def compare_telemetry(ta, tb, *, eps: float = 0.0) -> list[dict[str, Any]]:
    """Per-series divergence rows over the union of series names.

    A series present on both sides gets its first divergent bucket (see
    :func:`~repro.analysis.timeseries.first_divergence`); one-sided series
    are reported as ``only_in_a`` / ``only_in_b``.
    """
    rows: list[dict[str, Any]] = []
    for name in sorted(set(ta.series) | set(tb.series)):
        sa, sb = ta.series.get(name), tb.series.get(name)
        if sa is None or sb is None:
            rows.append({"series": name,
                         "status": "only_in_b" if sa is None else "only_in_a"})
            continue
        div = first_divergence(sa, sb, eps=eps)
        if div is None:
            rows.append({"series": name, "status": "identical"})
        else:
            rows.append({"series": name, "status": "diverged",
                         "first_divergence": div})
    return rows


def _event_counts(events) -> dict[str, int]:
    counts: dict[str, int] = {}
    for ev in events:
        if isinstance(ev, dict):
            key = f"{ev.get('layer')}.{ev.get('event')}"
        else:
            key = f"{ev.layer}.{ev.event}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def compare_traces(events_a, events_b) -> list[dict[str, Any]]:
    """Per-``layer.event`` count-delta rows over the union of types."""
    ca, cb = _event_counts(events_a), _event_counts(events_b)
    return [{"event": key, "a": ca.get(key, 0), "b": cb.get(key, 0),
             "delta": cb.get(key, 0) - ca.get(key, 0)}
            for key in sorted(set(ca) | set(cb))]


def _trace_events(artifact) -> "list | None":
    if artifact["kind"] == "trace":
        return [ev for run in artifact["runs"] for ev in run["events"]]
    return getattr(artifact["result"], "trace", None)


def compare_artifacts(path_a: str | pathlib.Path,
                      path_b: str | pathlib.Path, *,
                      rtol: float = 0.0, atol: float = 0.0,
                      eps: float = 0.0) -> ComparisonReport:
    """Load two artifacts and diff every axis both sides carry."""
    a = load_artifact(path_a)
    b = load_artifact(path_b)
    report = ComparisonReport(a["path"], b["path"])

    if a["kind"] == "result" and b["kind"] == "result":
        report.summary = compare_summaries(a["result"].summary,
                                           b["result"].summary,
                                           rtol=rtol, atol=atol)
        ta = getattr(a["result"], "telemetry", None)
        tb = getattr(b["result"], "telemetry", None)
        if ta is not None and tb is not None:
            report.series = compare_telemetry(ta, tb, eps=eps)
        else:
            report.notes.append("telemetry: not sampled on "
                                + ("either side" if ta is None and tb is None
                                   else ("side A" if ta is None else "side B"))
                                + "; series not compared")
    else:
        report.notes.append("summaries: at least one side is a trace file; "
                            "summary metrics not compared")

    ea, eb = _trace_events(a), _trace_events(b)
    if ea is not None and eb is not None:
        report.trace = compare_traces(ea, eb)
    else:
        report.notes.append("trace: no event stream on "
                            + ("either side" if ea is None and eb is None
                               else ("side A" if ea is None else "side B"))
                            + "; event counts not compared")
    return report


def render_comparison_report(report: ComparisonReport, *,
                             all_rows: bool = False) -> str:
    """Human-readable diff; by default only divergent rows are shown
    (``all_rows`` includes the matching ones too)."""
    parts = [f"compare: A={report.a}", f"         B={report.b}"]
    sum_rows = [r for r in report.summary
                if all_rows or not r["within"]]
    if sum_rows:
        parts.append("")
        parts.append(render_table(
            ["metric", "A", "B", "delta", "ok"],
            [[r["metric"], r["a"], r["b"],
              "-" if r["delta"] is None else fmt(r["delta"]),
              "yes" if r["within"] else "NO"] for r in sum_rows],
            title=f"Summary metrics ({len(report.summary)} compared)"))
    ser_rows = [r for r in report.series
                if all_rows or r["status"] != "identical"]
    if ser_rows:
        rows = []
        for r in ser_rows:
            div = r.get("first_divergence")
            where = (f"bucket {div['bucket']} (t={div['time_s']:.3f}s: "
                     f"{div['a']} vs {div['b']})" if div else "-")
            rows.append([r["series"], r["status"], where])
        parts.append("")
        parts.append(render_table(
            ["series", "status", "first divergence"], rows,
            title=f"Telemetry series ({len(report.series)} compared)"))
    tr_rows = [r for r in report.trace if all_rows or r["delta"] != 0]
    if tr_rows:
        parts.append("")
        parts.append(render_table(
            ["event", "A", "B", "delta"],
            [[r["event"], r["a"], r["b"], r["delta"]] for r in tr_rows],
            title=f"Trace events ({len(report.trace)} types compared)"))
    for note in report.notes:
        parts.append(f"note: {note}")
    parts.append("")
    parts.append("IDENTICAL (within tolerance)" if report.identical
                 else f"DIVERGED: {report.differences} difference(s)")
    return "\n".join(parts)
