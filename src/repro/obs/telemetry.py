"""Sampled time-series telemetry: the trajectory half of observability.

The trace bus records *discrete* control-loop events and the metrics
registry records *end-of-run* aggregates; neither can show how IQ-RUDP's
window, loss estimate or queue occupancy **evolve** -- the paper's
coordination claims (cwnd re-inflation to ``1/(1-rate_chg)``, Eq. 1 drift
correction) are trajectory claims.  This module samples per-flow, per-queue
and per-link state on the *simulation* clock at a configurable cadence and
keeps each series in a bounded piecewise-aggregate form (M4-style
count/sum/min/max buckets), so memory is O(buckets) no matter how long the
run is and identical configs produce byte-identical series for any worker
count.

Arming
------
Telemetry is a :class:`~repro.experiments.common.ScenarioConfig` field
(``telemetry=TelemetryConfig(...)``), so it is part of the cache key: an
armed run is a different (strictly richer) artifact than a disarmed one.
Sampling is *pull-based* -- a periodic tick reads transport/queue/link
state through their ``telemetry_probe()`` methods -- so a disarmed run
executes **zero** telemetry instructions on the packet path; the only
disarmed-path cost is one ``sender.telemetry is None`` check per
coordination action (gated by ``bench_telemetry_overhead``).

Determinism
-----------
Sample ticks ride the event heap at :data:`~repro.invariants.checks
.CHECK_PRIORITY` (observing post-quiescent state at each instant) and only
*read* state, so armed and disarmed runs produce bit-identical summaries
-- the same observer-purity contract the invariant checker honours, and
the same oracle the fuzzer enforces.  Bucket compaction (merge adjacent
pairs, double the bucket width) is a deterministic function of the sample
sequence, mirroring :class:`~repro.obs.metrics.Histogram`'s reservoir
decimation.
"""

from __future__ import annotations

from typing import Any

#: Sampling ticks share the invariant checker's priority: at any sampled
#: instant every same-time data/timer event has already fired, so the
#: probe observes the settled state of that instant.
from ..invariants.checks import CHECK_PRIORITY as TELEMETRY_PRIORITY

__all__ = ["TelemetryConfig", "Series", "Telemetry", "TelemetryRecorder",
           "TELEMETRY_PRIORITY"]


class TelemetryConfig:
    """Arming knobs for the recorder.

    Instances are scenario-config values, so they must be picklable and
    carry a *stable* ``repr`` -- the runner's ``config_fingerprint`` hashes
    config fields via ``repr`` and two equal configs must produce the same
    cache key.

    Parameters
    ----------
    cadence_s : simulation-time sampling period in seconds.
    buckets : per-series bucket budget; when a run outgrows it, adjacent
        buckets merge pairwise and the bucket width doubles (memory stays
        O(buckets), early samples keep count/sum/min/max fidelity).
    annotations_max : bound on recorded coordination annotations.
    """

    def __init__(self, *, cadence_s: float = 0.1, buckets: int = 256,
                 annotations_max: int = 256):
        if cadence_s <= 0:
            raise ValueError("telemetry cadence_s must be positive")
        if buckets < 8:
            raise ValueError("telemetry needs at least 8 buckets")
        if annotations_max < 0:
            raise ValueError("annotations_max cannot be negative")
        self.cadence_s = float(cadence_s)
        self.buckets = int(buckets)
        self.annotations_max = int(annotations_max)

    def __repr__(self) -> str:
        return (f"TelemetryConfig(cadence_s={self.cadence_s!r}, "
                f"buckets={self.buckets!r}, "
                f"annotations_max={self.annotations_max!r})")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TelemetryConfig)
                and self.__dict__ == other.__dict__)

    def __hash__(self) -> int:
        return hash((self.cadence_s, self.buckets, self.annotations_max))


class Series:
    """Bounded piecewise-aggregate time series (M4-style).

    Fixed-width buckets over simulation time, each keeping
    ``[count, sum, min, max]`` of the samples that landed in it (``None``
    for empty buckets).  When a sample lands beyond the bucket budget,
    adjacent buckets merge pairwise and the width doubles -- the retained
    aggregate is a deterministic function of the ``(t, value)`` sequence,
    never of wall clock or worker count.
    """

    def __init__(self, name: str, *, bucket_s: float, maxlen: int):
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        if maxlen < 2:
            raise ValueError("series maxlen must be >= 2")
        self.name = name
        self.bucket_s = float(bucket_s)
        self.maxlen = int(maxlen)
        self.samples = 0
        self._buckets: list[list[float] | None] = []

    # ------------------------------------------------------------------
    def add(self, t: float, value: float) -> None:
        """Fold one sample taken at simulation time ``t`` into its bucket."""
        value = float(value)
        idx = int(t / self.bucket_s)
        maxlen = self.maxlen
        while idx >= maxlen:
            self._halve()
            idx = int(t / self.bucket_s)
        buckets = self._buckets
        if idx >= len(buckets):
            buckets.extend([None] * (idx + 1 - len(buckets)))
        b = buckets[idx]
        if b is None:
            buckets[idx] = [1.0, value, value, value]
        else:
            b[0] += 1.0
            b[1] += value
            if value < b[2]:
                b[2] = value
            if value > b[3]:
                b[3] = value
        self.samples += 1

    def _halve(self) -> None:
        """Merge adjacent bucket pairs and double the bucket width."""
        old = self._buckets
        merged: list[list[float] | None] = []
        for i in range(0, len(old), 2):
            a = old[i]
            b = old[i + 1] if i + 1 < len(old) else None
            if a is None:
                merged.append(None if b is None else list(b))
            elif b is None:
                merged.append(list(a))
            else:
                merged.append([a[0] + b[0], a[1] + b[1],
                               min(a[2], b[2]), max(a[3], b[3])])
        self._buckets = merged
        self.bucket_s *= 2.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buckets)

    def times(self) -> list[float]:
        """Bucket-center times (every bucket, empty ones included)."""
        w = self.bucket_s
        return [(i + 0.5) * w for i in range(len(self._buckets))]

    def counts(self) -> list[float]:
        return [0.0 if b is None else b[0] for b in self._buckets]

    def means(self) -> "list[float | None]":
        return [None if b is None else b[1] / b[0] for b in self._buckets]

    def mins(self) -> "list[float | None]":
        return [None if b is None else b[2] for b in self._buckets]

    def maxs(self) -> "list[float | None]":
        return [None if b is None else b[3] for b in self._buckets]

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly export: name, width and raw bucket aggregates."""
        return {"name": self.name, "bucket_s": self.bucket_s,
                "samples": self.samples,
                "buckets": [None if b is None else list(b)
                            for b in self._buckets]}

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Series)
                and self.name == other.name
                and self.bucket_s == other.bucket_s
                and self.maxlen == other.maxlen
                and self.samples == other.samples
                and self._buckets == other._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Series {self.name} {len(self._buckets)} buckets "
                f"x {self.bucket_s:g}s, {self.samples} samples>")


class Telemetry:
    """The picklable payload a recorder produces: named series plus a
    bounded list of coordination annotations.

    Rides inside :class:`~repro.experiments.common.ScenarioResult`
    (``res.telemetry``), survives ``detach()``, the pool's pickle
    transport and the persistent results cache.
    """

    def __init__(self, config: TelemetryConfig):
        self.config = config
        self.series: dict[str, Series] = {}
        self.annotations: list[dict[str, Any]] = []
        self.dropped_annotations = 0
        self.ticks = 0

    def get_series(self, name: str) -> Series:
        """Get-or-create, so probe sites never coordinate registration."""
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(
                name, bucket_s=self.config.cadence_s,
                maxlen=self.config.buckets)
        return s

    def annotate(self, t: float, kind: str, **fields: Any) -> None:
        """Record one coordination-layer annotation (bounded)."""
        if len(self.annotations) >= self.config.annotations_max:
            self.dropped_annotations += 1
            return
        note: dict[str, Any] = {"t": t, "kind": kind}
        note.update(fields)
        self.annotations.append(note)

    def names(self) -> list[str]:
        return sorted(self.series)

    def as_dict(self) -> dict[str, Any]:
        return {"cadence_s": self.config.cadence_s,
                "ticks": self.ticks,
                "series": {name: self.series[name].as_dict()
                           for name in sorted(self.series)},
                "annotations": list(self.annotations),
                "dropped_annotations": self.dropped_annotations}

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Telemetry)
                and self.config == other.config
                and self.series == other.series
                and self.annotations == other.annotations
                and self.ticks == other.ticks)


class TelemetryRecorder:
    """Periodic read-only sampler over flows, queues and links.

    Mirrors :class:`~repro.invariants.checks.InvariantChecker`'s shape:
    ``watch_flow``/``watch_network`` register subjects, ``arm()`` starts
    the self-rescheduling sampling tick.  Probes only *read* (through each
    subject's ``telemetry_probe()``), so the sampled run's summary is
    bit-identical to an unsampled one.
    """

    def __init__(self, sim, config: TelemetryConfig):
        self.sim = sim
        self.config = config
        self.data = Telemetry(config)
        # (prefix, sender, receiver-or-None, mutable delta state)
        self._flows: list[tuple[str, Any, Any, dict[str, float]]] = []
        # (prefix, FecState, mutable delta state); only populated for
        # FEC-armed flows so disarmed runs sample exactly as before.
        self._fec_flows: list[tuple[str, Any, dict[str, float]]] = []
        self._queues: list[tuple[str, Any]] = []
        # (prefix, link, mutable delta state)
        self._links: list[tuple[str, Any, dict[str, float]]] = []
        self._armed = False
        # Pre-resolved (probe, bound Series.add, ...) rows, built lazily on
        # the first tick -- see _bind().  Registration invalidates it.
        self._bound: tuple[list, list, list] | None = None

    # ------------------------------------------------------------------
    def watch_flow(self, conn, *, prefix: str = "flow") -> None:
        """Sample a connection's sender (cwnd/flightsize/SRTT/RTO/loss)
        and, when it has one, its receiver (goodput).  Also hands the
        sender a reference to the telemetry payload so the coordination
        engine can annotate window rescales onto the series."""
        sender = getattr(conn, "sender", None)
        if sender is None:
            raise TypeError(f"{type(conn).__name__} has no sender to probe")
        receiver = getattr(conn, "receiver", None)
        sender.telemetry = self.data
        self._flows.append((prefix, sender, receiver,
                            {"delivered_bytes": 0.0}))
        fec_state = getattr(conn, "fec", None)
        if fec_state is not None:
            self._fec_flows.append((prefix, fec_state,
                                    {"recovered": 0.0,
                                     "repair_bytes": 0.0}))
        self._bound = None

    def watch_network(self, net) -> None:
        """Sample the dumbbell's bottleneck queues and link utilisation."""
        for link in (net.forward, net.backward):
            self._queues.append((f"queue.{link.name}", link.queue))
            self._links.append((f"link.{link.name}", link,
                                {"bytes_sent": 0.0}))
        self._bound = None

    def arm(self) -> None:
        if self._armed:
            return
        self._armed = True
        self.sim.schedule(self.config.cadence_s, self._tick,
                          priority=TELEMETRY_PRIORITY)

    # ------------------------------------------------------------------
    def _bind(self) -> tuple[list, list, list]:
        """Pre-resolve every probe and every series' bound ``add``.

        The per-sample cost of ``_tick`` was dominated by rebuilding series
        names (f-strings) and re-walking ``data.series`` for every sample of
        every tick; each (subject, series) pair is fixed for the life of the
        run, so resolve them once.  Built lazily on the *first* tick -- not
        at arm time -- so a run with zero ticks still creates no series
        (same lazy-series behaviour as before).
        """
        get = self.data.get_series
        flows = [(sender.telemetry_probe,
                  get(f"{prefix}.cwnd").add,
                  get(f"{prefix}.flightsize").add,
                  get(f"{prefix}.srtt_s").add,
                  get(f"{prefix}.rto_s").add,
                  get(f"{prefix}.loss_ratio").add,
                  None if receiver is None else receiver.stats,
                  None if receiver is None
                  else get(f"{prefix}.goodput_bps").add,
                  state)
                 for prefix, sender, receiver, state in self._flows]
        queues = [(queue.telemetry_probe,
                   get(f"{prefix}.pkts").add,
                   get(f"{prefix}.bytes").add,
                   get(f"{prefix}.drops").add)
                  for prefix, queue in self._queues]
        links = [(link.telemetry_probe,
                  get(f"{prefix}.util").add,
                  link, state)
                 for prefix, link, state in self._links]
        fecs = [(fec_state,
                 get(f"{prefix}.fec_redundancy").add,
                 get(f"{prefix}.fec_repair_rate").add,
                 get(f"{prefix}.fec_overhead_bps").add,
                 state)
                for prefix, fec_state, state in self._fec_flows]
        return flows, queues, links, fecs

    def _tick(self) -> None:
        data = self.data
        data.ticks += 1
        now = self.sim.now
        cadence = self.config.cadence_s
        bound = self._bound
        if bound is None:
            bound = self._bound = self._bind()
        flows, queues, links, fecs = bound
        for (probe_fn, add_cwnd, add_flight, add_srtt, add_rto, add_loss,
             rstats, add_goodput, state) in flows:
            probe = probe_fn()
            add_cwnd(now, probe["cwnd"])
            add_flight(now, probe["flightsize"])
            add_srtt(now, probe["srtt_s"])
            add_rto(now, probe["rto_s"])
            add_loss(now, probe["loss_ratio"])
            if rstats is not None:
                total = float(rstats.delivered_bytes)
                delta = total - state["delivered_bytes"]
                state["delivered_bytes"] = total
                add_goodput(now, delta * 8.0 / cadence)
        for probe_fn, add_pkts, add_bytes, add_drops in queues:
            probe = probe_fn()
            add_pkts(now, probe["pkts"])
            add_bytes(now, probe["bytes"])
            add_drops(now, probe["drops"])
        for probe_fn, add_util, link, state in links:
            probe = probe_fn()
            total = float(probe["bytes_sent"])
            delta = total - state["bytes_sent"]
            state["bytes_sent"] = total
            add_util(now, delta * 8.0 / (cadence * link.bandwidth_bps))
        for fec_state, add_r, add_rate, add_overhead, state in fecs:
            add_r(now, float(fec_state.r))
            total = float(fec_state.recovered)
            add_rate(now, (total - state["recovered"]) / cadence)
            state["recovered"] = total
            total = float(fec_state.repair_bytes)
            add_overhead(now, (total - state["repair_bytes"]) * 8.0 / cadence)
            state["repair_bytes"] = total
        self.sim.schedule(cadence, self._tick, priority=TELEMETRY_PRIORITY)
