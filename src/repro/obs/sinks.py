"""Trace sinks and the on-disk JSONL trace format.

File format (one JSON object per line, ``sort_keys`` so files are
byte-stable):

* line 1 -- ``{"type": "header", "format": "repro-trace", "version": 1,
  "runs": N}``
* per run, in batch order -- ``{"type": "run", "run": <label>,
  "cached": <bool>, "events": <count>, ...meta}`` followed by that run's
  event lines ``{"type": "event", "run": <label>, "seq": ..., "t": ...,
  "layer": ..., "event": ..., ...fields}``.

Cache-served runs carry ``"cached": true`` and zero event lines: the
persistent results cache stores metrics, not event streams, so a hit is
honest about what it can and cannot replay.

Determinism: events are written in per-run emission (``seq``) order and
runs in batch order, both independent of worker count; gzip output pins
``mtime=0`` so even the compressed bytes are reproducible.
"""

from __future__ import annotations

import gzip
import io
import json
import pathlib
from collections import deque
from typing import Any, Iterable

from .events import TraceEvent

__all__ = ["RingBufferSink", "JsonlTraceSink", "write_trace", "read_trace",
           "event_obj"]

_FORMAT = "repro-trace"
_VERSION = 1


def _dumps(obj: dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def event_obj(ev: "TraceEvent | dict[str, Any]") -> dict[str, Any]:
    """Normalise an event (record or already-parsed dict) to a flat dict."""
    return ev.as_obj() if isinstance(ev, TraceEvent) else dict(ev)


class RingBufferSink:
    """In-memory sink; bounded when ``capacity`` is given (keeps the most
    recent events), unbounded otherwise.  The workers' collection sink and
    the tests' observation point."""

    def __init__(self, capacity: int | None = None):
        self.capacity = capacity
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self.appended = 0

    def append(self, ev: TraceEvent) -> None:
        self._buf.append(ev)
        self.appended += 1

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self):
        return iter(self._buf)

    def clear(self) -> None:
        self._buf.clear()


def _open_text(path: pathlib.Path, mode: str):
    """Text handle; transparent deterministic gzip for ``*.gz`` paths."""
    if str(path).endswith(".gz"):
        if "w" in mode:
            raw = open(path, "wb")
            gz = gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0)
            return io.TextIOWrapper(gz, encoding="utf-8", newline="\n")
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, mode, encoding="utf-8", newline="\n" if "w" in mode
                else None)


class JsonlTraceSink:
    """Streaming JSONL sink for single-scenario (CLI ``--trace``) runs.

    Accepts :class:`TraceEvent` appends plus explicit meta lines; callers
    must :meth:`close` (or use as a context manager) to flush.
    """

    def __init__(self, path: str | pathlib.Path, *, run: str = "0"):
        self.path = pathlib.Path(path)
        self.run = run
        self._fh = _open_text(self.path, "wt")
        self.events_written = 0

    def write_meta(self, obj: dict[str, Any]) -> None:
        self._fh.write(_dumps(obj) + "\n")

    def append(self, ev: TraceEvent) -> None:
        obj = {"type": "event", "run": self.run}
        obj.update(ev.as_obj())
        self._fh.write(_dumps(obj) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_trace(path: str | pathlib.Path,
                runs: Iterable[dict[str, Any]]) -> int:
    """Write a complete batch trace file; returns total events written.

    ``runs`` is an iterable of ``{"run": label, "cached": bool,
    "events": [TraceEvent|dict, ...], "meta": {...}}`` in batch order.
    """
    runs = list(runs)
    total = 0
    with _open_text(pathlib.Path(path), "wt") as fh:
        fh.write(_dumps({"type": "header", "format": _FORMAT,
                         "version": _VERSION, "runs": len(runs)}) + "\n")
        for entry in runs:
            label = str(entry["run"])
            events = [] if entry.get("cached") else list(
                entry.get("events") or ())
            head = {"type": "run", "run": label,
                    "cached": bool(entry.get("cached")),
                    "events": len(events)}
            head.update(entry.get("meta") or {})
            fh.write(_dumps(head) + "\n")
            for ev in events:
                obj = {"type": "event", "run": label}
                obj.update(event_obj(ev))
                fh.write(_dumps(obj) + "\n")
                total += 1
    return total


def read_trace(path: str | pathlib.Path
               ) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a trace file into ``(header, runs)``.

    Each run is ``{"run": label, "cached": bool, "meta": {...},
    "events": [flat event dict, ...]}``.  Raises ``ValueError`` on files
    that are not repro traces.
    """
    header: dict[str, Any] | None = None
    runs: list[dict[str, Any]] = []
    by_label: dict[str, dict[str, Any]] = {}
    with _open_text(pathlib.Path(path), "rt") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("type")
            if kind == "header":
                if obj.get("format") != _FORMAT:
                    raise ValueError(f"not a {_FORMAT} file: {path}")
                header = obj
            elif kind == "run":
                meta = {k: v for k, v in obj.items()
                        if k not in ("type", "run", "cached", "events")}
                entry = {"run": obj["run"], "cached": bool(obj.get("cached")),
                         "meta": meta, "events": []}
                runs.append(entry)
                by_label[obj["run"]] = entry
            elif kind == "event":
                label = obj.get("run", "0")
                entry = by_label.get(label)
                if entry is None:  # tolerate headerless single-run streams
                    entry = {"run": label, "cached": False, "meta": {},
                             "events": []}
                    runs.append(entry)
                    by_label[label] = entry
                entry["events"].append(
                    {k: v for k, v in obj.items() if k not in ("type", "run")})
    if header is None:
        raise ValueError(f"missing trace header in {path}")
    return header, runs
