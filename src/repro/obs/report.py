"""Run reports: the adaptation timeline and the coordination audit.

``repro report trace.jsonl`` renders, per run:

* a **timeline** of the control-loop events (callback firings, attribute
  exchanges, coordination actions, window changes, period rolls, ...) in
  emission order, and
* a **coordination audit**: every attribute exchange the coordinator saw
  (``ATTR_RECEIVED``) paired -- via the ``attr_seq`` back-reference each
  ``COORD_ACTION`` carries -- with the transport action(s) it produced,
  including the over-reaction base factor ``1/(1-rate_chg)`` and the Eq. 1
  drift correction ``(1-e_new)/(1-e_old)`` when ``ADAPT_COND`` was applied.

The audit is the report's point: it turns the paper's causal claim
("application adaptation X made the transport do Y") into a checkable
table for any given run.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..analysis.tables import fmt, render_table
from .events import (ADAPT_ACTION, ATTR_RECEIVED, ATTR_SENT, CALLBACK_FIRED,
                     COORD_ACTION, CWND_CHANGE, FAULT_PHASE, FEC_RECOVERED,
                     FRAME_ABANDONED, LINK_FAIL, LINK_RECOVER, PERIOD_ROLL)
from .sinks import read_trace

__all__ = ["coordination_audit", "render_timeline", "render_report",
           "report_json", "failures_by_kind", "TIMELINE_EVENTS"]


def failures_by_kind(kinds: Iterable[str]) -> dict[str, int]:
    """Count failure kinds into a deterministically ordered dict.

    Shared by the trace report (failure kinds read from run-head metadata)
    and the campaign aggregator (kinds read from ``FailedResult.kind``
    rows), so both speak the same ``{"by_kind": {...}}`` dialect."""
    counts: dict[str, int] = {}
    for kind in kinds:
        counts[kind] = counts.get(kind, 0) + 1
    return dict(sorted(counts.items()))

#: Event types the timeline shows by default -- the two control loops and
#: their coupling, without the per-packet firehose.
TIMELINE_EVENTS = frozenset({
    CALLBACK_FIRED, ATTR_SENT, ATTR_RECEIVED, COORD_ACTION, ADAPT_ACTION,
    CWND_CHANGE, PERIOD_ROLL, FAULT_PHASE, LINK_FAIL, LINK_RECOVER,
    FEC_RECOVERED, FRAME_ABANDONED,
})

#: Keys already shown in dedicated timeline columns.
_RESERVED = ("seq", "t", "layer", "event")


def _details(ev: dict[str, Any]) -> str:
    """Compact ``k=v`` rendering of an event's type-specific fields."""
    parts = []
    for key in sorted(ev):
        if key in _RESERVED:
            continue
        value = ev[key]
        if isinstance(value, float):
            value = fmt(value, 4)
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_timeline(events: Sequence[dict[str, Any]], *,
                    types: Iterable[str] | None = None,
                    limit: int | None = None) -> str:
    """Emission-order table of ``events`` (flat dicts from ``read_trace``).

    ``types`` restricts to an event-type subset (default
    :data:`TIMELINE_EVENTS`); ``types=()`` or any falsy non-None iterable
    means "all types".  ``limit`` keeps the *last* N rows, where the
    adaptation endgame lives.
    """
    wanted = TIMELINE_EVENTS if types is None else (frozenset(types) or None)
    picked = [ev for ev in events
              if wanted is None or ev.get("event") in wanted]
    shown = picked if limit is None or len(picked) <= limit else picked[-limit:]
    rows = [[ev.get("seq", ""), f"{ev.get('t', 0.0):.6f}",
             ev.get("layer", "?"), ev.get("event", "?"), _details(ev)]
            for ev in shown]
    title = f"Timeline ({len(shown)}/{len(picked)} events shown)"
    if not rows:
        return f"{title}\n  (no matching events)"
    return render_table(["seq", "t", "layer", "event", "details"], rows,
                        title=title)


def coordination_audit(events: Sequence[dict[str, Any]]
                       ) -> dict[str, list[dict[str, Any]]]:
    """Pair every ``ATTR_RECEIVED`` with the ``COORD_ACTION`` events that
    reference it.

    Returns ``{"pairs": [...], "unmatched_attrs": [...], "spontaneous":
    [...], "unmatched_actions": [...]}`` where each pair is
    ``{"attr": event, "actions": [event, ...]}``.  ``unmatched_attrs`` are
    exchanges the coordinator consumed without acting on (legitimately --
    e.g. an attribute set with nothing the active schemes handle);
    ``spontaneous`` are transport-initiated actions that carry *no*
    ``attr_seq`` because no application attribute exchange caused them
    (the stall detector's graceful degradation / recovery); and
    ``unmatched_actions`` are actions whose ``attr_seq`` points at no
    recorded exchange (which would indicate a broken trace).
    """
    attrs_by_seq: dict[int, dict[str, Any]] = {}
    actions_by_attr: dict[int, list[dict[str, Any]]] = {}
    spontaneous: list[dict[str, Any]] = []
    unmatched_actions: list[dict[str, Any]] = []
    for ev in events:
        etype = ev.get("event")
        if etype == ATTR_RECEIVED:
            attrs_by_seq[ev["seq"]] = ev
        elif etype == COORD_ACTION:
            if "attr_seq" in ev:
                actions_by_attr.setdefault(ev["attr_seq"], []).append(ev)
            else:
                spontaneous.append(ev)
    pairs = []
    unmatched_attrs = []
    for seq, attr_ev in attrs_by_seq.items():
        actions = actions_by_attr.pop(seq, None)
        if actions:
            pairs.append({"attr": attr_ev, "actions": actions})
        else:
            unmatched_attrs.append(attr_ev)
    for leftover in actions_by_attr.values():
        unmatched_actions.extend(leftover)
    return {"pairs": pairs, "unmatched_attrs": unmatched_attrs,
            "spontaneous": spontaneous,
            "unmatched_actions": unmatched_actions}


def _audit_rows(audit: dict[str, list[dict[str, Any]]]
                ) -> list[list[Any]]:
    rows: list[list[Any]] = []
    for pair in audit["pairs"]:
        attr_ev = pair["attr"]
        attr_txt = _details({k: v for k, v in attr_ev.items()
                             if k not in _RESERVED and k != "via"})
        for i, act in enumerate(pair["actions"]):
            act_txt = _details({k: v for k, v in act.items()
                                if k not in _RESERVED and k != "attr_seq"})
            rows.append([attr_ev["seq"] if i == 0 else "",
                         f"{attr_ev.get('t', 0.0):.6f}" if i == 0 else "",
                         attr_txt if i == 0 else "",
                         act.get("action", "?"), act_txt])
    for attr_ev in audit["unmatched_attrs"]:
        rows.append([attr_ev["seq"], f"{attr_ev.get('t', 0.0):.6f}",
                     _details({k: v for k, v in attr_ev.items()
                               if k not in _RESERVED}), "(no action)", ""])
    for act in audit["spontaneous"]:
        rows.append(["-", f"{act.get('t', 0.0):.6f}",
                     "(transport-initiated)", act.get("action", "?"),
                     _details({k: v for k, v in act.items()
                               if k not in _RESERVED})])
    for act in audit["unmatched_actions"]:
        rows.append(["?", f"{act.get('t', 0.0):.6f}", "(missing exchange)",
                     act.get("action", "?"),
                     _details({k: v for k, v in act.items()
                               if k not in _RESERVED})])
    return rows


def render_audit(events: Sequence[dict[str, Any]]) -> str:
    audit = coordination_audit(events)
    n_pairs = len(audit["pairs"])
    n_unmatched = len(audit["unmatched_attrs"])
    title = (f"Coordination audit ({n_pairs} exchanges acted on, "
             f"{n_unmatched} consumed without action)")
    n_spont = len(audit["spontaneous"])
    if n_spont:
        title = title[:-1] + f", {n_spont} transport-initiated)"
    rows = _audit_rows(audit)
    if not rows:
        return f"{title}\n  (no attribute exchanges in trace)"
    return render_table(["attr_seq", "t", "attributes", "action", "detail"],
                        rows, title=title)


def render_report(path, *, run: str | None = None, limit: int | None = 60,
                  types: Iterable[str] | None = None) -> str:
    """Full report for a trace file: per-run timeline + coordination audit.

    ``run`` selects one run label; default renders every run in the file.
    """
    header, runs = read_trace(path)
    if run is not None:
        runs = [r for r in runs if str(r["run"]) == str(run)]
        if not runs:
            raise ValueError(f"run {run!r} not found in {path}")
    parts = [f"Trace report: {path} "
             f"(format {header.get('format')} v{header.get('version')}, "
             f"{len(runs)} run(s))"]
    n_cached = 0
    n_failed = 0
    for entry in runs:
        meta_dict = entry.get("meta") or {}
        failed = bool(meta_dict.get("failed"))
        meta = _details({k: v for k, v in meta_dict.items()
                         if k != "failed"})
        head = f"== run {entry['run']}"
        if failed:
            head += " ** FAILED **"
        if meta:
            head += f" [{meta}]"
        if entry.get("cached"):
            head += " (cached run -- no event stream)"
        parts.append("")
        parts.append(head)
        if entry.get("cached"):
            n_cached += 1
            continue
        if failed:
            # A failed run ships no event stream: the classified failure
            # (failed_kind / error_type / error / attempts) is in the head
            # line above, and the full traceback lives in the batch's
            # raised/captured FailedResult, not the trace file.
            n_failed += 1
            parts.append("   (no event stream -- scenario failed before "
                         "producing a result; see failed_kind/error above)")
            continue
        events = entry["events"]
        parts.append("")
        parts.append(render_timeline(events, types=types, limit=limit))
        parts.append("")
        parts.append(render_audit(events))
    if n_cached:
        # The results cache stores metrics, not event streams, so a cache
        # hit has nothing to report on.  Say how to get the events back
        # instead of presenting an empty report as a recorded one.
        what = ("All" if n_cached == len(runs) else
                f"{n_cached} of {len(runs)}") + \
            (" runs were" if len(runs) > 1 else " runs was")
        if n_cached == len(runs) == 1:
            what = "This run was"
        parts.append("")
        parts.append(
            f"note: {what} served from the results cache, which stores "
            f"metrics but no event streams.\n"
            f"      Re-record with the cache disabled to capture events, "
            f"e.g.  REPRO_NO_CACHE=1 <command> --trace <path>")
    if n_failed:
        parts.append("")
        parts.append(
            f"note: {n_failed} of {len(runs)} run(s) FAILED; rows are "
            f"marked above with their failure kind.  Deterministic kinds "
            f"(error/invariant) reproduce by re-running the same config; "
            f"transient kinds (timeout/worker-lost) may pass on retry.")
    return "\n".join(parts)


def report_json(path, *, run: str | None = None, limit: int | None = None,
                types: Iterable[str] | None = None) -> dict[str, Any]:
    """Machine-readable counterpart of :func:`render_report`
    (``repro report --json``).

    Same selection semantics (``run``/``types``/``limit``); returns a
    ``json.dump``-able dict: the trace header plus, per run, its metadata,
    the filtered timeline events and the coordination-audit pairing --
    attribute exchanges with their actions, plus the unmatched/spontaneous
    buckets -- as flat event dicts straight from the trace file.
    """
    header, runs = read_trace(path)
    if run is not None:
        runs = [r for r in runs if str(r["run"]) == str(run)]
        if not runs:
            raise ValueError(f"run {run!r} not found in {path}")
    wanted = TIMELINE_EVENTS if types is None else (frozenset(types) or None)
    out_runs = []
    failed_kinds: list[str] = []
    for entry in runs:
        # Cached and failed runs ship no event stream.
        events = entry["events"] or []
        meta_dict = entry.get("meta") or {}
        if meta_dict.get("failed"):
            failed_kinds.append(str(meta_dict.get("failed_kind", "error")))
        picked = [ev for ev in events
                  if wanted is None or ev.get("event") in wanted]
        if limit is not None and len(picked) > limit:
            picked = picked[-limit:]
        out_runs.append({
            "run": entry["run"],
            "cached": entry["cached"],
            "meta": meta_dict,
            "events_total": len(events),
            "timeline": picked,
            "audit": coordination_audit(events),
        })
    return {"path": str(path),
            "format": header.get("format"),
            "version": header.get("version"),
            "failures": {"total": len(failed_kinds),
                         "by_kind": failures_by_kind(failed_kinds)},
            "runs": out_runs}
