"""Metrics registry: counters, gauges and bounded-reservoir histograms.

The registry is the *aggregated* half of observability (the trace bus is
the sequential half): per-scenario instruments rolled into an extended
``ScenarioResult.summary`` under ``obs_*`` keys, so every bench, test and
cached result carries distribution-level evidence (cwnd spread, per-period
error ratios, queue pressure) without any event stream attached.

Everything here is plain picklable Python data -- registries survive
``ScenarioResult.detach()``, the worker pool's pickle transport, and the
persistent on-disk cache.

Histograms keep a *bounded, deterministic* reservoir: once ``maxlen``
samples are retained the reservoir is decimated to every other sample and
the retention stride doubles (systematic decimation, not random sampling),
so identical runs produce identical reservoirs regardless of worker count.
Exact count/sum/min/max are always tracked alongside.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "collect_scenario_metrics"]

#: Prometheus metric names allow ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(prefix: str, name: str) -> str:
    out = _PROM_BAD.sub("_", prefix + name)
    return "_" + out if out[:1].isdigit() else out


def _prom_value(v: float) -> str:
    """Stable float rendering (no locale, fixed precision) so exposition
    output is byte-identical across runs -- the golden test depends on it."""
    if v != v:
        return "NaN"
    if v in (float("inf"), float("-inf")):
        return "+Inf" if v > 0 else "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.10g}"


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def __getstate__(self):
        return (self.name, self.value)

    def __setstate__(self, state):
        self.name, self.value = state


class Gauge:
    """Last-value-wins instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def __getstate__(self):
        return (self.name, self.value)

    def __setstate__(self, state):
        self.name, self.value = state


class Histogram:
    """Bounded deterministic reservoir with exact count/sum/min/max.

    ``add`` retains every ``stride``-th sample; when the reservoir reaches
    ``maxlen`` it is decimated in place (keep every other retained sample)
    and the stride doubles, so the memory bound holds for any stream length
    while the retained set stays a deterministic function of the input
    sequence.
    """

    __slots__ = ("name", "maxlen", "count", "total", "min", "max",
                 "_samples", "_stride")

    def __init__(self, name: str, maxlen: int = 256):
        if maxlen < 2:
            raise ValueError("histogram maxlen must be >= 2")
        self.name = name
        self.maxlen = maxlen
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1

    def add(self, x: float) -> None:
        x = float(x)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if self.count % self._stride == 0:
            if len(self._samples) >= self.maxlen:
                del self._samples[1::2]
                self._stride *= 2
                if self.count % self._stride == 0:
                    self._samples.append(x)
            else:
                self._samples.append(x)
        self.count += 1
        self.total += x

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained reservoir (0 when
        empty); ``q`` in [0, 100]."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(int(q / 100.0 * (len(ordered) - 1) + 0.5),
                  len(ordered) - 1)
        return ordered[idx]

    def stats(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0}
        return {"count": float(self.count), "mean": self.mean,
                "min": self.min, "max": self.max,
                "p50": self.percentile(50), "p95": self.percentile(95)}

    def __getstate__(self):
        return (self.name, self.maxlen, self.count, self.total, self.min,
                self.max, self._samples, self._stride)

    def __setstate__(self, state):
        (self.name, self.maxlen, self.count, self.total, self.min,
         self.max, self._samples, self._stride) = state


class MetricsRegistry:
    """Named instrument store with a flat-summary export.

    ``counter``/``gauge``/``histogram`` are get-or-create so call sites
    never coordinate registration order; :meth:`summary` flattens every
    instrument to ``prefix``-ed scalar floats for ``ScenarioResult.summary``.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, maxlen: int = 256) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, maxlen)
        return h

    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def summary(self, prefix: str = "obs_") -> dict[str, float]:
        """Flat ``{prefix+name: float}`` export, deterministically ordered
        (sorted by key within each instrument class)."""
        out: dict[str, float] = {}
        for name in sorted(self._counters):
            out[f"{prefix}{name}"] = self._counters[name].value
        for name in sorted(self._gauges):
            out[f"{prefix}{name}"] = self._gauges[name].value
        for name in sorted(self._histograms):
            stats = self._histograms[name].stats()
            for stat in ("count", "mean", "p50", "p95", "max"):
                out[f"{prefix}{name}_{stat}"] = stats[stat]
        return out

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition (version 0.0.4) of every instrument.

        Counters and gauges render as their native types; histograms as
        summaries (p50/p95 quantile labels plus ``_sum``/``_count``) since
        the deterministic reservoir keeps samples, not fixed buckets.
        Output is sorted by instrument class then name and numeric
        formatting is pinned, so identical registries render
        byte-identical text -- ``repro metrics`` output can be
        golden-tested and diffed across runs.
        """
        lines: list[str] = []
        for name in sorted(self._counters):
            pname = _prom_name(prefix, name)
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_prom_value(self._counters[name].value)}")
        for name in sorted(self._gauges):
            pname = _prom_name(prefix, name)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_value(self._gauges[name].value)}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            pname = _prom_name(prefix, name)
            lines.append(f"# TYPE {pname} summary")
            for q, label in ((50, "0.5"), (95, "0.95")):
                lines.append(f'{pname}{{quantile="{label}"}} '
                             f"{_prom_value(h.percentile(q))}")
            lines.append(f"{pname}_sum {_prom_value(h.total)}")
            lines.append(f"{pname}_count {_prom_value(float(h.count))}")
        return "\n".join(lines) + ("\n" if lines else "")


def collect_scenario_metrics(registry: MetricsRegistry, *, conn, net=None,
                             strategy=None, source=None,
                             log=None) -> MetricsRegistry:
    """Roll one finished scenario's state into ``registry``.

    Duck-typed over the connection/network/strategy objects so it works for
    every transport in the registry (TCP included) and stays usable from
    tests that build topologies by hand.  Called by ``run_scenario`` after
    the run completes; costs one pass over the per-period metric history.

    ``source`` (the application :class:`AdaptiveSource`) and ``log`` (the
    :class:`DeliveryLog`) add frame-level failure accounting -- submitted
    versus delivered frames plus the abandonment causes (local conflict
    discards, adaptive-reliability skips) -- derived from state every run
    carries, so armed-span and disarmed runs export identical values.
    """
    sender = getattr(conn, "sender", None)
    if sender is not None:
        stats = sender.stats
        for name in ("packets_sent", "retransmissions", "timeouts",
                     "fast_retransmits", "skips_sent", "discarded_msgs",
                     "submitted_msgs"):
            registry.counter(name).inc(getattr(stats, name))
        registry.gauge("cwnd_final").set(sender.cc.cwnd)
        registry.gauge("rtt_final_s").set(sender.rtt.rtt)
        callbacks = getattr(sender, "callbacks", None)
        if callbacks is not None:
            registry.counter("callbacks_upper").inc(callbacks.fired_upper)
            registry.counter("callbacks_lower").inc(callbacks.fired_lower)
        coordinator = getattr(sender, "coordinator", None)
        # Zero-default so the summary schema is identical across transports
        # (an IQ run with no adaptation must equal a plain RUDP run).
        for attr, name in (("window_rescales", "coord_window_rescales"),
                           ("discard_switches", "coord_discard_switches"),
                           ("pending_adaptations", "coord_pending"),
                           ("cond_corrections", "coord_cond_corrections"),
                           ("freq_adaptations", "coord_freq_adaptations")):
            registry.counter(name).inc(getattr(coordinator, attr, 0))
        history = getattr(getattr(sender, "metrics", None), "history", None)
        if history:
            h_err = registry.histogram("period_error_ratio")
            h_cwnd = registry.histogram("period_cwnd")
            h_rtt = registry.histogram("period_rtt_s")
            h_rate = registry.histogram("period_rate_bps")
            for pm in history:
                h_err.add(pm.error_ratio)
                h_cwnd.add(pm.cwnd)
                h_rtt.add(pm.rtt)
                h_rate.add(pm.rate_bps)
    if net is not None:
        qstats = net.bottleneck_queue.stats
        registry.counter("bottleneck_drops").inc(qstats.drops)
        registry.counter("bottleneck_arrivals").inc(qstats.arrivals)
        registry.gauge("bottleneck_peak_pkts").set(qstats.peak_packets)
        registry.gauge("bottleneck_peak_bytes").set(qstats.peak_bytes)
    if source is not None:
        registry.counter("frames_submitted").inc(
            getattr(source, "submitted_frames", 0))
    if log is not None:
        registry.counter("frames_delivered").inc(log.frames_delivered())
        if source is not None:
            registry.counter("frames_undelivered").inc(
                max(getattr(source, "submitted_frames", 0)
                    - log.frames_delivered(), 0))
    if sender is not None:
        # Abandonment causes, from counters every transport keeps: frames
        # whose datagrams were discarded locally by the conflict scheme,
        # and datagrams abandoned in flight via skip messages.
        registry.counter("abandoned_msgs_discard").inc(
            sender.stats.discarded_msgs)
        registry.counter("abandoned_datagrams_skip").inc(
            sender.stats.skips_sent)
    fec_state = getattr(conn, "fec", None)
    if fec_state is not None:
        # Exported only when the repair tier is armed: a disarmed run's
        # summary must stay byte-identical to the pre-FEC schema.
        registry.counter("fec_repairs_sent").inc(fec_state.repairs_sent)
        registry.counter("fec_repair_bytes").inc(fec_state.repair_bytes)
        registry.counter("fec_recovered").inc(fec_state.recovered)
        registry.counter("fec_unrecoverable").inc(fec_state.unrecoverable)
        registry.counter("fec_repairs_unused").inc(fec_state.repairs_unused)
        registry.gauge("fec_redundancy_final").set(fec_state.r)
        if sender is not None:
            coordinator = getattr(sender, "coordinator", None)
            registry.counter("coord_fec_adaptations").inc(
                getattr(coordinator, "fec_adaptations", 0))
            registry.counter("coord_fec_boosts").inc(
                getattr(coordinator, "fec_boosts", 0))
    if sender is not None and getattr(sender, "deadline_armed", False):
        # Same conditionality for deadline scheduling: only deadline-armed
        # runs grow the expired-frame columns.
        registry.counter("abandoned_msgs_deadline").inc(
            sender.stats.expired_msgs)
        registry.counter("abandoned_bytes_deadline").inc(
            sender.stats.expired_bytes)
    if strategy is not None:
        registry.gauge("adapt_scale_final").set(
            getattr(strategy, "scale", 1.0))
        registry.gauge("adapt_freq_scale_final").set(
            getattr(strategy, "freq_scale", 1.0))
        registry.counter("adapt_upper_events").inc(
            getattr(strategy, "upper_events", 0))
        registry.counter("adapt_lower_events").inc(
            getattr(strategy, "lower_events", 0))
    return registry
