"""Reliability sweeps: FEC repair tier vs pure ARQ under loss dynamics.

ARQ recovers a lost datagram one RTT (often one RTO) after the hole is
noticed; under Gilbert-Elliott burst loss or a handover blackout that
round trip is exactly the resource in shortest supply, so the window
drains, the stall detector trips, and frames back up behind the repair.
The application-tailored alternative (:mod:`repro.transport.fec`) spends
a tunable slice of bandwidth *ahead* of the loss: every generation of
``k`` data datagrams carries ``r`` XOR repair datagrams, the receiver
rebuilds up to ``r`` in-generation losses with zero extra round trips,
and the IQ coordinator steers ``r`` from the same loss/stall telemetry
that drives the paper's application adaptations.

Each scenario here runs the changing-application conflict workload
(marking adaptation, 40% receiver loss tolerance) in the Table 3
overload regime -- the same base regime as :mod:`.dynamics` -- and
compares **delivered-frame goodput** (``goodput_fps``) across arms of
the *same* coordinated transport: IQ-RUDP with the FEC tier armed
against ARQ-only IQ-RUDP.  The claim under test is narrow and falsifiable:
where retransmission stalls, proactive redundancy buys strictly more
delivered frames per second than it costs in repair overhead.

Calibration notes (empirical, same spirit as :mod:`.dynamics`):

* ``burst`` reuses the dynamics Gilbert-Elliott schedule (~3.8%
  stationary loss with reordering jitter): bursts of 3-4 consecutive
  wire drops are common, which is exactly the interleaved coder's case
  (stripe i covers every ``n_repair``-th member, so a contiguous burst
  ≤ r falls into distinct stripes).
* ``blackout`` models a handover: a 0.8 s outage, then residual burst
  loss while the new path settles.  FEC cannot save datagrams sent into
  the blackout (whole generations vanish), so the win comes from the
  stall-boosted redundancy covering the lossy settle phase -- the
  coordinator arms ``r = r_max`` on stall and relaxes it as periods
  come back clean.
* Cross traffic is pinned at 12 Mb/s as in the dynamics burst/handover
  scenarios: enough congestion to keep the marking adaptation live,
  enough leftover capacity that the ~repair overhead (r/k) does not
  starve the flow it is protecting.
"""

from __future__ import annotations

from ..analysis.stats import improvement
from ..analysis.tables import render_grouped
from ..faults import Blackout, BurstyLoss, FaultSchedule, Jitter
from ..middleware.adaptation import MarkingAdaptation
from ..transport.fec import FecConfig
from .common import ScenarioConfig, ScenarioResult

__all__ = ["SCENARIOS", "ARMS", "RELIABILITY_ARMS", "run_reliability",
           "reliability_metrics", "render_reliability"]

#: The repair profile the armed arm runs: 8 data + 1 repair per
#: generation at rest, adaptable up to 3 repairs (27% peak overhead)
#: by the coordinator's redundancy controller.
FEC_PROFILE = FecConfig(k=8, r=1, r_max=3, adaptive=True)

#: Comparison arms: config overrides on the same coordinated transport.
#: Ordered armed-first -- the renderer reports improvement of the first
#: arm over each of the rest.
ARMS: dict[str, dict] = {
    "iq+fec": {"transport": "iq", "fec": FEC_PROFILE},
    "iq": {"transport": "iq", "fec": None},
}

RELIABILITY_ARMS = tuple(ARMS)

#: Named loss-dynamics scenarios (fault schedule + calibration overrides).
SCENARIOS: dict[str, dict] = {
    # Gilbert-Elliott bursty wire loss with mild reordering jitter --
    # identical to the dynamics "burst" schedule so the two sweeps are
    # directly comparable.
    "burst": {
        "faults": FaultSchedule(
            BurstyLoss(start=3.0, stop=20.0, p_gb=0.01, p_bg=0.25),
            Jitter(start=3.0, stop=20.0, max_extra_s=0.008, p=0.2)),
        "overrides": {"cbr_bps": 12e6},
    },
    # Handover blackout followed by a lossy settle phase on the new path.
    "blackout": {
        "faults": FaultSchedule(
            Blackout(start=6.0, stop=6.8, direction="both"),
            BurstyLoss(start=6.8, stop=16.0, p_gb=0.02, p_bg=0.25)),
        "overrides": {"cbr_bps": 12e6},
    },
}


def _reliability_strategy() -> MarkingAdaptation:
    """Conflict-style marking adaptation, thresholds as in Table 3."""
    return MarkingAdaptation(upper=0.05, lower=0.01, backoff=0.10)


def _reliability_config(n_frames: int, seed: int) -> ScenarioConfig:
    """Table 3's changing-application regime (see :mod:`.dynamics`)."""
    return ScenarioConfig(
        workload="trace_clocked", n_frames=n_frames, frame_rate=25,
        frame_multiplier=3000, adaptation=_reliability_strategy,
        loss_tolerance=0.40, cbr_bps=18.5e6, metric_period=0.25,
        seed=seed, time_cap=900.0)


def run_reliability(*, schedules: tuple[str, ...] | None = None,
                    arms: tuple[str, ...] = RELIABILITY_ARMS,
                    n_frames: int = 250, seed: int = 1, jobs: int = 1,
                    cache=None, trace: str | None = None,
                    overrides: dict | None = None,
                    campaign_dir: str | None = None
                    ) -> dict[str, dict[str, ScenarioResult]]:
    """Run every (scenario, arm) cell; returns
    ``{scenario: {arm: ScenarioResult}}``.

    ``overrides`` are ``ScenarioConfig.replace`` keyword overrides applied
    to every cell (the CLI's ``--set key=value`` path); they take
    precedence over both the per-scenario calibration overrides and the
    per-arm overrides.  ``campaign_dir`` routes the sweep through a shared
    campaign directory for claim/resume semantics.
    """
    from ..campaign import run_rows
    names = tuple(schedules) if schedules else tuple(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(f"unknown reliability scenario {name!r}; "
                             f"available: {', '.join(SCENARIOS)}")
    for arm in arms:
        if arm not in ARMS:
            raise ValueError(f"unknown reliability arm {arm!r}; "
                             f"available: {', '.join(ARMS)}")
    base = _reliability_config(n_frames, seed)
    rows = {}
    for name in names:
        spec = SCENARIOS[name]
        cell = base.replace(faults=spec["faults"], **spec["overrides"])
        if overrides:
            cell = cell.replace(**overrides)
        for arm in arms:
            rows[f"{name}/{arm}"] = cell.replace(**ARMS[arm])
    flat = run_rows(rows, name="reliability", dir=campaign_dir, jobs=jobs,
                    cache=cache, trace=trace)
    return {name: {arm: flat[f"{name}/{arm}"] for arm in arms}
            for name in names}


def reliability_metrics(res: ScenarioResult) -> tuple[float, ...]:
    """(goodput fps, received %, duration s, recovered, repairs sent,
    final redundancy r, stalls).  The FEC columns read the armed-only
    summary keys and report 0 for ARQ arms."""
    s = res.summary
    return (s["goodput_fps"], s["pct_received"], s["duration_s"],
            s.get("obs_fec_recovered", 0.0),
            s.get("obs_fec_repairs_sent", 0.0),
            s.get("obs_fec_redundancy_final", 0.0),
            s["stalls"])


def render_reliability(results: dict[str, dict[str, ScenarioResult]]
                       ) -> str:
    """Grouped comparison table with a goodput-improvement line per
    scenario (armed = first arm vs each remaining arm)."""
    groups: dict[str, list[tuple]] = {}
    for sched, by_arm in results.items():
        rows: list[tuple] = []
        names = list(by_arm)
        for arm, res in by_arm.items():
            rows.append((arm,
                         *(round(x, 2) for x in reliability_metrics(res))))
        armed = by_arm[names[0]].summary["goodput_fps"]
        for baseline in names[1:]:
            gain = improvement(armed,
                               by_arm[baseline].summary["goodput_fps"])
            rows.append((f"goodput vs {baseline}", f"{gain:+.1f}%",
                         "", "", "", "", "", ""))
        groups[sched] = rows
    return render_grouped(
        "Reliability sweeps (FEC repair tier vs ARQ-only IQ-RUDP under "
        "loss dynamics)",
        ("arm", "Goodput fps", "Recv%", "Dur s", "Recovered", "Repairs",
         "r final", "Stalls"), groups)
