"""Section 3.2 baselines: Table 1 (basic comparison) and Table 2 (fairness).

Table 1 runs the changing-application workload against 18 Mb CBR cross
traffic under four schemes:

1. **TCP** -- Reno, no application adaptation.
2. **IQ-RUDP** -- LDA congestion control, no application adaptation.
3. **App adaptation only** -- congestion control *disabled* (fixed window;
   the paper "instrumented IQ-RUDP to disable its adaptive congestion window
   algorithm, but still provide performance metrics"), application adapts
   resolution on the exported loss ratio.
4. **IQ-RUDP w/ app adaptation** -- both control loops active, coordinated.

Table 2 swaps the cross traffic for a competing TCP bulk flow and runs the
application (without adaptation) over TCP and over IQ-RUDP; the paper's
point is that their throughputs are close, TCP slightly ahead.
"""

from __future__ import annotations

from ..middleware.adaptation import ResolutionAdaptation
from .common import ScenarioConfig, ScenarioResult

__all__ = ["TABLE1_ROWS", "PAPER_TABLE1", "run_table1",
           "TABLE2_ROWS", "PAPER_TABLE2", "run_table2"]

# Paper Table 1 (time s, throughput KB/s, inter-arrival s, jitter s).
PAPER_TABLE1 = {
    "TCP(1)": (313, 94.2, 0.239, 0.110),
    "IQ-RUDP(2)": (298, 98.2, 0.201, 0.098),
    "App adaptation only(3)": (158, 90.0, 0.114, 0.008),
    "IQ-RUDP w/ app adaptation(4)": (144, 95.6, 0.113, 0.058),
}
TABLE1_ROWS = tuple(PAPER_TABLE1)

# Paper Table 2 (time s, throughput KB/s, inter-arrival s, jitter s).
PAPER_TABLE2 = {
    "TCP": (51, 118.0, 0.022, 0.0001),
    "IQ-RUDP": (60, 99.0, 0.024, 0.0001),
}
TABLE2_ROWS = tuple(PAPER_TABLE2)


def _adaptation() -> ResolutionAdaptation:
    """Resolution adaptation with thresholds scaled to this testbed's
    per-period loss distribution (see EXPERIMENTS.md calibration notes)."""
    return ResolutionAdaptation(upper=0.02, lower=0.002, cooldown_s=2.0)


def _table1_config(n_frames: int, seed: int) -> ScenarioConfig:
    """Shared changing-application setup: MBone-trace frames at a fixed
    frame rate, offered load ~2.4x the bandwidth left over by the 18 Mb
    cross traffic (the paper's overload regime)."""
    return ScenarioConfig(
        workload="trace_clocked", n_frames=n_frames, frame_rate=25,
        frame_multiplier=3000, cbr_bps=18e6, metric_period=0.2,
        trace_step_s=0.2, seed=seed, time_cap=900.0)


def run_table1(*, n_frames: int = 250, seed: int = 1, jobs: int = 1,
               cache=None, trace: str | None = None,
               overrides: dict | None = None,
               campaign_dir: str | None = None) -> dict[str, ScenarioResult]:
    """Run all four Table 1 rows; returns row-name -> ScenarioResult.

    ``overrides`` are ``ScenarioConfig.replace`` overrides applied to every
    row (the CLI's ``--set key=value`` path); ``campaign_dir`` routes the
    rows through a shared campaign directory for claim/resume semantics
    (see :mod:`repro.campaign`); same for every ``run_table*``.
    """
    from ..campaign import run_rows
    base = _table1_config(n_frames, seed)
    if overrides:
        base = base.replace(**overrides)
    rows = {
        "TCP(1)": base.replace(transport="tcp"),
        "IQ-RUDP(2)": base.replace(transport="iq"),
        "App adaptation only(3)": base.replace(
            transport="rudp_nocc", adaptation=_adaptation,
            fixed_window=64.0),
        "IQ-RUDP w/ app adaptation(4)": base.replace(
            transport="iq", adaptation=_adaptation),
    }
    return run_rows(rows, name="table1", dir=campaign_dir, jobs=jobs,
                    cache=cache, trace=trace)


def run_table2(*, n_frames: int = 8000, seed: int = 1, jobs: int = 1,
               cache=None, trace: str | None = None,
               overrides: dict | None = None,
               campaign_dir: str | None = None) -> dict[str, ScenarioResult]:
    """Fairness: the greedy application against a TCP bulk competitor."""
    from ..campaign import run_rows
    base = ScenarioConfig(
        workload="greedy", n_frames=n_frames, base_frame_size=1400,
        tcp_cross_bytes=500_000_000, seed=seed, time_cap=300.0)
    if overrides:
        base = base.replace(**overrides)
    rows = {
        "TCP": base.replace(transport="tcp"),
        "IQ-RUDP": base.replace(transport="iq"),
    }
    return run_rows(rows, name="table2", dir=campaign_dir, jobs=jobs,
                    cache=cache, trace=trace)


def table_metrics(res: ScenarioResult) -> tuple[float, float, float, float]:
    """(time, throughput KB/s, message inter-arrival s, jitter s) -- the
    Table 1/2 column set."""
    s = res.summary
    return (s["duration_s"], s["throughput_kBps"], s["msg_interarrival_s"],
            s["msg_jitter_s"])
