"""Section 3.3: coordination against conflicting interests.

The application trades reliability for timeliness: above a 30% error ratio
it unmarks a fraction ``max(40, 1.25*eratio)%`` of its datagrams (every
fifth datagram stays tagged -- control information that must arrive); each
period below 5% it backs the unmark probability off by 20%.  Receiver loss
tolerance is 40%.

Coordinated (IQ-RUDP): the transport discards unmarked datagrams before
they touch the network, so tagged data flows promptly.  Uncoordinated
(RUDP): everything is sent within the congestion window; unmarked losses
are merely not retransmitted.  Expected shape (Tables 3/4): IQ-RUDP
finishes sooner with ~25% lower tagged delay/jitter while delivering fewer
messages -- still within the tolerance.

Figures 2/3 plot the per-packet delay jitter for the two schemes with the
cross traffic starting mid-run (the "sharp increase around the 500th
packet").

Calibration notes (documented deviations; see EXPERIMENTS.md):
* The paper's 30%/5% thresholds are driven by per-period loss spikes in its
  testbed; the changing-application variant scales them to 5%/1% on a
  250 ms measuring period, the changing-network variant keeps 30%/5% on a
  100 ms period (VBR bursts produce genuinely large spikes there).
* Cross-traffic rates are chosen to put the leftover bandwidth in the same
  overload regime as the paper's (its exact VBR trace scale is unknown).
"""

from __future__ import annotations

from ..middleware.adaptation import MarkingAdaptation
from .common import ScenarioConfig, ScenarioResult

__all__ = ["PAPER_TABLE3", "PAPER_TABLE4", "run_table3", "run_table4",
           "run_figure23", "conflict_metrics"]

# (duration s, msgs recvd %, tagged delay ms, tagged jitter, delay ms, jitter)
PAPER_TABLE3 = {
    "IQ-RUDP": (60.0, 72.0, 58.4, 6.6, 56.4, 6.6),
    "RUDP": (80.9, 91.0, 66.8, 9.1, 62.2, 7.9),
}
PAPER_TABLE4 = {
    "IQ-RUDP": (23.9, 63.0, 30.2, 3.1, 29.6, 3.1),
    "RUDP": (32.5, 87.4, 38.1, 4.3, 29.4, 3.8),
}

LOSS_TOLERANCE = 0.40


def _app_strategy() -> MarkingAdaptation:
    """Changing-application marking thresholds.

    The paper's 30%/5% pair matches *its* per-period loss distribution; our
    congestion-controlled flow with EACK repair sees lower per-period loss
    ratios for the same congestion, so the thresholds scale down to 5%/1%
    to give the adaptation the same duty cycle (see EXPERIMENTS.md).
    """
    return MarkingAdaptation(upper=0.05, lower=0.01, backoff=0.10)


def _changing_app_config(n_frames: int, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        workload="trace_clocked", n_frames=n_frames, frame_rate=25,
        frame_multiplier=3000, adaptation=_app_strategy,
        loss_tolerance=LOSS_TOLERANCE, cbr_bps=18.5e6, metric_period=0.25,
        seed=seed, time_cap=900.0)


def _changing_net_config(n_frames: int, seed: int) -> ScenarioConfig:
    """Greedy source against VBR bursts; the paper's 30%/5% thresholds are
    kept here because the VBR cross traffic produces genuinely large
    per-period loss spikes."""
    return ScenarioConfig(
        workload="greedy", n_frames=n_frames, base_frame_size=1400,
        adaptation=MarkingAdaptation, loss_tolerance=LOSS_TOLERANCE,
        cbr_bps=15e6, vbr_mean_bps=3.5e6, metric_period=0.1,
        seed=seed, time_cap=600.0)


def run_table3(*, n_frames: int = 250, seed: int = 1, jobs: int = 1,
               cache=None, trace: str | None = None,
               overrides: dict | None = None,
               campaign_dir: str | None = None) -> dict[str, ScenarioResult]:
    """Conflict, changing application: IQ-RUDP vs RUDP."""
    from ..campaign import run_rows
    base = _changing_app_config(n_frames, seed)
    if overrides:
        base = base.replace(**overrides)
    return run_rows({
        "IQ-RUDP": base.replace(transport="iq"),
        "RUDP": base.replace(transport="rudp"),
    }, name="table3", dir=campaign_dir, jobs=jobs, cache=cache, trace=trace)


def run_table4(*, n_frames: int = 6000, seed: int = 1, jobs: int = 1,
               cache=None, trace: str | None = None,
               overrides: dict | None = None,
               campaign_dir: str | None = None) -> dict[str, ScenarioResult]:
    """Conflict, changing network: IQ-RUDP vs RUDP."""
    from ..campaign import run_rows
    base = _changing_net_config(n_frames, seed)
    if overrides:
        base = base.replace(**overrides)
    return run_rows({
        "IQ-RUDP": base.replace(transport="iq"),
        "RUDP": base.replace(transport="rudp"),
    }, name="table4", dir=campaign_dir, jobs=jobs, cache=cache, trace=trace)


def run_figure23(*, n_frames: int = 6000, seed: int = 1, cbr_start: float = 2.0,
                 jobs: int = 1, cache=None,
               trace: str | None = None) -> dict[str, ScenarioResult]:
    """Figures 2/3: per-packet jitter series, cross traffic starting at
    ``cbr_start`` so the early packets see an idle network."""
    from ..runner import run_batch
    base = _changing_net_config(n_frames, seed).replace(cbr_start=cbr_start)
    return run_batch({
        "IQ-RUDP": base.replace(transport="iq"),
        "RUDP": base.replace(transport="rudp"),
    }, jobs=jobs, cache=cache, trace=trace)


def conflict_metrics(res: ScenarioResult) -> tuple[float, ...]:
    """Table 3/4 column set: duration, % received, tagged delay/jitter,
    all-packet delay/jitter (delays are datagram inter-arrivals, ms)."""
    s = res.summary
    return (s["duration_s"], s["pct_received"], s["tagged_delay_ms"],
            s["tagged_jitter_ms"], s["delay_ms"], s["jitter_ms"])
