"""Population scenarios: many concurrent foreground flows over one dumbbell.

The paper's evaluation runs a handful of flows; the ROADMAP's north star
(handover studies in the style of Mehani et al., PAPERS.md) needs thousands
of concurrent adaptive sessions to say anything about populations.  This
module is the scenario family that exercises the two-level speed tier end
to end:

* every flow under test is a real windowed transport (micro tier, burst
  links coalescing the per-packet hot path -- :mod:`repro.sim.batch`);
* background traffic is a :class:`~repro.sim.fluid.FluidSource` (macro
  tier), so the aggregate exerts congestion pressure at tick cost instead
  of per-packet cost.

Determinism contract: a :class:`PopulationResult` summary is a pure
function of the keyword arguments -- flow start times, transport choices
and every packet timing derive from the seed.  ``bench_population`` gates
wall-clock throughput on top of this; the summary itself carries no
wall-clock numbers.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..sim.engine import Simulator
from ..sim.fluid import FluidSource
from ..sim.rand import RandomStreams
from ..sim.topology import Dumbbell
from .common import TRANSPORTS, make_transport

__all__ = ["PopulationResult", "run_population", "DEFAULT_MIX"]

#: Default foreground transport mix: mostly coordinated IQ-RUDP sessions,
#: some plain RUDP, a TCP minority (weights, not fractions).
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("iq", 6.0), ("rudp", 3.0), ("tcp", 1.0))


class PopulationResult:
    """Aggregate outcome of one population run.

    ``summary`` is the deterministic metric bundle (see keys below);
    ``fcts`` holds per-flow completion times (None for unfinished flows)
    and ``transports`` the per-flow transport assignment, both in flow
    order, for analyses that need the raw distribution.
    """

    def __init__(self, *, summary: dict[str, float],
                 fcts: list[float | None], transports: list[str],
                 sim: Simulator, net: Dumbbell,
                 fluid: FluidSource | None):
        self.summary = summary
        self.fcts = fcts
        self.transports = transports
        self.sim = sim
        self.net = net
        self.fluid = fluid

    def __getitem__(self, key: str) -> float:
        return self.summary[key]


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted sequence (deterministic,
    no interpolation dialect to disagree about)."""
    if not sorted_vals:
        return 0.0
    idx = min(int(q * len(sorted_vals)), len(sorted_vals) - 1)
    return sorted_vals[idx]


def run_population(*, n_flows: int = 1000, frames_per_flow: int = 40,
                   frame_bytes: int = 1400,
                   transport_mix: Sequence[tuple[str, float]] = DEFAULT_MIX,
                   bottleneck_bps: float = 200e6, rtt_s: float = 0.030,
                   queue_pkts: int = 256, mss: int = 1400,
                   fluid_bps: float = 50e6,
                   arrival_window_s: float = 2.0,
                   time_cap: float = 60.0, seed: int = 1,
                   burst: bool = True) -> PopulationResult:
    """Run ``n_flows`` concurrent transfers with fluid background traffic.

    Each flow submits its whole transfer (``frames_per_flow`` frames of
    ``frame_bytes``) at a seeded start time uniform in
    ``[0, arrival_window_s)``, then runs to completion or ``time_cap``.
    Flows are lazily constructed at their start instant, so idle flows cost
    nothing.  Returns a :class:`PopulationResult`.
    """
    if n_flows <= 0:
        raise ValueError("n_flows must be positive")
    for name, weight in transport_mix:
        if name not in TRANSPORTS:
            raise ValueError(f"unknown transport {name!r} in mix")
        if weight <= 0:
            raise ValueError("mix weights must be positive")

    streams = RandomStreams(seed)
    rng = streams.get("population")
    names = [name for name, _ in transport_mix]
    weights = [w for _, w in transport_mix]
    transports = rng.choices(names, weights=weights, k=n_flows)
    starts = sorted(rng.uniform(0.0, arrival_window_s)
                    for _ in range(n_flows))

    sim = Simulator()
    if burst:
        sim.burst = True
    net = Dumbbell(sim, bottleneck_bps=bottleneck_bps, rtt_s=rtt_s,
                   mss=mss, queue_pkts=queue_pkts)
    fluid = None
    if fluid_bps > 0:
        fluid = FluidSource(sim, net.forward, rate_bps=fluid_bps)

    conns: list[Any] = [None] * n_flows
    fcts: list[float | None] = [None] * n_flows
    done = [0]  # closed-over mutable completion counter

    def _launch(i: int) -> None:
        snd, rcv = net.add_flow_hosts(f"p{i}")
        conn = make_transport(transports[i], sim, snd, rcv, mss=mss,
                              metric_period=0.5, loss_tolerance=None,
                              on_deliver=None)
        conns[i] = conn

        def _complete(t: float, i=i) -> None:
            fcts[i] = t - starts[i]
            done[0] += 1

        conn.sender.on_complete = _complete
        conn.sender.submit_burst([frame_bytes] * frames_per_flow,
                                 first_frame_id=0)
        conn.finish()

    for i, t0 in enumerate(starts):
        sim.at(t0, _launch, i)

    events = 0
    while sim.now < time_cap and done[0] < n_flows:
        events += sim.run(until=min(sim.now + 1.0, time_cap))
    if fluid is not None:
        fluid.stop()

    # -- aggregate ----------------------------------------------------------
    finished = sorted(t for t in fcts if t is not None)
    goodputs = [frames_per_flow * frame_bytes / t for t in finished if t > 0]
    if goodputs:
        total = sum(goodputs)
        fairness = total * total / (len(goodputs)
                                    * sum(g * g for g in goodputs))
        goodput_mean = total / len(goodputs)
    else:
        fairness = 0.0
        goodput_mean = 0.0
    datagrams = retrans = timeouts = 0
    for conn in conns:
        if conn is None:
            continue
        st = conn.sender.stats
        datagrams += st.submitted_segments
        retrans += st.retransmissions
        timeouts += st.timeouts
    qstats = net.bottleneck_queue.stats
    summary: dict[str, float] = {
        "flows": float(n_flows),
        "completed": float(len(finished)),
        "completion_ratio": len(finished) / n_flows,
        "duration_s": sim.now,
        "fct_mean_s": sum(finished) / len(finished) if finished else 0.0,
        "fct_p50_s": _percentile(finished, 0.50),
        "fct_p95_s": _percentile(finished, 0.95),
        "goodput_mean_kBps": goodput_mean / 1e3,
        "fairness": fairness,
        "datagrams": float(datagrams),
        "retransmissions": float(retrans),
        "timeouts": float(timeouts),
        "bottleneck_drops": float(qstats.drops),
        "bottleneck_util": net.utilization(sim.now) if sim.now > 0 else 0.0,
        "events": float(events),
    }
    if fluid is not None:
        summary["fluid_served_bytes"] = fluid.served_bytes
        summary["fluid_dropped_bytes"] = fluid.dropped_bytes
    return PopulationResult(summary=summary, fcts=fcts,
                            transports=transports, sim=sim, net=net,
                            fluid=fluid)
