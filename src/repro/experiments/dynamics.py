"""Dynamics sweeps: coordination under mid-flow network changes.

The paper's Emulab testbed only changes conditions at experiment boundaries.
These sweeps put the same coordinated-vs-uncoordinated question under
conditions that change *while the flow runs* -- link flaps, handovers
(blackout + capacity/delay cliff), bursty wire loss, capacity ramps -- the
regime FlEC and the heterogeneous-handover literature evaluate (PAPERS.md).

Every scenario runs the changing-application conflict workload (marking
adaptation, 40% receiver loss tolerance) in the Table 3 overload regime, so
the marking adaptation is live when the dynamics hit, and compares
**delivered-frame goodput** (``goodput_fps``: distinct frames that reached
the receiver, per second).  That metric is deliberate: under per-datagram
marking a frame whose droppable segments were shed still arrives in usable,
degraded form, so counting raw datagrams would score the conflict scheme's
intended discards as lost goodput.

Why coordination wins here: the uncoordinated transport queues unmarked
(droppable) data behind every outage and spends the recovery shoving stale
backlog through; IQ-RUDP discards unmarked datagrams at the sender
(conflict scheme), degrades further while its stall detector believes the
path is dead, and its blackout-aware loss estimation keeps ADAPT_COND
corrections from acting on outage loss ratios.

Calibration notes (empirical, same spirit as the Table 3 notes in
:mod:`repro.experiments.conflict`):

* Fault windows start at t >= 3 s -- after the congestion-driven marking
  adaptation has engaged (first upper callback fires ~3.5 s into the
  Table 3 regime) -- so the schedules stress a *live* adaptation loop.
* Per-scenario cross-traffic overrides keep each scenario out of the
  starvation regime (cross traffic above the post-fault capacity would
  starve the flow below MIN_PERIOD_SAMPLES and freeze the callback loop,
  turning the comparison into a degenerate tie).
"""

from __future__ import annotations

from ..analysis.stats import improvement
from ..analysis.tables import render_grouped
from ..faults import (BandwidthRamp, Blackout, BurstyLoss, DelayRamp,
                      FaultSchedule, Jitter, LinkFlap)
from ..middleware.adaptation import MarkingAdaptation
from .common import ScenarioConfig, ScenarioResult

__all__ = ["SCENARIOS", "SCHEDULES", "run_dynamics", "dynamics_metrics",
           "render_dynamics", "DYNAMICS_TRANSPORTS"]

#: Transports each scenario is swept over (coordinated first).
DYNAMICS_TRANSPORTS = ("iq", "rudp")

#: The named network-dynamics scenarios: fault schedule plus the
#: per-scenario config overrides that calibrate its congestion regime.
#: Times are absolute simulation seconds; the workload offers 10 s of
#: frames and drains its backlog for the rest of the run, so every
#: schedule overlaps the active transfer.
SCENARIOS: dict[str, dict] = {
    # Flaky last mile: 0.7 s outages every 2 s across emission and drain.
    # Long enough for the stall detector (3 consecutive RTOs) to declare
    # the path dead and trigger the coordinator's graceful degradation.
    "flap": {
        "faults": FaultSchedule(
            LinkFlap(start=5.0, stop=16.0, down_s=0.7, up_s=1.3,
                     direction="both")),
        "overrides": {},
    },
    # Handover: 0.8 s blackout, then the new path has less capacity and a
    # longer RTT (cliff at the blackout's end).  Lighter cross traffic:
    # the congestion that drives the adaptation comes from the handover
    # itself, and the post-handover leftover must stay above the offered
    # rate or both transports starve identically.
    "handover": {
        "faults": FaultSchedule(
            Blackout(start=6.0, stop=6.8, direction="both"),
            BandwidthRamp(start=6.8, stop=7.0, to_bps=16e6, steps=1,
                          direction="fwd"),
            DelayRamp(start=6.8, stop=7.0, to_s=0.025, steps=1,
                      direction="both")),
        "overrides": {"cbr_bps": 12e6},
    },
    # Bursty wire loss (Gilbert-Elliott, ~3.8% stationary) with mild
    # reordering jitter, on a moderately loaded path.
    "burst": {
        "faults": FaultSchedule(
            BurstyLoss(start=3.0, stop=20.0, p_gb=0.01, p_bg=0.25),
            Jitter(start=3.0, stop=20.0, max_extra_s=0.008, p=0.2)),
        "overrides": {"cbr_bps": 12e6},
    },
    # Capacity cliff down and back: ramp to 65% of the bottleneck over
    # 6 s, hold, then snap back.
    "cliff": {
        "faults": FaultSchedule(
            BandwidthRamp(start=4.0, stop=10.0, to_bps=13e6, steps=12,
                          direction="fwd"),
            BandwidthRamp(start=16.0, stop=17.0, to_bps=20e6, steps=2,
                          direction="fwd")),
        "overrides": {"cbr_bps": 12e6},
    },
}

#: Backwards-convenient view: scenario name -> its fault schedule.
SCHEDULES: dict[str, FaultSchedule] = {
    name: spec["faults"] for name, spec in SCENARIOS.items()}


def _dynamics_strategy() -> MarkingAdaptation:
    """Conflict-style marking adaptation, thresholds as in Table 3 (see
    the calibration notes in :mod:`repro.experiments.conflict`)."""
    return MarkingAdaptation(upper=0.05, lower=0.01, backoff=0.10)


def _dynamics_config(n_frames: int, seed: int) -> ScenarioConfig:
    """Table 3's changing-application regime: 25 fps trace frames against
    CBR cross traffic that leaves less than the offered rate, so the
    marking adaptation is active when the faults arrive."""
    return ScenarioConfig(
        workload="trace_clocked", n_frames=n_frames, frame_rate=25,
        frame_multiplier=3000, adaptation=_dynamics_strategy,
        loss_tolerance=0.40, cbr_bps=18.5e6, metric_period=0.25,
        seed=seed, time_cap=900.0)


def run_dynamics(*, schedules: tuple[str, ...] | None = None,
                 transports: tuple[str, ...] = DYNAMICS_TRANSPORTS,
                 n_frames: int = 250, seed: int = 1, jobs: int = 1,
                 cache=None, trace: str | None = None,
                 overrides: dict | None = None,
                 campaign_dir: str | None = None
                 ) -> dict[str, dict[str, ScenarioResult]]:
    """Run every (scenario, transport) cell; returns
    ``{scenario: {transport: ScenarioResult}}``.

    ``overrides`` are ``ScenarioConfig.replace`` keyword overrides applied
    to every cell (the CLI's ``--set key=value`` path); they take
    precedence over the per-scenario calibration overrides.
    ``campaign_dir`` routes the sweep through a shared campaign directory
    for claim/resume semantics (see :mod:`repro.campaign`).
    """
    from ..campaign import run_rows
    names = tuple(schedules) if schedules else tuple(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(f"unknown dynamics scenario {name!r}; "
                             f"available: {', '.join(SCENARIOS)}")
    base = _dynamics_config(n_frames, seed)
    rows = {}
    for name in names:
        spec = SCENARIOS[name]
        cell = base.replace(faults=spec["faults"], **spec["overrides"])
        if overrides:
            cell = cell.replace(**overrides)
        for tp in transports:
            rows[f"{name}/{tp}"] = cell.replace(transport=tp)
    flat = run_rows(rows, name="dynamics", dir=campaign_dir, jobs=jobs,
                    cache=cache, trace=trace)
    return {name: {tp: flat[f"{name}/{tp}"] for tp in transports}
            for name in names}


def dynamics_metrics(res: ScenarioResult) -> tuple[float, ...]:
    """(goodput fps, received %, duration s, tagged delay ms, stalls)."""
    s = res.summary
    return (s["goodput_fps"], s["pct_received"], s["duration_s"],
            s["tagged_delay_ms"], s["stalls"])


def render_dynamics(results: dict[str, dict[str, ScenarioResult]]) -> str:
    """Grouped comparison table with a goodput-improvement line per
    scenario (coordinated = first transport vs each baseline)."""
    groups: dict[str, list[tuple]] = {}
    for sched, by_tp in results.items():
        rows: list[tuple] = []
        names = list(by_tp)
        for tp, res in by_tp.items():
            rows.append((tp, *(round(x, 2) for x in dynamics_metrics(res))))
        coord = by_tp[names[0]].summary["goodput_fps"]
        for baseline in names[1:]:
            gain = improvement(coord,
                               by_tp[baseline].summary["goodput_fps"])
            rows.append((f"goodput vs {baseline}", f"{gain:+.1f}%",
                         "", "", "", ""))
        groups[sched] = rows
    return render_grouped(
        "Dynamics sweeps (coordinated vs uncoordinated under mid-flow "
        "network changes)",
        ("transport", "Goodput fps", "Recv%", "Dur s", "TagDly ms",
         "Stalls"), groups)
