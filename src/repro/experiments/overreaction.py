"""Section 3.4: coordination against over-reaction.

The application down-samples -- reduces its message size by the error ratio
above a 15% threshold, grows it back 10% per period below 1%.  Both the
application and the transport react to the same congestion signal, so
without coordination the joint effect overshoots: the flow ends up below
its fair share with worse quality *and* worse delay.  IQ-RUDP re-inflates
its packet window to ``1/(1 - rate_chg)`` when told about the size
reduction (frames below one MSS), keeping the bit rate at the fair share.

Table 5 is the changing-application variant (trace-driven sub-MSS frames);
Table 6 sweeps the iperf cross traffic over 12/16/18 Mbps in the
changing-network variant; Figure 4 plots the relative improvement, which
grows with congestion (throughput +6%..+25%, jitter -20%..-76%).
"""

from __future__ import annotations

from ..middleware.adaptation import ResolutionAdaptation
from .common import ScenarioConfig, ScenarioResult

__all__ = ["PAPER_TABLE5", "PAPER_TABLE6", "run_table5", "run_table6",
           "overreaction_metrics", "figure4_improvements"]

# (throughput KB/s, duration s, delay ms, jitter)
PAPER_TABLE5 = {
    "IQ-RUDP": (380.0, 39.0, 10.4, 0.78),
    "RUDP": (367.0, 42.0, 15.2, 0.83),
}

# cross rate Mbps -> row name -> (throughput KB/s, duration s, delay ms, jitter)
PAPER_TABLE6 = {
    12: {"IQ-RUDP": (506.0, 9.5, 3.8, 0.20), "RUDP": (478.0, 10.9, 4.6, 0.25)},
    16: {"IQ-RUDP": (131.0, 26.1, 10.2, 6.4), "RUDP": (109.0, 31.0, 12.4, 10.3)},
    18: {"IQ-RUDP": (99.0, 51.0, 14.0, 19.0), "RUDP": (79.0, 85.0, 22.0, 80.0)},
}


def _app_strategy() -> ResolutionAdaptation:
    """Resolution thresholds scaled to this testbed's per-period loss
    distribution (same reasoning as the conflict experiments: the paper's
    15%/1% pair matches its loss process; our congestion-controlled flow
    with EACK repair sees lower per-period ratios for the same congestion).

    The changing-application source is clocked, so one cut per congestion
    episode (2 s cooldown) keeps the app's control loop on the transport's
    once-per-window reduction cadence.
    """
    return ResolutionAdaptation(upper=0.05, lower=0.005, cooldown_s=2.0)


def _net_strategy() -> ResolutionAdaptation:
    """Changing-network variant: the greedy source re-evaluates every
    measurement period (level-triggered, as the paper's algorithm reads);
    repeated cuts during sustained VBR bursts are exactly the over-reaction
    the coordination compensates."""
    return ResolutionAdaptation(upper=0.05, lower=0.005, cooldown_s=0.0)


def _changing_app_config(n_frames: int, seed: int) -> ScenarioConfig:
    """Trace-driven frames scaled into the sub-MSS range (multiplier 150 B
    per group member) so resolution adaptation crosses the window
    re-inflation condition, at 200 fps for a ~2.4 Mb offered load."""
    return ScenarioConfig(
        workload="trace_clocked", n_frames=n_frames, frame_rate=200,
        frame_multiplier=150, adaptation=_app_strategy,
        cbr_bps=18e6, metric_period=0.5, seed=seed, time_cap=900.0)


def _changing_net_config(cbr_bps: float, n_frames: int, seed: int
                         ) -> ScenarioConfig:
    return ScenarioConfig(
        workload="greedy", n_frames=n_frames, base_frame_size=1400,
        adaptation=_net_strategy, cbr_bps=cbr_bps,
        vbr_mean_bps=1.0e6, metric_period=0.5, seed=seed, time_cap=900.0)


def run_table5(*, n_frames: int = 8000, seed: int = 2, jobs: int = 1,
               cache=None, trace: str | None = None,
               overrides: dict | None = None,
               campaign_dir: str | None = None) -> dict[str, ScenarioResult]:
    from ..campaign import run_rows
    base = _changing_app_config(n_frames, seed)
    if overrides:
        base = base.replace(**overrides)
    return run_rows({
        "IQ-RUDP": base.replace(transport="iq"),
        "RUDP": base.replace(transport="rudp"),
    }, name="table5", dir=campaign_dir, jobs=jobs, cache=cache, trace=trace)


def run_table6(*, rates_mbps: tuple[int, ...] = (12, 16, 18),
               n_frames: int = 12000, seed: int = 2, jobs: int = 1,
               cache=None, trace: str | None = None,
               overrides: dict | None = None,
               campaign_dir: str | None = None
               ) -> dict[int, dict[str, ScenarioResult]]:
    """The congestion sweep; same VBR cross traffic across rates.

    All six (rate, scheme) runs are independent, so the whole sweep fans
    out as one flat batch before reshaping into the nested table form.
    """
    from ..campaign import run_rows
    configs: dict[tuple[int, str], ScenarioConfig] = {}
    for rate in rates_mbps:
        base = _changing_net_config(rate * 1e6, n_frames, seed)
        if overrides:
            base = base.replace(**overrides)
        configs[(rate, "IQ-RUDP")] = base.replace(transport="iq")
        configs[(rate, "RUDP")] = base.replace(transport="rudp")
    flat = run_rows(configs, name="table6", dir=campaign_dir, jobs=jobs,
                    cache=cache, trace=trace)
    out: dict[int, dict[str, ScenarioResult]] = {}
    for (rate, name), res in flat.items():
        out.setdefault(rate, {})[name] = res
    return out


def overreaction_metrics(res: ScenarioResult) -> tuple[float, ...]:
    """Table 5/6 column set: throughput, duration, delay, jitter."""
    s = res.summary
    return (s["throughput_kBps"], s["duration_s"], s["delay_ms"],
            s["jitter_ms"])


def figure4_improvements(table6: dict[int, dict[str, ScenarioResult]]
                         ) -> dict[int, dict[str, float]]:
    """Figure 4: percent improvement of IQ-RUDP over RUDP per cross rate."""
    out: dict[int, dict[str, float]] = {}
    for rate, rows in table6.items():
        iq = rows["IQ-RUDP"].summary
        ru = rows["RUDP"].summary
        out[rate] = {
            "throughput_pct": 100.0 * (iq["throughput_kBps"]
                                       / max(ru["throughput_kBps"], 1e-9) - 1),
            "duration_pct": 100.0 * (1 - iq["duration_s"]
                                     / max(ru["duration_s"], 1e-9)),
            "delay_pct": 100.0 * (1 - iq["delay_ms"]
                                  / max(ru["delay_ms"], 1e-9)),
            "jitter_pct": 100.0 * (1 - iq["jitter_ms"]
                                   / max(ru["jitter_ms"], 1e-9)),
        }
    return out
