"""Scenario construction and execution shared by all experiments.

A scenario is: the paper's dumbbell, one application flow under test on a
chosen transport, cross traffic (CBR "iperf" and/or MBone-VBR and/or a TCP
bulk flow), and an application adaptation strategy.  :func:`run_scenario`
builds it, runs to completion (or a time cap) and returns the standard
metric bundle plus the raw logs for figure benches.

Workload sizing note: the paper's absolute durations (up to 313 s) come
from a ~30 MB trace workload; we default to a 400-frame (~10 MB) workload so
each run simulates in about a second while preserving every ratio the
tables report.  Benches can pass ``n_frames`` to scale up.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from ..analysis.stats import flow_summary
from ..faults import FaultInjector, FaultSchedule
from ..invariants import CheckedSimulator, InvariantChecker
from ..middleware.adaptation import AdaptationStrategy, NullAdaptation
from ..obs.bus import TraceBus
from ..obs.flight import flight_from_env
from ..obs.metrics import MetricsRegistry, collect_scenario_metrics
from ..obs.spans import SpanRecorder
from ..obs.telemetry import TelemetryConfig, TelemetryRecorder
from ..middleware.application import AdaptiveSource
from ..middleware.receiver import DeliveryLog
from ..sim.engine import Simulator
from ..sim.fluid import FluidSource
from ..sim.rand import RandomStreams
from ..sim.topology import PAPER_BOTTLENECK_BPS, PAPER_RTT_S, Dumbbell
from ..traffic.bulk import BulkSource
from ..traffic.cbr import CbrSource
import numpy as np

from ..traffic.mbone import mbone_trace, trace_frame_sizes
from ..traffic.vbr import VbrSource
from ..transport.cc import FixedWindowCC, RenoCC
from ..transport.fec import FecConfig
from ..transport.iq_rudp import IqRudpConnection
from ..transport.rudp import RudpConnection
from ..transport.tcp import TcpConnection
from ..transport.udp import UdpSender, UdpSink

__all__ = ["ScenarioConfig", "ScenarioResult", "run_scenario",
           "TRANSPORTS", "make_transport"]

#: Transport-under-test factory registry.  Each entry builds a connection
#: given (sim, sender_host, receiver_host, config kwargs).
TRANSPORTS = ("tcp", "rudp", "rudp_nocc", "rudp_reno", "iq", "iq_nocond",
              "iq_nodiscard", "iq_noreinflate")


class ScenarioConfig:
    """Bag of scenario parameters with paper defaults.

    Workload modes (``workload``):

    * ``"trace_clocked"`` -- changing-application: frames of
      trace[i] * ``frame_multiplier`` bytes at ``frame_rate`` fps.
    * ``"greedy"`` -- changing-network: ``n_frames`` datagrams of
      ``base_frame_size`` bytes, sent as fast as the transport allows.
    * ``"fixed_clocked"`` -- Table 8's rate-based app: fixed-size frames at
      ``frame_rate`` fps.
    """

    def __init__(self, *, transport: str = "iq",
                 workload: str = "trace_clocked",
                 adaptation: Callable[[], AdaptationStrategy] | None = None,
                 n_frames: int = 400,
                 frame_rate: float = 10.0,
                 frame_multiplier: int = 3000,
                 base_frame_size: int = 1400,
                 bottleneck_bps: float = PAPER_BOTTLENECK_BPS,
                 rtt_s: float = PAPER_RTT_S,
                 queue_pkts: int = 64,
                 mss: int = 1400,
                 loss_tolerance: float | None = None,
                 metric_period: float = 0.5,
                 cbr_bps: float = 0.0,
                 cbr_start: float = 0.0,
                 step_cross: tuple[float, float, float] | None = None,
                 vbr_mean_bps: float = 0.0,
                 vbr_frame_rate: float = 500.0,
                 vbr_params=None,
                 trace_step_s: float = 1.0,
                 tcp_cross_bytes: int | None = None,
                 seed: int = 1,
                 time_cap: float = 600.0,
                 fixed_window: float = 64.0,
                 faults: FaultSchedule | None = None,
                 invariants: bool = False,
                 telemetry: TelemetryConfig | None = None,
                 burst: bool = False,
                 fluid_bps: float = 0.0,
                 spans: bool = False,
                 fec: FecConfig | str | None = None,
                 frame_deadline_s: float = 0.0):
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}")
        if workload not in ("trace_clocked", "greedy", "fixed_clocked"):
            raise ValueError(f"unknown workload {workload!r}")
        if faults is not None and not isinstance(faults, FaultSchedule):
            raise TypeError(f"faults must be a FaultSchedule or None, "
                            f"got {type(faults).__name__}")
        if telemetry is not None and not isinstance(telemetry,
                                                    TelemetryConfig):
            raise TypeError(f"telemetry must be a TelemetryConfig or None, "
                            f"got {type(telemetry).__name__}")
        if fluid_bps < 0:
            raise ValueError("fluid_bps must be non-negative")
        fec = FecConfig.parse(fec)
        if fec is not None and transport == "tcp":
            raise ValueError("TCP has no FEC repair tier (fec requires a "
                             "rudp-family transport)")
        if frame_deadline_s < 0:
            raise ValueError("frame_deadline_s must be non-negative")
        self.transport = transport
        self.workload = workload
        self.adaptation = adaptation
        self.n_frames = n_frames
        self.frame_rate = frame_rate
        self.frame_multiplier = frame_multiplier
        self.base_frame_size = base_frame_size
        self.bottleneck_bps = bottleneck_bps
        self.rtt_s = rtt_s
        self.queue_pkts = queue_pkts
        self.mss = mss
        self.loss_tolerance = loss_tolerance
        self.metric_period = metric_period
        self.cbr_bps = cbr_bps
        self.cbr_start = cbr_start
        self.step_cross = step_cross
        self.vbr_mean_bps = vbr_mean_bps
        self.vbr_frame_rate = vbr_frame_rate
        self.vbr_params = vbr_params
        self.trace_step_s = trace_step_s
        self.tcp_cross_bytes = tcp_cross_bytes
        self.seed = seed
        self.time_cap = time_cap
        self.fixed_window = fixed_window
        self.faults = faults
        self.invariants = invariants
        self.telemetry = telemetry
        # Speed tiers (repro.sim.batch / repro.sim.fluid).  ``burst``
        # coalesces the link hot path with bit-identical results; it is
        # part of the config (and the cache key) purely for transparency --
        # burst and per-packet runs of the same scenario produce the same
        # summary (enforced by tests and the fuzzer's burst differential).
        # ``fluid_bps`` adds fluid background traffic on the forward
        # bottleneck; unlike ``burst`` it is a *model* choice and changes
        # results vs per-packet cross traffic.
        self.burst = bool(burst)
        self.fluid_bps = float(fluid_bps)
        # Causal frame-lineage spans (repro.obs.spans).  Purely passive --
        # armed summaries are bit-identical to disarmed ones -- but the
        # flag is part of the config (and cache key) because the result
        # artifact differs: ``ScenarioResult.spans`` carries the lineage.
        self.spans = bool(spans)
        # Application-tailored reliability (repro.transport.fec): a
        # FecConfig arms the repair tier on the flow under test; the
        # stable repr makes armed configs cache/fingerprint cleanly, and
        # None leaves every code path bit-identical to pre-FEC behaviour.
        self.fec = fec
        # Per-frame delivery budget for deadline-aware scheduling (the
        # AdaptiveSource stamps submit-time + this on every segment);
        # 0.0 disables it.
        self.frame_deadline_s = float(frame_deadline_s)

    def replace(self, **kw: Any) -> "ScenarioConfig":
        """Copy with overrides (sweep helper).

        Unknown keys are rejected with a close-match suggestion -- a typo
        in a sweep override must fail loudly, not silently configure
        nothing.
        """
        unknown = sorted(set(kw) - set(self.__dict__))
        if unknown:
            import difflib
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, self.__dict__, n=1)
                hints.append(f"{name!r}" + (f" (did you mean {close[0]!r}?)"
                                            if close else ""))
            raise ValueError(
                f"unknown ScenarioConfig field(s): {', '.join(hints)}; "
                f"valid fields: {', '.join(sorted(self.__dict__))}")
        fields = {k: v for k, v in self.__dict__.items()}
        fields.update(kw)
        return ScenarioConfig(**fields)


class ScenarioResult:
    """Everything a bench or test needs from one run."""

    #: Discriminator against :class:`repro.runner.FailedResult` -- batch
    #: consumers can filter a mixed result list on ``res.failed``.
    failed = False
    #: Invariant sweeps executed (armed runs overwrite per instance).
    invariant_checks = 0
    #: Sampled time-series payload (:class:`repro.obs.telemetry.Telemetry`);
    #: populated per instance only when ``ScenarioConfig(telemetry=...)``
    #: armed the recorder, so disarmed results (and old cached pickles)
    #: read None from the class.
    telemetry = None
    #: The scenario's :class:`~repro.sim.fluid.FluidSource` (fluid
    #: background traffic), when ``ScenarioConfig(fluid_bps=...)`` armed
    #: one; class-level None keeps old cached pickles readable.
    fluid = None
    #: Causal frame-lineage artifact (:meth:`repro.obs.spans.SpanRecorder.
    #: finalize` output) when ``ScenarioConfig(spans=True)``; else None.
    spans = None
    #: Flight-recorder dump (:meth:`repro.obs.flight.FlightRecorder.dump`)
    #: -- populated on every run unless ``REPRO_FLIGHT=0`` disabled it.
    flight = None

    def __init__(self, *, summary: dict[str, float], log: DeliveryLog,
                 conn, source: AdaptiveSource | None,
                 strategy: AdaptationStrategy,
                 net: Dumbbell, sim: Simulator, completed: bool,
                 tcp_cross=None, registry: MetricsRegistry | None = None,
                 injector=None):
        self.summary = summary
        self.log = log
        self.conn = conn
        self.source = source
        self.strategy = strategy
        self.net = net
        self.sim = sim
        self.completed = completed
        self.tcp_cross = tcp_cross
        self.registry = registry
        self.injector = injector
        # Populated by the traced batch path: the run's TraceEvent list.
        self.trace = None

    def __getitem__(self, key: str) -> float:
        return self.summary[key]

    def detach(self) -> "ScenarioResult":
        """Make the result serialisable (for worker transport / caching).

        Drains the simulator's event heap: a completed scenario may still
        hold queued cross-traffic events whose callbacks close over local
        state that cannot be pickled (and carries no information a bench
        or test reads).  Everything benches assert on -- ``summary``,
        ``log``, ``conn`` counters/metrics, ``strategy``/``source`` state,
        ``net`` queue stats -- survives.  Returns ``self``.
        """
        self.sim.drain()
        return self


def make_transport(name: str, sim: Simulator, snd_host, rcv_host, *,
                   mss: int, metric_period: float,
                   loss_tolerance: float | None,
                   on_deliver, fixed_window: float = 64.0,
                   hardening: dict[str, Any] | None = None,
                   fec: FecConfig | None = None):
    """Instantiate a transport-under-test by registry name.

    ``hardening`` (rto_jitter/rto_rng/stall_threshold kwargs) is passed
    through to every transport; ``run_scenario`` supplies it only when the
    scenario carries a :class:`~repro.faults.FaultSchedule`, so fault-free
    runs are bit-identical to the pre-dynamics code path.  ``fec`` arms
    the XOR repair tier on any rudp-family transport (TCP rejects it).
    """
    hard = hardening or {}
    if name == "tcp":
        if fec is not None:
            raise ValueError("TCP has no FEC repair tier")
        return TcpConnection(sim, snd_host, rcv_host, mss=mss,
                             metric_period=metric_period,
                             on_deliver=on_deliver, **hard)
    kw: dict[str, Any] = dict(mss=mss, metric_period=metric_period,
                              loss_tolerance=loss_tolerance,
                              on_deliver=on_deliver, **hard)
    if fec is not None:
        kw["fec"] = fec
    if name == "rudp":
        return RudpConnection(sim, snd_host, rcv_host, **kw)
    if name == "rudp_nocc":
        return RudpConnection(sim, snd_host, rcv_host,
                              cc=FixedWindowCC(fixed_window), **kw)
    if name == "rudp_reno":
        # Ablation: RUDP machinery with TCP's halving law instead of LDA.
        return RudpConnection(sim, snd_host, rcv_host, cc=RenoCC(), **kw)
    if name == "iq":
        return IqRudpConnection(sim, snd_host, rcv_host, **kw)
    if name == "iq_nocond":
        return IqRudpConnection(sim, snd_host, rcv_host,
                                use_adapt_cond=False, **kw)
    if name == "iq_nodiscard":
        return IqRudpConnection(sim, snd_host, rcv_host,
                                discard_unmarked=False, **kw)
    if name == "iq_noreinflate":
        return IqRudpConnection(sim, snd_host, rcv_host,
                                reinflate_window=False, **kw)
    raise ValueError(f"unknown transport {name!r}")


def run_scenario(cfg: ScenarioConfig, *, trace_sink=None,
                 profile=None) -> ScenarioResult:
    """Build and execute one scenario; see module docstring.

    ``trace_sink`` (any object with ``append(TraceEvent)``) turns on event
    tracing for this run: an enabled :class:`~repro.obs.TraceBus` is bound
    to the simulator *before* topology/transport construction so every
    component caches the live bus.  Tracing is deliberately not part of
    ``ScenarioConfig`` -- it never changes results, so it must not change
    cache keys.

    ``profile`` (an :class:`~repro.obs.profiler.EngineProfile`) swaps in
    the self-profiling engine and records coarse setup/run/collect phase
    timers into it.  Like tracing it never changes results and is not part
    of the config; unlike tracing it cannot combine with armed invariants
    (both claim the engine run loop by subclassing).

    Every run additionally carries an always-on flight recorder
    (:mod:`repro.obs.flight`, disable with ``REPRO_FLIGHT=0``): created
    *before* any scenario construction so even a setup crash leaves a
    dump, which is attached to the raised exception as ``flight_dump``
    (the runner moves it onto :class:`~repro.runner.FailedResult`) and to
    ``ScenarioResult.flight`` on success.
    """
    flight = flight_from_env()
    if flight is not None:
        flight.note("run", "START",
                    scenario=f"{cfg.transport}/{cfg.workload}"
                             f"/seed={cfg.seed}")
    try:
        return _run_scenario(cfg, flight, trace_sink=trace_sink,
                             profile=profile)
    except BaseException as exc:
        if flight is not None:
            flight.note("run", "EXCEPTION", error=type(exc).__name__)
            try:
                exc.flight_dump = flight.dump()
            except Exception:
                pass  # exotic exceptions without a __dict__ lose the dump
        raise


def _run_scenario(cfg: ScenarioConfig, flight, *, trace_sink=None,
                  profile=None) -> ScenarioResult:
    # Invariant checking (repro.invariants): the checked engine plus a
    # periodic read-only checker.  Armed and disarmed runs produce
    # bit-identical summaries -- checks observe, never steer -- so the
    # flag deliberately *is* part of the config (and the cache key): a
    # violation aborts the run, which is a different outcome.
    armed = cfg.invariants or bool(os.environ.get("REPRO_INVARIANTS"))
    if profile is not None:
        if armed:
            raise ValueError(
                "profiling and armed invariants are mutually exclusive "
                "(both replace the engine run loop)")
        from ..obs.profiler import ProfiledSimulator
        from time import perf_counter
        sim = ProfiledSimulator(profile)
        _t_phase = perf_counter()
    else:
        sim = CheckedSimulator() if armed else Simulator()
    if trace_sink is not None:
        sim.bus = TraceBus(sim, sinks=[trace_sink])
    # Burst speed tier: the Dumbbell reads this flag and builds BatchLink
    # everywhere.  REPRO_BURST is a process-wide opt-in (like
    # REPRO_INVARIANTS); safe outside the config key because burst runs
    # are bit-identical to per-packet runs.
    if cfg.burst or bool(os.environ.get("REPRO_BURST")):
        sim.burst = True
    # Forensics: the flight recorder and (when armed) the span recorder
    # must hang off the simulator *before* topology construction -- links
    # cache ``sim.flight``/``sim.spans`` at build time.
    if flight is not None:
        flight.bind(sim)
        sim.flight = flight
    spans = None
    if cfg.spans:
        spans = SpanRecorder(
            sim, scenario=f"{cfg.transport}/{cfg.workload}/seed={cfg.seed}")
        sim.spans = spans
    streams = RandomStreams(cfg.seed)
    net = Dumbbell(sim, bottleneck_bps=cfg.bottleneck_bps, rtt_s=cfg.rtt_s,
                   mss=cfg.mss, queue_pkts=cfg.queue_pkts)
    if spans is not None:
        spans.watch_network(net)

    # -- network dynamics ---------------------------------------------------
    injector = None
    hardening = None
    if cfg.faults is not None:
        injector = FaultInjector(sim, net, cfg.faults,
                                 streams.get("faults"))
        injector.install()
        # Transport hardening rides with the schedule: decorrelated
        # retransmission timers and endpoint stall detection (see
        # WindowedSender) are only active when the network actually moves,
        # so every paper-table scenario stays bit-identical.
        hardening = dict(rto_jitter=0.1, rto_rng=streams.get("rto"),
                         stall_threshold=3)

    # -- flow under test ----------------------------------------------------
    snd_host, rcv_host = net.add_flow_hosts("app")
    log = DeliveryLog()
    conn = make_transport(cfg.transport, sim, snd_host, rcv_host,
                          mss=cfg.mss, metric_period=cfg.metric_period,
                          loss_tolerance=cfg.loss_tolerance,
                          on_deliver=log.on_deliver,
                          fixed_window=cfg.fixed_window,
                          hardening=hardening, fec=cfg.fec)
    if spans is not None:
        spans.watch_flow(conn)

    strategy = cfg.adaptation() if cfg.adaptation else NullAdaptation()
    if not isinstance(strategy, NullAdaptation) and cfg.transport == "tcp":
        raise ValueError("TCP has no adaptation callbacks")

    app_rng = streams.get("app")
    if cfg.workload == "trace_clocked":
        # Hold each membership-trace sample for trace_step_s of frames:
        # group size evolves on a seconds timescale (Figure 1), the frame
        # clock much faster.
        hold = max(int(cfg.frame_rate * cfg.trace_step_s), 1)
        n_steps = (cfg.n_frames + hold - 1) // hold
        steps = trace_frame_sizes(n_steps, cfg.frame_multiplier,
                                  seed=cfg.seed)
        sizes = np.repeat(steps, hold)[:cfg.n_frames]
        source = AdaptiveSource(sim, conn, strategy=strategy,
                                frame_sizes=sizes, frame_rate=cfg.frame_rate,
                                mss=cfg.mss, rng=app_rng,
                                frame_deadline_s=cfg.frame_deadline_s)
    elif cfg.workload == "fixed_clocked":
        source = AdaptiveSource(sim, conn, strategy=strategy,
                                base_frame_size=cfg.base_frame_size,
                                n_frames=cfg.n_frames,
                                frame_rate=cfg.frame_rate,
                                mss=cfg.mss, rng=app_rng,
                                frame_deadline_s=cfg.frame_deadline_s)
    else:  # greedy
        source = AdaptiveSource(sim, conn, strategy=strategy,
                                base_frame_size=cfg.base_frame_size,
                                n_frames=cfg.n_frames, frame_rate=None,
                                mss=cfg.mss, rng=app_rng,
                                frame_deadline_s=cfg.frame_deadline_s)
        conn.sender.on_space = source.pump

    # -- cross traffic --------------------------------------------------------
    if cfg.cbr_bps > 0:
        c_snd, c_rcv = net.add_flow_hosts("cbr")
        cbr_tx = UdpSender(sim, c_snd, port=7001, peer_addr=c_rcv.address,
                           peer_port=7001, mss=cfg.mss)
        UdpSink(sim, c_rcv, port=7001, flow_id=cbr_tx.flow_id)
        CbrSource(sim, cbr_tx, rate_bps=cfg.cbr_bps, payload_bytes=cfg.mss,
                  start=cfg.cbr_start)
    if cfg.vbr_mean_bps > 0:
        v_snd, v_rcv = net.add_flow_hosts("vbr")
        vbr_tx = UdpSender(sim, v_snd, port=7002, peer_addr=v_rcv.address,
                           peer_port=7002, mss=cfg.mss)
        UdpSink(sim, v_rcv, port=7002, flow_id=vbr_tx.flow_id)
        # Paper: frame size = trace group size x 2000 B at 500 fps.  The
        # original trace's group-size scale is unknown, so we derive the
        # multiplier from the target mean rate instead (see DESIGN.md) --
        # the burstiness still comes from the membership trace.
        groups = mbone_trace(2000, seed=cfg.seed + 1, params=cfg.vbr_params)
        multiplier = max(cfg.vbr_mean_bps
                         / (8.0 * float(groups.mean()) * cfg.vbr_frame_rate),
                         1.0)
        vbr_sizes = np.maximum((groups * multiplier).astype(np.int64), 64)
        VbrSource(sim, vbr_tx, frame_sizes=vbr_sizes,
                  frame_rate=cfg.vbr_frame_rate,
                  trace_step_s=cfg.trace_step_s)
    if cfg.step_cross is not None:
        # Deterministic "available bandwidth changes": a second UDP source
        # alternating between a low and a high rate every half period.
        low_bps, high_bps, period_s = cfg.step_cross
        s_snd, s_rcv = net.add_flow_hosts("step")
        step_tx = UdpSender(sim, s_snd, port=7004, peer_addr=s_rcv.address,
                            peer_port=7004, mss=cfg.mss)
        UdpSink(sim, s_rcv, port=7004, flow_id=step_tx.flow_id)
        step_src = CbrSource(sim, step_tx, rate_bps=low_bps,
                             payload_bytes=cfg.mss)

        def _toggle(high: bool) -> None:
            step_src.set_rate(high_bps if high else low_bps)
            sim.schedule(period_s / 2.0, _toggle, not high)

        sim.schedule(period_s / 2.0, _toggle, True)
    fluid = None
    if cfg.fluid_bps > 0:
        # Macro-tier background traffic: no per-packet cost, same mean
        # congestion pressure (see repro.sim.fluid).
        fluid = FluidSource(sim, net.forward, rate_bps=cfg.fluid_bps,
                            start=cfg.cbr_start)
    tcp_cross = None
    if cfg.tcp_cross_bytes is not None:
        t_snd, t_rcv = net.add_flow_hosts("tcpx")
        cross_log = DeliveryLog()
        tcp_cross = TcpConnection(sim, t_snd, t_rcv, port=7003, mss=cfg.mss,
                                  on_deliver=cross_log.on_deliver)
        bulk = BulkSource(tcp_cross, chunk_bytes=cfg.mss,
                          total_bytes=cfg.tcp_cross_bytes)
        tcp_cross.sender.on_space = bulk.pump
        tcp_cross.cross_log = cross_log  # type: ignore[attr-defined]
        sim.at(0.0, bulk.start)

    # -- invariants ---------------------------------------------------------
    checker = None
    if armed:
        checker = InvariantChecker(
            sim, scenario=f"{cfg.transport}/{cfg.workload}/seed={cfg.seed}")
        checker.watch_network(net)
        checker.watch_flow(conn, log)
        if tcp_cross is not None:
            checker.watch_flow(tcp_cross, tcp_cross.cross_log)
        checker.arm()

    # -- telemetry ----------------------------------------------------------
    recorder = None
    if cfg.telemetry is not None:
        recorder = TelemetryRecorder(sim, cfg.telemetry)
        recorder.watch_flow(conn)
        recorder.watch_network(net)
        recorder.arm()

    # -- run ----------------------------------------------------------------
    if profile is not None:
        now = perf_counter()
        profile.phase("setup", now - _t_phase)
        _t_phase = now
    source.start(at=0.0)
    while sim.now < cfg.time_cap and not conn.completed:
        sim.run(until=min(sim.now + 1.0, cfg.time_cap))
    if checker is not None:
        checker.final()
    if profile is not None:
        now = perf_counter()
        profile.phase("run", now - _t_phase)
        _t_phase = now

    summary = flow_summary(
        log, submitted_datagrams=conn.sender.stats.submitted_segments)
    summary["completed"] = float(conn.completed)
    summary["error_ratio_lifetime"] = conn.sender.metrics.lifetime_error_ratio
    summary["stalls"] = float(conn.sender.stats.stalls)
    summary["stall_recoveries"] = float(conn.sender.stats.stall_recoveries)
    registry = collect_scenario_metrics(MetricsRegistry(), conn=conn, net=net,
                                        strategy=strategy, source=source,
                                        log=log)
    summary.update(registry.summary(prefix="obs_"))
    res = ScenarioResult(summary=summary, log=log, conn=conn, source=source,
                         strategy=strategy, net=net, sim=sim,
                         completed=conn.completed, tcp_cross=tcp_cross,
                         registry=registry, injector=injector)
    if fluid is not None:
        res.fluid = fluid
    if checker is not None:
        # Deliberately an attribute, not a summary key: armed and disarmed
        # summaries must stay bit-identical (the differential fuzz oracle
        # compares them).
        res.invariant_checks = checker.checks_run
    if recorder is not None:
        # Rides the result through pickling and the cache (the batch
        # persister strips only ``trace``), so sweeps get series for free.
        res.telemetry = recorder.data
    if flight is not None:
        res.flight = flight.dump()
    if spans is not None:
        res.spans = spans.finalize()
    if profile is not None:
        profile.phase("collect", perf_counter() - _t_phase)
    return res
