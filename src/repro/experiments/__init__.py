"""Evaluation harness: one module per paper section, shared scenario runner.

Experiment index (see DESIGN.md for the full mapping):

========  ==========================  ==============================
Artifact  Module                      Entry point
========  ==========================  ==============================
Table 1   :mod:`.baseline`            :func:`.baseline.run_table1`
Table 2   :mod:`.baseline`            :func:`.baseline.run_table2`
Table 3   :mod:`.conflict`            :func:`.conflict.run_table3`
Table 4   :mod:`.conflict`            :func:`.conflict.run_table4`
Figs 2/3  :mod:`.conflict`            :func:`.conflict.run_figure23`
Table 5   :mod:`.overreaction`        :func:`.overreaction.run_table5`
Table 6   :mod:`.overreaction`        :func:`.overreaction.run_table6`
Fig 4     :mod:`.overreaction`        :func:`.overreaction.figure4_improvements`
Table 7   :mod:`.granularity`         :func:`.granularity.run_table7`
Table 8   :mod:`.granularity`         :func:`.granularity.run_table8`
--        :mod:`.population`          :func:`.population.run_population`
========  ==========================  ==============================

The population scenario family is an extension beyond the paper's tables:
1k+ concurrent flows on the burst/fluid speed tier (see EXPERIMENTS.md,
"Scale tiers").
"""

from .common import TRANSPORTS, ScenarioConfig, ScenarioResult, run_scenario
from .population import PopulationResult, run_population

__all__ = ["TRANSPORTS", "ScenarioConfig", "ScenarioResult", "run_scenario",
           "PopulationResult", "run_population"]
