"""Section 3.5: coordination against limited adaptation granularity.

The application can only adapt at every 20th frame, so by the time it acts,
(a) the transport has been waiting, and (b) the network conditions its
decision was based on may be stale.  Three schemes:

1. **RUDP** -- the callback "returns void"; the transport never learns when
   the delayed adaptation lands.
2. **IQ-RUDP w/o ADAPT_COND** -- the callback returns ``ADAPT_WHEN=pending``;
   when the boundary frame finally carries ``ADAPT_PKTSIZE``, the window is
   immediately re-inflated by ``1/(1-rate_chg)``.
3. **IQ-RUDP w/ ADAPT_COND** -- additionally carries the error ratio the
   decision was based on, letting the transport correct for drift (Eq. 1).

Table 7 is the changing-application variant on the default 30 ms-RTT path;
Table 8 the changing-network variant on a 250 ms-RTT path (125 ms one-way)
with 14 Mb cross traffic and a rate-based application.  Expected ordering:
RUDP < IQ w/o ADAPT_COND < IQ w/ ADAPT_COND, with ADAPT_COND recovering an
~18% throughput win and a large (~38%) jitter win.
"""

from __future__ import annotations

from ..middleware.adaptation import DelayedResolutionAdaptation
from .common import ScenarioConfig, ScenarioResult

__all__ = ["PAPER_TABLE7", "PAPER_TABLE8", "run_table7", "run_table8",
           "granularity_metrics"]

# (duration s, throughput KB/s, delay ms, jitter)
PAPER_TABLE7 = {
    "IQ-RUDP w/o ADAPT_COND": (140.0, 97.0, 0.097 * 1e3, 0.047 * 1e3),
    "RUDP": (144.0, 95.6, 0.113 * 1e3, 0.058 * 1e3),
}
PAPER_TABLE8 = {
    "IQ-RUDP w/ ADAPT_COND": (22.1, 37.8, 6.5, 0.8),
    "IQ-RUDP w/o ADAPT_COND": (22.7, 33.8, 6.7, 1.1),
    "RUDP": (23.2, 32.0, 6.8, 1.3),
}

#: The paper's "divisible by 20" boundary at its coarse frame timescale; at
#: our 200 fps frame clock the equivalent 2-second adaptation granularity is
#: 400 frames (see EXPERIMENTS.md, calibration notes).
BOUNDARY = 400


def _strategy() -> DelayedResolutionAdaptation:
    return DelayedResolutionAdaptation(boundary=BOUNDARY, upper=0.05,
                                       lower=0.005)


def _changing_app_config(n_frames: int, seed: int) -> ScenarioConfig:
    """Same sub-MSS trace workload as Table 5, with the boundary-limited
    strategy (paper: "the application registers the same pair of call-backs
    as in Section 3.4, but it can only start to adapt at the next
    application frame with a sequence number divisible by 20")."""
    return ScenarioConfig(
        workload="trace_clocked", n_frames=n_frames, frame_rate=200,
        frame_multiplier=150, adaptation=_strategy,
        cbr_bps=18e6, metric_period=0.25, seed=seed, time_cap=900.0)


def _changing_net_config(n_frames: int, seed: int) -> ScenarioConfig:
    """Long-RTT path (125 ms one-way), rate-based app with packet-sized
    frames, 14 Mb iperf plus a deterministic low/high cross-traffic square
    wave implementing "the available network bandwidth changes"."""
    return ScenarioConfig(
        workload="fixed_clocked", n_frames=n_frames, frame_rate=200,
        base_frame_size=1400, adaptation=_strategy,
        rtt_s=0.250, cbr_bps=14e6, step_cross=(1e6, 5e6, 16.0),
        metric_period=0.25, seed=seed, time_cap=900.0)


def run_table7(*, n_frames: int = 8000, seed: int = 1, jobs: int = 1,
               cache=None, trace: str | None = None,
               overrides: dict | None = None,
               campaign_dir: str | None = None) -> dict[str, ScenarioResult]:
    """Granularity, changing application: IQ (w/o ADAPT_COND) vs RUDP.

    The paper only runs scheme (2) here because with a changing application
    "eratio usually does not change a lot" during the delay.
    """
    from ..campaign import run_rows
    base = _changing_app_config(n_frames, seed)
    if overrides:
        base = base.replace(**overrides)
    return run_rows({
        "IQ-RUDP w/o ADAPT_COND": base.replace(transport="iq_nocond"),
        "RUDP": base.replace(transport="rudp"),
    }, name="table7", dir=campaign_dir, jobs=jobs, cache=cache, trace=trace)


def run_table8(*, n_frames: int = 6000, seed: int = 1, jobs: int = 1,
               cache=None, trace: str | None = None,
               overrides: dict | None = None,
               campaign_dir: str | None = None) -> dict[str, ScenarioResult]:
    """Granularity, changing network: all three schemes on the long path."""
    from ..campaign import run_rows
    base = _changing_net_config(n_frames, seed)
    if overrides:
        base = base.replace(**overrides)
    return run_rows({
        "IQ-RUDP w/ ADAPT_COND": base.replace(transport="iq"),
        "IQ-RUDP w/o ADAPT_COND": base.replace(transport="iq_nocond"),
        "RUDP": base.replace(transport="rudp"),
    }, name="table8", dir=campaign_dir, jobs=jobs, cache=cache, trace=trace)


def granularity_metrics(res: ScenarioResult) -> tuple[float, ...]:
    """Table 7/8 column set: duration, throughput, delay, jitter."""
    s = res.summary
    return (s["duration_s"], s["throughput_kBps"], s["delay_ms"],
            s["jitter_ms"])
