"""IQ-RUDP coordination engine (the paper's core contribution).

The engine sits inside the sender and consumes the application -> transport
attribute flow from two sources:

* return values of threshold callbacks (immediate adaptations), and
* attribute lists piggybacked on ``cmwritev_attr`` send calls (delayed
  adaptations, section 3.5's limited-granularity case).

It implements the three coordination schemes evaluated in the paper:

**Conflicting interests (section 3.3).**  When the application reports a
reliability adaptation (:data:`ADAPT_MARK` = current unmark probability), the
transport "starts to discard unmarked datagrams before sending them onto the
network", so tagged/marked data stops queueing behind droppable data.
Plain RUDP keeps sending everything, which is what the paper contrasts
against.

**Over-reaction (section 3.4).**  When the application reports a resolution
adaptation (:data:`ADAPT_PKTSIZE` = ``rate_chg``, the fractional frame-size
reduction), the transport window (in packets) no longer carries the same bit
rate; to keep the flow at its fair share, the engine re-inflates the window
to ``1/(1 - rate_chg)`` of its value -- but only "if the current application
frame is smaller than the maximum RUDP segment size" (larger frames still
segment into MSS packets, so the packet window's bit rate is unchanged).
A *frequency* adaptation (:data:`ADAPT_FREQ`) deliberately triggers no window
change: "for a frequency adaptation, IQ-RUDP does not have to increase the
window size since the reduction of application frame frequency has the same
effect".

**Limited granularity / obsolete information (section 3.5).**  A callback may
return :data:`ADAPT_WHEN` = ``"pending"``; the transport then adapts on its
own until the application's next send carries the executed adaptation.  If
the send also carries :data:`ADAPT_COND` (the error ratio the application's
decision was based on), the engine corrects for network drift during the
delay.  The paper's Eq. 1 as typeset reads
``((1-eratio_new)/(1-eratio)) / (1/(1-rate_chg))``, which *shrinks* the
window for a size reduction and contradicts both the surrounding prose and
the measured Table 8 ordering; we implement the evident intent::

    w <- w * (1 / (1 - rate_chg)) * ((1 - eratio_new) / (1 - eratio))

i.e. compensate the frame-size reduction, then scale by how the loss ratio
drifted while the adaptation was pending.
"""

from __future__ import annotations

from ..obs.events import ATTR_RECEIVED, COORD_ACTION
from .attributes import (ADAPT_COND, ADAPT_FEC, ADAPT_FREQ, ADAPT_MARK,
                         ADAPT_PKTSIZE, ADAPT_WHEN, AttributeSet)

__all__ = ["Coordinator", "NullCoordinator", "IQCoordinator"]


class Coordinator:
    """Interface the sender drives.  Subclasses implement the schemes."""

    def bind(self, sender) -> None:
        """Attach to a sender (called from the sender's constructor)."""
        self.sender = sender

    def on_callback_result(self, attrs: AttributeSet) -> None:
        """Attributes returned by a threshold callback."""

    def on_send_attrs(self, attrs: AttributeSet) -> None:
        """Attributes piggybacked on a data submit (``cmwritev_attr``)."""

    def on_stall(self, now: float) -> None:
        """The sender's stall detector declared the path dead (see
        ``stall_threshold`` in :class:`~repro.transport.base
        .WindowedSender`).  Default: no reaction."""

    def on_resume(self, now: float) -> None:
        """Forward progress resumed after a stall.  Default: no reaction."""

    def on_period(self, pm) -> None:
        """One metric period rolled (the sender's measuring-period tick);
        ``pm`` is the :class:`~repro.core.metrics_export.PeriodMetrics`
        snapshot.  Default: no reaction."""


class NullCoordinator(Coordinator):
    """Plain RUDP: application adaptations are invisible to the transport.

    This is the uncoordinated baseline every experiment compares against --
    the transport still adapts its window to congestion, but knows nothing
    about what the application is doing.
    """


class IQCoordinator(Coordinator):
    """Full IQ-RUDP coordination.

    Ablation switches:

    * ``discard_unmarked`` -- conflict scheme on/off.
    * ``reinflate_window`` -- over-reaction scheme on/off.
    * ``use_adapt_cond`` -- obsolete-information correction on/off
      (Table 8's "IQ-RUDP w/o ADAPT_COND" sets this False).
    """

    def __init__(self, *, discard_unmarked: bool = True,
                 reinflate_window: bool = True,
                 use_adapt_cond: bool = True):
        self.enable_discard = discard_unmarked
        self.enable_reinflate = reinflate_window
        self.use_adapt_cond = use_adapt_cond
        self.sender = None
        # Introspection counters (used by tests and EXPERIMENTS.md notes).
        self.window_rescales = 0
        self.discard_switches = 0
        self.pending_adaptations = 0
        self.cond_corrections = 0
        self.freq_adaptations = 0
        self.stalls = 0
        self.stall_recoveries = 0
        self.fec_adaptations = 0
        self.fec_boosts = 0
        self._discard_before_stall: bool | None = None
        # Redundancy-controller state (inert unless the sender's FEC tier
        # is armed and adaptive).
        self._fec_r_before_stall: int | None = None
        self._fec_last_recovered = 0
        self._fec_last_unrecoverable = 0
        self._fec_clean_periods = 0
        self._fec_min_rtt: float | None = None

    # ------------------------------------------------------------------
    def on_callback_result(self, attrs: AttributeSet) -> None:
        self._apply(attrs)

    def on_send_attrs(self, attrs: AttributeSet) -> None:
        self._apply(attrs)

    # ------------------------------------------------------------------
    # Stall-driven graceful degradation (network-dynamics hardening).
    # While the path is believed dead the sender sheds unmarked backlog --
    # there is no point queueing droppable data behind an outage -- so the
    # data the application cares about goes first the moment the link
    # returns.  The pre-stall discard policy is restored on resume; these
    # actions carry no ``attr_seq`` because no application attribute
    # exchange caused them (the report shows them as transport-initiated).
    # ------------------------------------------------------------------
    def on_stall(self, now: float) -> None:
        snd = self.sender
        if snd is None:
            return
        self._fec_stall_boost(snd, now)
        if not self.enable_discard:
            return
        self.stalls += 1
        if self._discard_before_stall is None:
            self._discard_before_stall = snd.discard_unmarked
        snd.discard_unmarked = True
        sp = getattr(snd, "spans", None)
        if sp is not None:
            sp.on_action(None, "stall_degrade",
                         restored_policy=self._discard_before_stall)
        fl = getattr(snd, "flight", None)
        if fl is not None:
            fl.note("coord", "ACTION", flow=snd.flow_id,
                    action="stall_degrade",
                    restored_policy=self._discard_before_stall)
        tm = getattr(snd, "telemetry", None)
        if tm is not None:
            tm.annotate(now, "stall_degrade",
                        restored_policy=self._discard_before_stall)
        tr = getattr(snd, "trace", None)
        if tr is not None and tr.enabled:
            tr.emit("coord", COORD_ACTION, flow=snd.flow_id,
                    action="stall_degrade",
                    restored_policy=self._discard_before_stall)

    def on_resume(self, now: float) -> None:
        snd = self.sender
        if snd is None:
            return
        self._fec_stall_relax(snd, now)
        if self._discard_before_stall is None:
            return
        self.stall_recoveries += 1
        snd.discard_unmarked = self._discard_before_stall
        self._discard_before_stall = None
        sp = getattr(snd, "spans", None)
        if sp is not None:
            sp.on_action(None, "stall_recover",
                         discard_unmarked=snd.discard_unmarked)
        fl = getattr(snd, "flight", None)
        if fl is not None:
            fl.note("coord", "ACTION", flow=snd.flow_id,
                    action="stall_recover",
                    discard_unmarked=snd.discard_unmarked)
        tm = getattr(snd, "telemetry", None)
        if tm is not None:
            tm.annotate(now, "stall_recover",
                        discard_unmarked=snd.discard_unmarked)
        tr = getattr(snd, "trace", None)
        if tr is not None and tr.enabled:
            tr.emit("coord", COORD_ACTION, flow=snd.flow_id,
                    action="stall_recover",
                    discard_unmarked=snd.discard_unmarked)

    # ------------------------------------------------------------------
    # FEC redundancy coordination.  The coding rate is a quality attribute
    # like any other: the application can set it (ADAPT_FEC below), and
    # the coordinator re-adapts it from observed loss/stall telemetry --
    # more repair segments inside loss bursts and around blackouts, shed
    # back to the configured base once the loss estimator clears.  All of
    # it is inert unless the connection armed a FEC tier.
    # ------------------------------------------------------------------
    def _fec_emit(self, snd, now: float, action: str, **fields) -> None:
        """The four-surface emission pattern for transport-initiated FEC
        actions (no ``attr_seq``: no attribute exchange caused them)."""
        sp = getattr(snd, "spans", None)
        if sp is not None:
            sp.on_action(None, action, **fields)
        fl = getattr(snd, "flight", None)
        if fl is not None:
            fl.note("coord", "ACTION", flow=snd.flow_id, action=action,
                    **fields)
        tm = getattr(snd, "telemetry", None)
        if tm is not None:
            tm.annotate(now, action, **fields)
        tr = getattr(snd, "trace", None)
        if tr is not None and tr.enabled:
            tr.emit("coord", COORD_ACTION, flow=snd.flow_id, action=action,
                    **fields)

    def _fec_stall_boost(self, snd, now: float) -> None:
        fx = getattr(snd, "fec_tx", None)
        if fx is None or not fx.state.cfg.adaptive:
            return
        state = fx.state
        if self._fec_r_before_stall is None:
            self._fec_r_before_stall = state.r
        r_before = state.r
        r_after = state.set_redundancy(state.cfg.r_max)
        if r_after != r_before:
            self.fec_boosts += 1
            self._fec_emit(snd, now, "fec_boost", r_before=r_before,
                           r_after=r_after)

    def _fec_stall_relax(self, snd, now: float) -> None:
        if self._fec_r_before_stall is None:
            return
        fx = getattr(snd, "fec_tx", None)
        restore = self._fec_r_before_stall
        self._fec_r_before_stall = None
        if fx is None:
            return
        state = fx.state
        r_before = state.r
        # Generations flushed around the resume already went out at
        # ``r_max`` (the boost covered the settle's first moments);
        # restore the pre-stall rate and let the period controller
        # re-raise only if the decoder shows the tail is still lossy --
        # holding extra redundancy through the post-blackout backlog
        # drain would steal bandwidth exactly when it is scarcest.
        r_after = state.set_redundancy(restore)
        if r_after != r_before:
            self._fec_emit(snd, now, "fec_relax", r_before=r_before,
                           r_after=r_after)

    def on_period(self, pm) -> None:
        snd = self.sender
        if snd is None:
            return
        fx = getattr(snd, "fec_tx", None)
        if fx is None or not fx.state.cfg.adaptive:
            return
        state = fx.state
        recovered_delta = state.recovered - self._fec_last_recovered
        self._fec_last_recovered = state.recovered
        short_delta = state.unrecoverable - self._fec_last_unrecoverable
        self._fec_last_unrecoverable = state.unrecoverable
        if pm.blackout or self._fec_r_before_stall is not None:
            # A dead link's ~100% loss says nothing about the coding rate
            # the live path needs; the stall boost owns redundancy here.
            return
        meaningful = pm.sent >= snd.MIN_PERIOD_SAMPLES
        eratio = pm.error_ratio if meaningful else 0.0
        # Congestion discriminator: queue drops inflate the measured RTT
        # (standing queue) while wire loss does not.  Redundancy must
        # track *wire* loss only -- repair segments displace data at a
        # saturated bottleneck, so raising ``r`` on congestion loss feeds
        # the very drops it reacts to.
        if pm.rtt > 0:
            self._fec_min_rtt = (pm.rtt if self._fec_min_rtt is None
                                 else min(self._fec_min_rtt, pm.rtt))
        congested = (self._fec_min_rtt is not None
                     and pm.rtt > 1.5 * self._fec_min_rtt)
        r_before = state.r
        if congested:
            # Self-inflicted loss regime: shed straight toward the base
            # rate; ARQ inside the recovered window is the cheaper tool.
            self._fec_clean_periods = 0
            r_after = (state.set_redundancy(r_before - 1)
                       if r_before > state.cfg.r else r_before)
        elif recovered_delta > 0 or short_delta > 0:
            # The decoder is earning its keep (or arriving one repair
            # short): the live path is bursty, add a repair segment.
            self._fec_clean_periods = 0
            r_after = state.set_redundancy(r_before + 1)
        elif meaningful and eratio <= 0.005:
            # Clean period; shed redundancy after a few in a row.
            self._fec_clean_periods += 1
            if self._fec_clean_periods >= 4 and r_before > state.cfg.r:
                self._fec_clean_periods = 0
                r_after = state.set_redundancy(r_before - 1)
            else:
                r_after = r_before
        else:
            r_after = r_before
        if r_after != r_before:
            self.fec_adaptations += 1
            self._fec_emit(snd, snd.sim.now, "fec_redundancy",
                           r_before=r_before, r_after=r_after,
                           error_ratio=eratio, recovered=recovered_delta,
                           congested=congested)

    # ------------------------------------------------------------------
    def _apply(self, attrs: AttributeSet) -> None:
        snd = self.sender
        if snd is None:
            raise RuntimeError("coordinator not bound to a sender")

        # Trace the exchange; every action below back-references attr_seq so
        # the report's audit can pair attribute -> transport action.
        tr = getattr(snd, "trace", None)
        traced = tr is not None and tr.enabled
        attr_seq = -1
        if traced:
            attr_seq = tr.emit("coord", ATTR_RECEIVED, flow=snd.flow_id,
                               attrs=attrs.as_dict())

        # Lineage/forensics: open a coordination episode for the exchange;
        # every action below pairs with it (the span analogue of attr_seq).
        sp = getattr(snd, "spans", None)
        episode = sp.on_attrs(attrs.as_dict()) if sp is not None else None
        fl = getattr(snd, "flight", None)
        if fl is not None:
            fl.note("coord", "ATTR", flow=snd.flow_id,
                    attrs=attrs.as_dict())

        when = attrs.get(ADAPT_WHEN)
        if when == "pending":
            # The application will adapt later (limited granularity).  The
            # transport keeps adapting on its own; nothing to change now.
            self.pending_adaptations += 1
            if sp is not None:
                sp.on_action(episode, "pending")
            if fl is not None:
                fl.note("coord", "ACTION", flow=snd.flow_id,
                        action="pending")
            if traced:
                tr.emit("coord", COORD_ACTION, flow=snd.flow_id,
                        attr_seq=attr_seq, action="pending")
            return

        if ADAPT_MARK in attrs and self.enable_discard:
            p = float(attrs[ADAPT_MARK])
            want = p > 1e-9
            changed = want != snd.discard_unmarked
            if changed:
                self.discard_switches += 1
            snd.discard_unmarked = want
            if sp is not None:
                sp.on_action(episode, "discard", enabled=want,
                             changed=changed, unmark_p=p)
            if fl is not None:
                fl.note("coord", "ACTION", flow=snd.flow_id,
                        action="discard", enabled=want, changed=changed,
                        unmark_p=p)
            if traced:
                tr.emit("coord", COORD_ACTION, flow=snd.flow_id,
                        attr_seq=attr_seq, action="discard",
                        enabled=want, changed=changed, unmark_p=p)

        if ADAPT_FREQ in attrs:
            # Deliberately no window change (see module docstring).
            self.freq_adaptations += 1
            if sp is not None:
                sp.on_action(episode, "freq_no_window_change",
                             freq_chg=float(attrs[ADAPT_FREQ]))
            if fl is not None:
                fl.note("coord", "ACTION", flow=snd.flow_id,
                        action="freq_no_window_change",
                        freq_chg=float(attrs[ADAPT_FREQ]))
            if traced:
                tr.emit("coord", COORD_ACTION, flow=snd.flow_id,
                        attr_seq=attr_seq, action="freq_no_window_change",
                        freq_chg=float(attrs[ADAPT_FREQ]))

        if ADAPT_FEC in attrs:
            requested = int(attrs[ADAPT_FEC])
            fx = getattr(snd, "fec_tx", None)
            if fx is not None:
                state = fx.state
                r_before = state.r
                r_after = state.set_redundancy(requested)
                changed = r_after != r_before
                if changed:
                    self.fec_adaptations += 1
                    self._fec_clean_periods = 0
                if sp is not None:
                    sp.on_action(episode, "fec_redundancy",
                                 requested=requested, r_before=r_before,
                                 r_after=r_after, changed=changed)
                if fl is not None:
                    fl.note("coord", "ACTION", flow=snd.flow_id,
                            action="fec_redundancy", requested=requested,
                            r_before=r_before, r_after=r_after,
                            changed=changed)
                if traced:
                    tr.emit("coord", COORD_ACTION, flow=snd.flow_id,
                            attr_seq=attr_seq, action="fec_redundancy",
                            requested=requested, r_before=r_before,
                            r_after=r_after, changed=changed)
            else:
                # The application asked for coding on a connection with no
                # FEC tier: record the mismatch, change nothing.
                if sp is not None:
                    sp.on_action(episode, "fec_unavailable",
                                 requested=requested)
                if fl is not None:
                    fl.note("coord", "ACTION", flow=snd.flow_id,
                            action="fec_unavailable", requested=requested)
                if traced:
                    tr.emit("coord", COORD_ACTION, flow=snd.flow_id,
                            attr_seq=attr_seq, action="fec_unavailable",
                            requested=requested)

        if ADAPT_PKTSIZE in attrs and self.enable_reinflate:
            rate_chg = float(attrs[ADAPT_PKTSIZE])
            if rate_chg >= 1.0:
                raise ValueError(f"ADAPT_PKTSIZE rate_chg {rate_chg} >= 1")
            if snd.last_frame_size < snd.mss:
                base_factor = 1.0 / (1.0 - rate_chg)
                factor = base_factor
                drift = 1.0
                cond = attrs.get(ADAPT_COND)
                if cond is not None and self.use_adapt_cond:
                    e_old = float(cond.get("error_ratio", 0.0))
                    e_new = snd.current_error_ratio()
                    if e_old < 1.0:
                        drift = (1.0 - e_new) / (1.0 - e_old)
                        factor *= drift
                        self.cond_corrections += 1
                cwnd_before = snd.cc.cwnd
                snd.cc.scale_window(factor)
                self.window_rescales += 1
                if sp is not None:
                    sp.on_action(episode, "window_rescale",
                                 rate_chg=rate_chg, base_factor=base_factor,
                                 drift=drift, factor=factor,
                                 cwnd_before=cwnd_before,
                                 cwnd_after=snd.cc.cwnd)
                if fl is not None:
                    fl.note("coord", "ACTION", flow=snd.flow_id,
                            action="window_rescale", factor=factor,
                            cwnd_before=cwnd_before, cwnd_after=snd.cc.cwnd)
                tm = getattr(snd, "telemetry", None)
                if tm is not None:
                    # Pin the re-inflation onto the sampled cwnd series so
                    # the trajectory shows *why* the window jumped.
                    tm.annotate(snd.sim.now, "window_rescale",
                                rate_chg=rate_chg, base_factor=base_factor,
                                drift=drift, factor=factor,
                                cwnd_before=cwnd_before,
                                cwnd_after=snd.cc.cwnd)
                if traced:
                    tr.emit("coord", COORD_ACTION, flow=snd.flow_id,
                            attr_seq=attr_seq, action="window_rescale",
                            rate_chg=rate_chg, base_factor=base_factor,
                            drift=drift, factor=factor,
                            cwnd_before=cwnd_before, cwnd_after=snd.cc.cwnd)
            else:
                if sp is not None:
                    sp.on_action(episode, "rescale_skipped_large_frame",
                                 rate_chg=rate_chg,
                                 last_frame_size=snd.last_frame_size,
                                 mss=snd.mss)
                if fl is not None:
                    fl.note("coord", "ACTION", flow=snd.flow_id,
                            action="rescale_skipped_large_frame",
                            rate_chg=rate_chg)
                if traced:
                    tr.emit("coord", COORD_ACTION, flow=snd.flow_id,
                            attr_seq=attr_seq,
                            action="rescale_skipped_large_frame",
                            rate_chg=rate_chg,
                            last_frame_size=snd.last_frame_size, mss=snd.mss)
