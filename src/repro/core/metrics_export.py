"""Transport-side measurement and metric export.

Paper section 2.1, mechanism (1): "the application can query for a group of
network performance metrics maintained by IQ-RUDP anytime during a
connection's lifetime".  :class:`MetricsWindow` accumulates per-period
counters inside the sender; at the end of each measurement period the sender
publishes the snapshot into the connection's
:class:`~repro.core.attributes.AttributeService` and feeds the error ratio to
the callback registry.

The *error ratio* is the paper's adaptation trigger: "the condition that
triggers the adaptation is network congestion level, or loss ratio as seen by
the end system" (section 3.1).  We measure it at the sender as
retransmission-triggering events over packets sent in the period, which is
exactly the loss the end system can see.
"""

from __future__ import annotations

from ..obs.bus import NULL_BUS
from ..obs.events import PERIOD_ROLL
from .attributes import (NET_CWND, NET_ERROR_RATIO, NET_RATE, NET_RTT,
                         AttributeService)

__all__ = ["MetricsWindow", "PeriodMetrics"]


class PeriodMetrics:
    """Immutable snapshot of one measurement period.

    ``blackout`` marks a period measured while the sender believed the
    path was dead (stall detection, see
    :class:`~repro.transport.base.WindowedSender`): its loss ratio
    describes an outage, not congestion, and must not drive adaptation.
    """

    __slots__ = ("time", "sent", "lost", "acked_bytes", "error_ratio",
                 "rate_bps", "rtt", "cwnd", "blackout")

    def __init__(self, time: float, sent: int, lost: int, acked_bytes: int,
                 period: float, rtt: float, cwnd: float,
                 blackout: bool = False):
        self.time = time
        self.sent = sent
        self.lost = lost
        self.acked_bytes = acked_bytes
        self.error_ratio = lost / sent if sent else 0.0
        self.rate_bps = acked_bytes * 8.0 / period if period > 0 else 0.0
        self.rtt = rtt
        self.cwnd = cwnd
        self.blackout = blackout

    def as_dict(self) -> dict:
        return {
            "time": self.time, "sent": self.sent, "lost": self.lost,
            "error_ratio": self.error_ratio, "rate_bps": self.rate_bps,
            "rtt": self.rtt, "cwnd": self.cwnd, "blackout": self.blackout,
        }


class MetricsWindow:
    """Per-period counters plus lifetime history.

    The sender calls :meth:`count_sent` / :meth:`count_lost` /
    :meth:`count_acked_bytes` on the hot path (attribute increments only) and
    :meth:`roll` once per measurement period.
    """

    def __init__(self, period: float, service: AttributeService | None = None):
        if period <= 0:
            raise ValueError("metric period must be positive")
        self.period = period
        self.service = service
        self._sent = 0
        self._lost = 0
        self._acked_bytes = 0
        self.history: list[PeriodMetrics] = []
        self.total_sent = 0
        self.total_lost = 0
        #: Error ratio of the most recent *non-blackout* period -- the
        #: coordination engine's ``eratio_new`` (Eq. 1).  An outage period
        #: would report ~100% loss and make ADAPT_COND's drift correction
        #: collapse the window off a dead link, so blackout periods never
        #: update this.
        self.last_clean_error_ratio = 0.0
        # The owning sender rebinds these when its simulator is traced.
        self.trace = NULL_BUS
        self.flow = -1
        if service is not None:
            for name in (NET_ERROR_RATIO, NET_RATE, NET_RTT, NET_CWND):
                service.register(name, 0.0)

    # -- hot path ---------------------------------------------------------
    def count_sent(self, n: int = 1) -> None:
        self._sent += n
        self.total_sent += n

    def count_lost(self, n: int = 1) -> None:
        self._lost += n
        self.total_lost += n

    def count_acked_bytes(self, n: int) -> None:
        self._acked_bytes += n

    # -- period boundary ----------------------------------------------------
    def roll(self, now: float, rtt: float, cwnd: float,
             blackout: bool = False) -> PeriodMetrics:
        """Close the current period, publish, and reset counters."""
        pm = PeriodMetrics(now, self._sent, self._lost, self._acked_bytes,
                           self.period, rtt, cwnd, blackout)
        self.history.append(pm)
        if not blackout:
            self.last_clean_error_ratio = pm.error_ratio
        self._sent = 0
        self._lost = 0
        self._acked_bytes = 0
        if self.service is not None:
            self.service.update(NET_ERROR_RATIO, pm.error_ratio)
            self.service.update(NET_RATE, pm.rate_bps)
            self.service.update(NET_RTT, pm.rtt)
            self.service.update(NET_CWND, pm.cwnd)
        tr = self.trace
        if tr.enabled:
            extra = {"blackout": True} if blackout else {}
            tr.emit("transport", PERIOD_ROLL, flow=self.flow, sent=pm.sent,
                    lost=pm.lost, error_ratio=pm.error_ratio,
                    rate_bps=pm.rate_bps, rtt=pm.rtt, cwnd=pm.cwnd, **extra)
        return pm

    @property
    def lifetime_error_ratio(self) -> float:
        return (self.total_lost / self.total_sent) if self.total_sent else 0.0
