"""Application-registered threshold callbacks.

Paper section 2.1, mechanism (2): "an application can register callbacks to
be triggered under certain conditions".  All of the paper's experiments use a
pair of error-ratio thresholds: the *upper* callback fires while the measured
loss ratio meets/exceeds the upper threshold, the *lower* callback while it
is at/below the lower threshold.  (Section 3.4's application, for example,
"reduces packet size by a percentage equal to the error ratio when the upper
threshold is exceeded, and increases packet size by 10% when the lower
threshold is hit" -- an ongoing control loop, so callbacks re-fire every
measurement period their condition holds.)

A callback returns either ``None`` (plain RUDP: the transport learns nothing
about what the application will do) or an :class:`~repro.core.attributes.
AttributeSet` describing the adaptation, which the sender hands to its
coordinator -- that return path is the IQ-RUDP information flow.
"""

from __future__ import annotations

from typing import Callable

from .attributes import AttributeSet

__all__ = ["ThresholdCallback", "CallbackRegistry"]

#: Signature: fn(error_ratio, metrics_dict) -> AttributeSet | None
ThresholdCallback = Callable[[float, dict], "AttributeSet | None"]


class _Registration:
    __slots__ = ("upper", "lower", "on_upper", "on_lower", "edge_triggered",
                 "state")

    def __init__(self, upper: float, lower: float,
                 on_upper: ThresholdCallback | None,
                 on_lower: ThresholdCallback | None,
                 edge_triggered: bool):
        if not (0.0 <= lower < upper <= 1.0):
            raise ValueError("need 0 <= lower < upper <= 1")
        self.upper = upper
        self.lower = lower
        self.on_upper = on_upper
        self.on_lower = on_lower
        self.edge_triggered = edge_triggered
        self.state = "normal"  # or "congested" (edge-trigger hysteresis)


class CallbackRegistry:
    """Holds threshold registrations and evaluates them per metric period.

    ``evaluate`` returns the list of attribute sets the fired callbacks
    produced; the sender forwards each to its coordinator.
    """

    def __init__(self) -> None:
        self._regs: list[_Registration] = []
        self.fired_upper = 0
        self.fired_lower = 0

    def register(self, *, upper: float, lower: float,
                 on_upper: ThresholdCallback | None = None,
                 on_lower: ThresholdCallback | None = None,
                 edge_triggered: bool = False) -> None:
        """Register a threshold pair.

        ``edge_triggered=False`` (paper behaviour) re-fires a callback every
        period its condition holds; ``True`` fires only on crossings, with
        hysteresis between the two thresholds.
        """
        self._regs.append(_Registration(upper, lower, on_upper, on_lower,
                                        edge_triggered))

    def __len__(self) -> int:
        return len(self._regs)

    def evaluate(self, error_ratio: float, metrics: dict,
                 on_fire: Callable[[str, "AttributeSet | None"], None]
                 | None = None) -> list[AttributeSet]:
        """Run all registrations against this period's error ratio.

        ``on_fire(kind, result)`` observes every callback invocation --
        ``kind`` is ``"upper"``/``"lower"`` and ``result`` is what the
        callback returned (``None`` for plain-RUDP callbacks that tell the
        transport nothing).  The sender uses it to trace callback firings.
        """
        results: list[AttributeSet] = []
        for reg in self._regs:
            fired = None
            kind = ""
            if error_ratio >= reg.upper:
                if not (reg.edge_triggered and reg.state == "congested"):
                    fired = reg.on_upper
                    kind = "upper"
                    self.fired_upper += fired is not None
                reg.state = "congested"
            elif error_ratio <= reg.lower:
                if not (reg.edge_triggered and reg.state == "normal"):
                    fired = reg.on_lower
                    kind = "lower"
                    self.fired_lower += fired is not None
                reg.state = "normal"
            if fired is not None:
                out = fired(error_ratio, metrics)
                if on_fire is not None:
                    on_fire(kind, out)
                if out:
                    results.append(out)
        return results
