"""ECho quality attributes: the application <-> transport information channel.

Paper section 2.2: "Each attribute is in the form of a <name, value> tuple.
The registration, update and query of ECho attributes are implemented via a
distributed service."  Attributes flow in both directions:

* transport -> application: exported network performance metrics
  (:data:`NET_ERROR_RATIO`, :data:`NET_RATE`, ...);
* application -> transport: descriptions of application adaptations
  (:data:`ADAPT_FREQ`, :data:`ADAPT_MARK`, :data:`ADAPT_PKTSIZE`,
  :data:`ADAPT_WHEN`, :data:`ADAPT_COND`), carried either as parameters to
  the send call (``cmwritev_attr``) or as connection state.

:class:`AttributeSet` is the lightweight tuple-set used on individual calls;
:class:`AttributeService` is the registration/update/query service with
watcher support (the "distributed service" collapsed to one process, which
is also how the paper's library-based implementation behaves).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "ADAPT_FREQ", "ADAPT_MARK", "ADAPT_PKTSIZE", "ADAPT_WHEN", "ADAPT_COND",
    "ADAPT_FEC",
    "NET_ERROR_RATIO", "NET_RATE", "NET_RTT", "NET_CWND", "RELIABILITY_TOLERANCE",
    "AttributeSet", "AttributeService",
]

# -- Application-adaptation attributes (paper section 2.3.2) ---------------
#: Degree of a frequency adaptation: fractional change in message frequency.
ADAPT_FREQ = "ADAPT_FREQ"
#: Degree of a reliability adaptation: current unmark probability in [0, 1].
ADAPT_MARK = "ADAPT_MARK"
#: Degree of a resolution adaptation: fractional reduction of message size
#: (``rate_chg``; negative values denote an increase).
ADAPT_PKTSIZE = "ADAPT_PKTSIZE"
#: Whether/when the application will adapt: "now", "pending", or "never".
ADAPT_WHEN = "ADAPT_WHEN"
#: Network conditions the adaptation was based on: mapping with keys
#: ``error_ratio`` and ``rate`` (paper: "including the error ratio and the
#: average data rate").
ADAPT_COND = "ADAPT_COND"
#: Requested FEC repair redundancy: repair segments per generation the
#: application wants the transport to emit (clamped by the transport to its
#: configured ``[r, r_max]`` band; ignored when FEC is disarmed).
ADAPT_FEC = "ADAPT_FEC"

# -- Transport-exported metrics ---------------------------------------------
NET_ERROR_RATIO = "NET_ERROR_RATIO"
NET_RATE = "NET_RATE"
NET_RTT = "NET_RTT"
NET_CWND = "NET_CWND"

#: Receiver loss tolerance registered as connection state (section 3.3 sets
#: it to 40%).
RELIABILITY_TOLERANCE = "RELIABILITY_TOLERANCE"


class AttributeSet:
    """An immutable-ish bag of ``<name, value>`` tuples.

    Cheap enough to build per send call; supports merge and dict-style
    access.  ``None`` values are treated as absent.
    """

    __slots__ = ("_d",)

    def __init__(self, mapping: Mapping[str, Any] | None = None, **kw: Any):
        d: dict[str, Any] = {}
        if mapping:
            d.update(mapping)
        d.update(kw)
        self._d = {k: v for k, v in d.items() if v is not None}

    def get(self, name: str, default: Any = None) -> Any:
        return self._d.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._d

    def __getitem__(self, name: str) -> Any:
        return self._d[name]

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(self._d.items())

    def __len__(self) -> int:
        return len(self._d)

    def __bool__(self) -> bool:
        return bool(self._d)

    def merged(self, other: "AttributeSet | Mapping[str, Any] | None"
               ) -> "AttributeSet":
        """New set with ``other``'s entries overriding this one's."""
        if not other:
            return self
        d = dict(self._d)
        d.update(dict(other) if isinstance(other, AttributeSet) else other)
        return AttributeSet(d)

    def as_dict(self) -> dict[str, Any]:
        return dict(self._d)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self._d.items())
        return f"AttributeSet({inner})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AttributeSet):
            return self._d == other._d
        return NotImplemented

    def __hash__(self):
        return None  # type: ignore[return-value]  # mutable-adjacent: unhashable


class AttributeService:
    """Registration/update/query service with change watchers.

    The transport publishes its exported metrics here; applications can
    query "anytime during a connection's lifetime" (section 2.1) or register
    a watcher to be notified on update.  Updating and querying are plain
    dict operations -- matching the paper's observation that for the
    library-based implementation "the costs of updating and querying
    attributes are negligible even when done frequently".
    """

    def __init__(self) -> None:
        self._values: dict[str, Any] = {}
        self._watchers: dict[str, list[Callable[[str, Any], None]]] = {}
        self.updates = 0
        self.queries = 0

    def register(self, name: str, value: Any = None) -> None:
        """Declare an attribute (idempotent)."""
        self._values.setdefault(name, value)

    def update(self, name: str, value: Any) -> None:
        self._values[name] = value
        self.updates += 1
        for fn in self._watchers.get(name, ()):
            fn(name, value)

    def update_many(self, mapping: Mapping[str, Any]) -> None:
        for k, v in mapping.items():
            self.update(k, v)

    def query(self, name: str, default: Any = None) -> Any:
        self.queries += 1
        return self._values.get(name, default)

    def watch(self, name: str, fn: Callable[[str, Any], None]) -> None:
        """Call ``fn(name, value)`` on every update of ``name``."""
        self._watchers.setdefault(name, []).append(fn)

    def unwatch(self, name: str, fn: Callable[[str, Any], None]) -> None:
        fns = self._watchers.get(name)
        if fns and fn in fns:
            fns.remove(fn)

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of all attributes (for logging/tests)."""
        return dict(self._values)
