"""The paper's primary contribution: quality attributes, threshold
callbacks, metric export, and the coordination engine."""

from .attributes import (ADAPT_COND, ADAPT_FREQ, ADAPT_MARK, ADAPT_PKTSIZE,
                         ADAPT_WHEN, NET_CWND, NET_ERROR_RATIO, NET_RATE,
                         NET_RTT, RELIABILITY_TOLERANCE, AttributeService,
                         AttributeSet)
from .callbacks import CallbackRegistry, ThresholdCallback
from .coordination import Coordinator, IQCoordinator, NullCoordinator
from .metrics_export import MetricsWindow, PeriodMetrics

__all__ = [
    "ADAPT_COND", "ADAPT_FREQ", "ADAPT_MARK", "ADAPT_PKTSIZE", "ADAPT_WHEN",
    "NET_CWND", "NET_ERROR_RATIO", "NET_RATE", "NET_RTT",
    "RELIABILITY_TOLERANCE", "AttributeService", "AttributeSet",
    "CallbackRegistry", "ThresholdCallback",
    "Coordinator", "IQCoordinator", "NullCoordinator",
    "MetricsWindow", "PeriodMetrics",
]
