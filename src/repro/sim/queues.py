"""Router/link queues.

The bottleneck drop-tail queue is where every effect the paper measures is
born: loss ratios trigger the adaptation callbacks, and queueing delay is the
delay/jitter the tables report.  The implementation therefore keeps precise
drop and occupancy accounting.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..obs.bus import NULL_BUS
from ..obs.events import QUEUE_DEPTH
from .packet import Packet

__all__ = ["DropTailQueue", "REDQueue", "QueueStats"]


class QueueStats:
    """Arrival/drop/occupancy counters for one queue."""

    __slots__ = ("arrivals", "departures", "drops", "bytes_in", "bytes_dropped",
                 "peak_bytes", "peak_packets", "flushed")

    def __init__(self) -> None:
        self.arrivals = 0
        self.departures = 0
        self.drops = 0
        self.bytes_in = 0
        self.bytes_dropped = 0
        self.peak_bytes = 0
        self.peak_packets = 0
        self.flushed = 0

    @property
    def drop_ratio(self) -> float:
        """Fraction of arrivals dropped (0.0 when idle)."""
        return self.drops / self.arrivals if self.arrivals else 0.0


class DropTailQueue:
    """FIFO byte-budget queue with tail drop.

    ``capacity_bytes`` bounds total queued wire bytes -- the classic router
    buffer model.  A packet that does not fit is dropped in its entirety.
    ``on_drop`` (if given) observes each dropped packet, which the failure
    injection tests and monitors use.

    ``__slots__`` keeps instances compact and attribute access cheap --
    every packet the simulation forwards crosses :meth:`push`/:meth:`pop`.
    """

    __slots__ = ("capacity_bytes", "on_drop", "_q", "_bytes", "stats",
                 "trace", "name", "flight", "spans")

    def __init__(self, capacity_bytes: int,
                 on_drop: Callable[[Packet], None] | None = None):
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.on_drop = on_drop
        self._q: deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()
        # Owning Link rebinds these; standalone queues stay untraced.
        self.trace = NULL_BUS
        self.name = "queue"
        # Forensics hooks, rebound by the owning Link.  They live here (not
        # only on the Link) because burst enqueues drop inside
        # :meth:`push_all`'s per-packet degradation, which never returns
        # through Link.send -- noting at the queue keeps the flight/span
        # record byte-identical between burst and per-packet paths.
        self.flight = None
        self.spans = None

    def __len__(self) -> int:
        return len(self._q)

    @property
    def bytes(self) -> int:
        """Wire bytes currently queued."""
        return self._bytes

    @property
    def empty(self) -> bool:
        return not self._q

    def push(self, pkt: Packet) -> bool:
        """Enqueue ``pkt``; returns False (and drops) when full."""
        st = self.stats
        wire = pkt.wire_size
        st.arrivals += 1
        new_bytes = self._bytes + wire
        if new_bytes > self.capacity_bytes:
            st.drops += 1
            st.bytes_dropped += wire
            fl = self.flight
            if fl is not None:
                fl.note("net", "DROP", kind="queue", link=self.name,
                        flow=pkt.flow_id, pkt=pkt.seq)
            sp = self.spans
            if sp is not None:
                sp.on_drop(pkt, self.name, "queue")
            if self.on_drop is not None:
                self.on_drop(pkt)
            return False
        q = self._q
        q.append(pkt)
        self._bytes = new_bytes
        st.bytes_in += wire
        if new_bytes > st.peak_bytes:
            st.peak_bytes = new_bytes
        if len(q) > st.peak_packets:
            st.peak_packets = len(q)
            # Emitting only on new occupancy peaks keeps the event count
            # O(peak) rather than O(packets).
            tr = self.trace
            if tr.enabled:
                tr.emit("net", QUEUE_DEPTH, queue=self.name,
                        pkts=len(q), bytes=new_bytes,
                        capacity=self.capacity_bytes)
        return True

    def push_all(self, pkts: "list[Packet]") -> int:
        """Enqueue a burst; returns the number accepted.

        Accounting is exactly ``len(pkts)`` repeated :meth:`push` calls.
        The one-extend fast path applies when the whole burst fits and no
        trace sink is attached (per-push occupancy peaks are monotone
        within a pure extend, so only the final peak is observable);
        otherwise it degrades to per-packet pushes, keeping drop order,
        ``on_drop`` callbacks and peak trace events identical.
        """
        total = 0
        for p in pkts:
            total += p.wire_size
        new_bytes = self._bytes + total
        if new_bytes > self.capacity_bytes or self.trace.enabled:
            ok = 0
            push = self.push
            for p in pkts:
                ok += push(p)
            return ok
        st = self.stats
        n = len(pkts)
        q = self._q
        q.extend(pkts)
        self._bytes = new_bytes
        st.arrivals += n
        st.bytes_in += total
        if new_bytes > st.peak_bytes:
            st.peak_bytes = new_bytes
        if len(q) > st.peak_packets:
            st.peak_packets = len(q)
        return n

    def pop(self) -> Packet:
        """Dequeue the head-of-line packet."""
        pkt = self._q.popleft()
        self._bytes -= pkt.wire_size
        self.stats.departures += 1
        return pkt

    def pop_all(self) -> list[Packet]:
        """Dequeue every queued packet in FIFO order in one step.

        Byte/departure accounting is exactly ``len(result)`` repeated
        :meth:`pop` calls (peaks are recorded on push, so popping in bulk
        is unobservable).  This is the array-level drain used by the burst
        fast path in :mod:`repro.sim.batch`.
        """
        q = self._q
        out = list(q)
        q.clear()
        self._bytes = 0
        self.stats.departures += len(out)
        return out

    def set_capacity(self, capacity_bytes: int) -> None:
        """Resize the buffer mid-run (router reconfiguration / handover to
        a shallower-buffered path).  Already-queued packets are never
        evicted; a shrunken queue just drops new arrivals until it drains
        below the new budget."""
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes

    def clear(self) -> None:
        self._q.clear()
        self._bytes = 0

    def flush(self) -> int:
        """Discard every queued packet, *accounting* for the discard (the
        ``flushed`` counter) so datagram conservation still balances.  Used
        when a link fails with packets queued.  Returns the packet count."""
        n = len(self._q)
        self.stats.flushed += n
        self._q.clear()
        self._bytes = 0
        return n

    def telemetry_probe(self) -> dict[str, float]:
        """Read-only occupancy/drop snapshot for the telemetry recorder."""
        return {"pkts": float(len(self._q)), "bytes": float(self._bytes),
                "drops": float(self.stats.drops)}

    def conservation_violation(self) -> str | None:
        """Datagram conservation at this queue: every arrival must be
        queued, departed, dropped, or flushed.  Returns a description of
        the imbalance, or None when the books balance."""
        st = self.stats
        accounted = st.departures + st.drops + st.flushed + len(self._q)
        if st.arrivals != accounted:
            return (f"queue conservation: arrivals={st.arrivals} != "
                    f"departures={st.departures} + drops={st.drops} + "
                    f"flushed={st.flushed} + queued={len(self._q)}")
        if self._bytes < 0:
            return f"queued byte count negative ({self._bytes})"
        return None


class REDQueue(DropTailQueue):
    """Random Early Detection variant (extension, not used by the paper's
    Emulab setup, which is drop-tail).

    Implements the gentle-RED drop curve on the EWMA of queue bytes.  Provided
    so ablation benches can ask whether the coordination wins depend on the
    drop-tail loss pattern.
    """

    __slots__ = ("min_bytes", "max_bytes", "max_p", "weight", "_avg", "_rng")

    def __init__(self, capacity_bytes: int, *, min_th: float = 0.25,
                 max_th: float = 0.75, max_p: float = 0.1, weight: float = 0.002,
                 rng=None, on_drop: Callable[[Packet], None] | None = None):
        super().__init__(capacity_bytes, on_drop)
        if not (0.0 <= min_th < max_th <= 1.0):
            raise ValueError("need 0 <= min_th < max_th <= 1")
        self.min_bytes = min_th * capacity_bytes
        self.max_bytes = max_th * capacity_bytes
        self.max_p = max_p
        self.weight = weight
        self._avg = 0.0
        if rng is None:  # deterministic fallback
            import random
            rng = random.Random(0)
        self._rng = rng

    def push(self, pkt: Packet) -> bool:
        self._avg += self.weight * (self._bytes - self._avg)
        if self._avg > self.max_bytes:
            p_drop = 1.0
        elif self._avg > self.min_bytes:
            p_drop = self.max_p * ((self._avg - self.min_bytes)
                                   / (self.max_bytes - self.min_bytes))
        else:
            p_drop = 0.0
        if p_drop and self._rng.random() < p_drop:
            st = self.stats
            st.arrivals += 1
            st.drops += 1
            st.bytes_dropped += pkt.wire_size
            fl = self.flight
            if fl is not None:
                fl.note("net", "DROP", kind="red", link=self.name,
                        flow=pkt.flow_id, pkt=pkt.seq)
            sp = self.spans
            if sp is not None:
                sp.on_drop(pkt, self.name, "red")
            if self.on_drop is not None:
                self.on_drop(pkt)
            return False
        return super().push(pkt)

    def push_all(self, pkts: "list[Packet]") -> int:
        """RED draws per-packet randomness, so bursts never take the
        drop-tail extend fast path -- every packet walks :meth:`push`."""
        ok = 0
        push = self.push
        for p in pkts:
            ok += push(p)
        return ok
