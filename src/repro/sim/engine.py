"""Deterministic discrete-event simulation engine.

The engine is the substrate for the whole reproduction: links, transport
protocols, applications and cross-traffic sources all advance by scheduling
callbacks on a single virtual clock.  Using virtual time (rather than wall
clock) is the key substitution that makes this reproduction faithful in
Python: the paper measures rate-control timing, and an interpreter cannot
hold microsecond pacing in real time, but a discrete-event clock is exact.

Design notes
------------
* Events are ``(time, priority, seq, callback, args)`` entries on a binary
  heap.  ``seq`` is a monotonically increasing tiebreaker so that events
  scheduled for the same instant fire in scheduling order -- this makes every
  simulation fully deterministic for a fixed seed.
* ``priority`` orders simultaneous events independently of scheduling order
  when a component needs it (e.g. deliver packets before timers fire).
  Lower sorts first; the default is 0.
* Timers are cancellable via the returned :class:`Event` handle; cancellation
  is O(1) (the entry is flagged dead and skipped when popped), which matters
  because retransmission timers are cancelled far more often than they fire.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Event:
    """Handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and can be cancelled.  A fired or cancelled event is
    inert; cancelling it again is a no-op.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "_alive")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self._alive = True

    @property
    def alive(self) -> bool:
        """True until the event fires or is cancelled."""
        return self._alive

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self._alive = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Single-threaded discrete-event scheduler with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, hello)          # relative delay
        sim.at(5.0, goodbye)              # absolute time
        sim.run(until=10.0)

    The clock starts at ``0.0`` and only advances when events are popped, so
    the simulation is exactly reproducible regardless of host load.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, fn, *args, priority=priority)

    def at(self, time: float, fn: Callable[..., Any], *args: Any,
           priority: int = 0) -> Event:
        """Run ``fn(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._now!r}")
        ev = Event(time, priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any,
                  priority: int = 0) -> Event:
        """Run ``fn(*args)`` at the current instant, after pending events."""
        return self.at(self._now, fn, *args, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None
            ) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired.

        When ``until`` is given the clock is left exactly at ``until`` even if
        the last event fired earlier, so back-to-back ``run`` calls compose.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                ev = self._heap[0]
                if not ev._alive:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = ev.time
                ev._alive = False
                ev.fn(*ev.args)
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return fired

    def step(self) -> bool:
        """Fire exactly one event.  Returns False if none are pending."""
        return self.run(max_events=1) == 1

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of live events still queued (O(n))."""
        return sum(1 for ev in self._heap if ev._alive)

    def peek(self) -> float | None:
        """Time of the next live event, or None when idle."""
        while self._heap and not self._heap[0]._alive:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debug aid
        return iter(sorted(ev for ev in self._heap if ev._alive))
