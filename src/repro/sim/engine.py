"""Deterministic discrete-event simulation engine.

The engine is the substrate for the whole reproduction: links, transport
protocols, applications and cross-traffic sources all advance by scheduling
callbacks on a single virtual clock.  Using virtual time (rather than wall
clock) is the key substitution that makes this reproduction faithful in
Python: the paper measures rate-control timing, and an interpreter cannot
hold microsecond pacing in real time, but a discrete-event clock is exact.

Design notes
------------
* Heap entries are plain ``(time, priority, seq, event)`` tuples so that
  :mod:`heapq` orders them with C-level tuple comparison -- no Python
  ``__lt__`` dispatch on the hot path.  ``seq`` is a monotonically
  increasing tiebreaker so that events scheduled for the same instant fire
  in scheduling order and no comparison ever reaches the (uncomparable)
  event object -- this makes every simulation fully deterministic for a
  fixed seed.
* ``priority`` orders simultaneous events independently of scheduling order
  when a component needs it (e.g. deliver packets before timers fire).
  Lower sorts first; the default is 0.
* Timers are cancellable via the returned :class:`Event` handle; cancellation
  is O(1) (the entry is flagged dead and skipped when popped), which matters
  because retransmission timers are cancelled far more often than they fire.
* Dead entries are *compacted* out of the heap once they outnumber the live
  ones (beyond a small floor), so retransmission-heavy runs that cancel
  millions of timers keep the heap -- and every push/pop -- bounded by the
  live event count instead of the cancellation history.
* :meth:`Simulator.pending` is O(1): live events are ``len(heap)`` minus a
  dead-entry counter maintained on cancel/pop/compact.
* The schedule and fire paths are deliberately hand-flattened (inline event
  construction, module-level heap functions, a specialised drain loop):
  together these are worth >60% event throughput, which bounds every
  experiment's wall clock.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from math import inf
from typing import Any, Callable, Iterator

from ..obs.bus import NULL_BUS

__all__ = ["Event", "Simulator", "SimulationError", "callback_label"]


def callback_label(fn: Callable[..., Any]) -> str:
    """Stable human-readable label for a scheduled callback.

    Bound methods and functions report their ``__qualname__``
    (``WindowedSender._metric_tick``); callable objects fall back to their
    type name.  Pure function of the callable -- the self-profiler keys
    event counts on it, and those counts must be config-deterministic.
    """
    label = getattr(fn, "__qualname__", None)
    if label is None:
        label = type(fn).__name__
    return label

#: Compaction floor: heaps smaller than this are never compacted (the
#: rebuild would cost more than the dead entries do).
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Event:
    """Handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and can be cancelled.  A fired or cancelled event is
    inert; cancelling it again is a no-op.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "_alive", "_sim")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple,
                 sim: "Simulator | None" = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self._alive = True
        self._sim = sim

    @property
    def alive(self) -> bool:
        """True until the event fires or is cancelled."""
        return self._alive

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self._alive:
            self._alive = False
            sim = self._sim
            if sim is not None:
                sim._note_dead()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __getstate__(self):
        return (self.time, self.priority, self.seq, self.fn, self.args,
                self._alive, self._sim)

    def __setstate__(self, state):
        (self.time, self.priority, self.seq, self.fn, self.args,
         self._alive, self._sim) = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        return f"<Event t={self.time:.6f} {callback_label(self.fn)} {state}>"


class Simulator:
    """Single-threaded discrete-event scheduler with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, hello)          # relative delay
        sim.at(5.0, goodbye)              # absolute time
        sim.run(until=10.0)

    The clock starts at ``0.0`` and only advances when events are popped, so
    the simulation is exactly reproducible regardless of host load.
    """

    def __init__(self) -> None:
        self._now = 0.0
        # (time, priority, seq, Event) -- see module docstring.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._dead = 0   # cancelled entries not yet popped/compacted
        # Inline-coalescing bound (see repro.sim.batch): while run() is
        # active this is the largest virtual time a component may advance
        # the clock to *without* going through the heap.  -inf outside
        # run() and under max_events, so inlining is only ever legal in
        # plain bounded/drain runs.
        self._inline_until = -inf
        # Trace bus; components cache this at construction, so replace it
        # (with an enabled repro.obs TraceBus) before building topology.
        self.bus = NULL_BUS
        self._flow_ids = 0

    def next_flow_id(self) -> int:
        """Flow identifiers are allocated per simulation (not per process)
        so a scenario's packet flows -- and therefore its trace -- are a
        pure function of its config."""
        self._flow_ids += 1
        return self._flow_ids

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    # schedule() and at() build the Event inline (__new__ + slot stores)
    # rather than calling Event(): they are the hottest allocation site in
    # the whole simulator and the constructor-call frame is measurable.

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        ev = Event.__new__(Event)
        ev.time = time
        ev.priority = priority
        ev.seq = seq
        ev.fn = fn
        ev.args = args
        ev._alive = True
        ev._sim = self
        heappush(self._heap, (time, priority, seq, ev))
        return ev

    def at(self, time: float, fn: Callable[..., Any], *args: Any,
           priority: int = 0) -> Event:
        """Run ``fn(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._now!r}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event.__new__(Event)
        ev.time = time
        ev.priority = priority
        ev.seq = seq
        ev.fn = fn
        ev.args = args
        ev._alive = True
        ev._sim = self
        heappush(self._heap, (time, priority, seq, ev))
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any,
                  priority: int = 0) -> Event:
        """Run ``fn(*args)`` at the current instant, after pending events."""
        return self.at(self._now, fn, *args, priority=priority)

    # ------------------------------------------------------------------
    # Dead-entry accounting / compaction
    # ------------------------------------------------------------------
    def _note_dead(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when dead entries
        dominate the heap."""
        self._dead += 1
        if self._dead > _COMPACT_MIN and self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop every dead entry and re-heapify (in place, so hot loops
        holding a reference to the heap list stay valid)."""
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[3]._alive]
        heapify(heap)
        self._dead = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None
            ) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired.

        When ``until`` is given the clock is left exactly at ``until`` even if
        the last event fired earlier, so back-to-back ``run`` calls compose.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        # Batched components may only fast-forward the clock inline when no
        # event budget is in force (an inlined sub-step is invisible to
        # ``max_events`` accounting, so step()-driven runs stay per-event).
        self._inline_until = (
            -inf if max_events is not None else
            inf if until is None else until)
        # Local bindings: every lookup in these loops is per-event cost.
        heap = self._heap
        pop = heappop
        fired = 0
        try:
            if until is None and max_events is None:
                # Fast drain: no bound checks, pop unconditionally.
                while heap:
                    if self._stopped:
                        break
                    entry = pop(heap)
                    ev = entry[3]
                    if not ev._alive:
                        self._dead -= 1
                        continue
                    self._now = entry[0]
                    ev._alive = False
                    ev.fn(*ev.args)
                    fired += 1
            else:
                while heap:
                    if self._stopped:
                        break
                    if max_events is not None and fired >= max_events:
                        break
                    entry = heap[0]
                    ev = entry[3]
                    if not ev._alive:
                        pop(heap)
                        self._dead -= 1
                        continue
                    time = entry[0]
                    if until is not None and time > until:
                        break
                    pop(heap)
                    self._now = time
                    ev._alive = False
                    ev.fn(*ev.args)
                    fired += 1
        finally:
            self._running = False
            self._inline_until = -inf
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return fired

    def step(self) -> bool:
        """Fire exactly one event.  Returns False if none are pending."""
        return self.run(max_events=1) == 1

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of live events still queued (O(1))."""
        return len(self._heap) - self._dead

    def peek(self) -> float | None:
        """Time of the next live event, or None when idle."""
        heap = self._heap
        while heap and not heap[0][3]._alive:
            heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else None

    def next_event_key(self) -> tuple[float, int] | None:
        """``(time, priority)`` of the next live event, or None when idle.

        Pops dead heap entries on the way (like :meth:`peek`), so a freshly
        cancelled timer at the head never masks the real next event.  This
        is the intrusion guard for :mod:`repro.sim.batch`: a component may
        process its own future sub-step inline only while that sub-step's
        key sorts strictly before the key returned here.
        """
        heap = self._heap
        while heap and not heap[0][3]._alive:
            heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        entry = heap[0]
        return (entry[0], entry[1])

    def drain(self) -> None:
        """Discard every queued event (live and dead).

        Used when a finished simulation is detached for pickling or
        caching: pending events may close over locals that cannot (and
        need not) be serialised.
        """
        self._heap.clear()
        self._dead = 0

    def audit(self) -> str | None:
        """Cheap internal-consistency check of the scheduler state.

        Returns a description of the first problem found, or None when the
        engine is sane.  Used by :mod:`repro.invariants`; kept here because
        it reads private state.  O(1) -- it inspects counters and the heap
        head only, never walks the heap.
        """
        heap = self._heap
        dead = self._dead
        if dead < 0:
            return f"dead-entry counter negative ({dead})"
        if dead > len(heap):
            return (f"dead-entry counter {dead} exceeds heap size "
                    f"{len(heap)}")
        if heap:
            head_time = heap[0][0]
            if head_time < self._now - 1e-9:
                return (f"heap head at t={head_time!r} is in the past "
                        f"(now={self._now!r})")
        return None

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debug aid
        return iter(sorted((entry[3] for entry in self._heap
                            if entry[3]._alive)))
