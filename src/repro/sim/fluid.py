"""Fluid background traffic: the macro half of the two-level speed tier.

Population scenarios (1k+ concurrent foreground flows) cannot afford
per-packet cross traffic: a 16 Mbps CBR source alone is ~1.4k datagrams --
several thousand engine events -- per simulated second.  Following the
fluid/analytic rate-model tradition (Hága et al., PAPERS.md), background
aggregate traffic does not need per-packet fidelity to exert correct
congestion *pressure* on the foreground; it needs the right mean rate,
the right buffer occupancy, and the right residual capacity.

:class:`FluidSource` models the aggregate as a piecewise-constant arrival
rate feeding a fluid backlog, coupled to its bottleneck link once per
engine tick:

* arrivals: ``rate_bps * dt`` bits join the backlog each tick;
* service: the fluid drains at up to ``share_cap`` of the nominal link
  rate (FIFO approximation: an aggregate below capacity is served at its
  arrival rate; an overloaded aggregate saturates its share);
* residual capacity: the packet-level link is re-rated to
  ``nominal - served_rate`` -- exactly the residual a CBR aggregate at the
  same rate leaves once its queue saturates;
* buffer occupancy: the backlog (capped at ``queue_share`` of the buffer)
  shrinks the drop-tail budget foreground packets see, so fluid floods
  produce foreground drops just as packet floods do.

In the under-load steady state this reduces to ``link bandwidth =
nominal - rate_bps`` and an untouched queue: the classic residual-capacity
fluid limit.  Determinism: the coupling is a pure function of tick times
and the rate profile -- no RNG -- so summaries remain a pure function of
the scenario config.

The tier is an *approximation by construction* (that is the point); it is
exercised by `tests/test_fluid.py` against its packet-level counterpart
:class:`~repro.traffic.cbr.CbrSource` for pressure equivalence, not for
bit-identity.
"""

from __future__ import annotations

from ..sim.engine import Simulator
from ..sim.link import Link

__all__ = ["FluidSource"]


class FluidSource:
    """Aggregate background traffic as a rate-coupled fluid on ``link``.

    Parameters
    ----------
    rate_bps : initial aggregate wire rate in bits per second.
    tick_s : coupling period; smaller tracks queue dynamics tighter at
        linear event cost (default 10 ms ~ a third of the paper RTT).
    profile : optional ``[(time_s, rate_bps), ...]`` piecewise-constant
        schedule applied as virtual time passes (sorted, absolute times).
    share_cap : largest fraction of the link the fluid may occupy; the
        remainder is guaranteed to packet traffic so foreground flows are
        squeezed, never bricked.
    queue_share : largest fraction of the drop-tail buffer the backlog may
        occupy; backlog beyond it is dropped (fluid loss).
    """

    def __init__(self, sim: Simulator, link: Link, *, rate_bps: float,
                 tick_s: float = 0.010, start: float = 0.0,
                 stop: float | None = None,
                 profile: list[tuple[float, float]] | None = None,
                 share_cap: float = 0.95, queue_share: float = 0.5):
        if rate_bps < 0:
            raise ValueError("rate must be non-negative")
        if tick_s <= 0:
            raise ValueError("tick period must be positive")
        if not 0.0 < share_cap < 1.0:
            raise ValueError("share_cap must be in (0,1)")
        if not 0.0 < queue_share <= 1.0:
            raise ValueError("queue_share must be in (0,1]")
        self.sim = sim
        self.link = link
        self.rate_bps = float(rate_bps)
        self.tick_s = tick_s
        self.stop_time = stop
        self.profile = sorted(profile) if profile else []
        self._profile_pos = 0
        self.share_cap = share_cap
        self.queue_share = queue_share
        # Frozen nominal operating point the coupling modulates around.
        self.nominal_bps = link.bandwidth_bps
        self.base_queue_bytes = link.queue.capacity_bytes
        self.min_queue_bytes = min(2 * 1440, self.base_queue_bytes)
        # Fluid state/accounting (bits for rate math, reported as bytes).
        self.backlog_bits = 0.0
        self.offered_bytes = 0.0
        self.served_bytes = 0.0
        self.dropped_bytes = 0.0
        self.ticks = 0
        self._running = False
        self._last_t = start
        sim.at(start, self.start)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._running:
            self._running = True
            self._last_t = self.sim.now
            self.sim.schedule(self.tick_s, self._tick)

    def stop(self) -> None:
        """Stop the source and release the link back to its nominal
        operating point (pending backlog is discarded as drops)."""
        if not self._running:
            return
        self._running = False
        self.dropped_bytes += self.backlog_bits / 8.0
        self.backlog_bits = 0.0
        self.link.set_bandwidth(self.nominal_bps)
        self.link.queue.set_capacity(self.base_queue_bytes)

    def set_rate(self, rate_bps: float) -> None:
        """Change the aggregate rate mid-run (handover ramps, step loads)."""
        if rate_bps < 0:
            raise ValueError("rate must be non-negative")
        self.rate_bps = float(rate_bps)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        if self.stop_time is not None and now >= self.stop_time:
            self.stop()
            return
        profile = self.profile
        pos = self._profile_pos
        while pos < len(profile) and profile[pos][0] <= now:
            self.rate_bps = float(profile[pos][1])
            pos += 1
        self._profile_pos = pos
        dt = now - self._last_t
        self._last_t = now
        self.ticks += 1
        nominal = self.nominal_bps
        # Arrivals, then service at up to the fluid's capacity share.
        offered = self.rate_bps * dt
        backlog = self.backlog_bits + offered
        fluid_cap = self.share_cap * nominal * dt
        served = backlog if backlog <= fluid_cap else fluid_cap
        backlog -= served
        # Backlog beyond the fluid's buffer share is dropped (fluid loss).
        buf_bits = self.queue_share * self.base_queue_bytes * 8.0
        if backlog > buf_bits:
            self.dropped_bytes += (backlog - buf_bits) / 8.0
            backlog = buf_bits
        self.backlog_bits = backlog
        self.offered_bytes += offered / 8.0
        self.served_bytes += served / 8.0
        # Couple to the packet level: residual capacity + buffer occupancy.
        served_rate = served / dt if dt > 0 else 0.0
        residual = nominal - served_rate
        floor = (1.0 - self.share_cap) * nominal
        self.link.set_bandwidth(residual if residual > floor else floor)
        occupied = int(backlog / 8.0)
        cap = self.base_queue_bytes - occupied
        if cap < self.min_queue_bytes:
            cap = self.min_queue_bytes
        self.link.queue.set_capacity(cap)
        self.sim.schedule(self.tick_s, self._tick)

    # ------------------------------------------------------------------
    @property
    def backlog_bytes(self) -> float:
        return self.backlog_bits / 8.0

    def telemetry_probe(self) -> dict[str, float]:
        """Cumulative fluid accounting for the telemetry recorder."""
        return {"offered_bytes": self.offered_bytes,
                "served_bytes": self.served_bytes,
                "dropped_bytes": self.dropped_bytes,
                "backlog_bytes": self.backlog_bits / 8.0,
                "rate_bps": self.rate_bps}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FluidSource {self.rate_bps/1e6:.1f}Mbps "
                f"backlog={self.backlog_bits/8.0:.0f}B "
                f"on {self.link.name}>")
