"""Burst-level speed tier: coalesced link hot path (``BatchLink``).

The per-packet :class:`~repro.sim.link.Link` costs ~3 engine events per
datagram -- one serialization completion, one propagation arrival, plus the
heap traffic both imply.  At population scale (ROADMAP: thousands of
concurrent sessions) that heap churn *is* the simulation's wall clock.

:class:`BatchLink` removes it without changing a single observable:

* **TX chain.** One continuation event serves the whole egress queue.
  After finishing a packet at its serialization instant, the link peeks the
  engine heap: while the *next* packet's finish key ``(time, priority=0)``
  sorts strictly before every other pending event (and inside the active
  ``run(until=...)`` bound), the link advances the virtual clock inline and
  finishes that packet too -- no heap round-trip.  The moment a foreign
  event intrudes (an ACK arrival, a timer, a telemetry tick), the link
  schedules one ordinary continuation event and yields, degrading exactly
  to the per-packet cadence.
* **Arrival chain.** In-flight packets live in a per-link heap of
  ``(arrival_time, idx, pkt)``; a single scheduled event (priority -1, like
  per-packet arrivals) covers the head.  When it fires, later arrivals are
  delivered inline under the same intrusion guard, with the clock advanced
  to each packet's exact arrival instant before its ``sink.receive`` runs,
  so RTT bookkeeping and trace timestamps are bit-identical.
* **Array fast path.** When the egress queue holds a back-to-back burst, no
  stochastic models are armed (wire loss, jitter), tracing is off, and the
  sink is a *terminal* sink advertising ``receive_burst`` (it schedules
  nothing and reads nothing but its arguments -- e.g.
  :class:`~repro.transport.udp.UdpSink`), the whole burst collapses into
  one array-level step: finish times by prefix sum, counters in bulk, one
  ``receive_burst`` delivery.  Pure-Python lists by default; setting
  ``REPRO_ACCEL=numpy`` switches the prefix sum to numpy (falling back
  silently when numpy is unavailable).  Both variants perform the *same*
  float operations in the same association order as the scalar chain, so
  results stay bit-identical.

Correctness argument, in one paragraph: between two consecutive events the
engine's state is unobservable -- nothing runs.  Inlining a sub-step whose
key sorts strictly before the heap head therefore executes the exact same
callback at the exact same virtual time the heap would have chosen, minus
the push/pop.  The guard yields conservatively on exact ``(time,
priority)`` ties, and inlining is only legal while
``Simulator._inline_until`` admits it -- which the engine grants only in
plain bounded/drain runs (never under ``max_events``, never in the
:class:`~repro.invariants.engine.CheckedSimulator` or profiled loops, which
keep strict per-event cadence so their per-event checks and
config-deterministic event counts hold unchanged).

Bit-identity of ``ScenarioResult.summary``/telemetry/traces against the
per-packet path is enforced by ``tests/test_batch.py`` across every
transport and by the ``repro fuzz`` burst differential pass.
"""

from __future__ import annotations

import os
from heapq import heappop as _flight_pop, heappush as _flight_push

from .engine import Simulator
from .link import Link, LossModel, PacketSink
from .packet import Packet

__all__ = ["BatchLink", "accel_mode", "load_numpy"]

#: Minimum queued packets before the array fast path is attempted; below
#: this the scalar inline loop wins (array setup has fixed cost).
_BULK_MIN = 4

_np = None
_np_checked = False


def load_numpy():
    """Import numpy once; returns the module or None when unavailable."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
            _np = numpy
        except ImportError:  # pragma: no cover - numpy ships with the repo
            _np = None
    return _np


def accel_mode() -> str:
    """The process-wide accelerator selection (``REPRO_ACCEL`` env var).

    ``"numpy"`` arms the numpy prefix-sum fast path; anything else (or
    unset) selects the pure-Python array implementation.
    """
    return os.environ.get("REPRO_ACCEL", "").strip().lower()


class BatchLink(Link):
    """Drop-in :class:`Link` with the coalesced burst hot path.

    Construction mirrors :class:`Link`; ``accel`` overrides the
    process-wide :func:`accel_mode` for this link (tests and benches pass
    it explicitly so they never depend on ambient environment).
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float, delay_s: float,
                 sink: PacketSink, *, accel: str | None = None, **kw):
        super().__init__(sim, bandwidth_bps, delay_s, sink, **kw)
        mode = accel_mode() if accel is None else accel
        self._np = load_numpy() if mode == "numpy" else None
        self._service: Packet | None = None
        # In-flight packets: heap of (arrival_time, idx, pkt).  idx is a
        # per-link monotone counter so equal-time arrivals keep send order
        # and the heap never compares Packet objects.
        self._flight: list[tuple[float, int, Packet]] = []
        self._flight_idx = 0
        self._arrival_ev = None
        self._sink_burst = getattr(sink, "receive_burst", None)

    # ------------------------------------------------------------------
    # TX chain
    # ------------------------------------------------------------------
    def _start_transmission(self) -> None:
        pkt = self.queue.pop()
        self._busy = True
        self._service = pkt
        self.sim.schedule(self.tx_time(pkt), self._tx_step)

    def _tx_step(self) -> None:
        """Finish the in-service packet, then keep serialising queued
        packets inline while no foreign event intrudes."""
        sim = self.sim
        queue = self.queue
        heap = sim._heap
        tried_bulk = False
        while True:
            # Array fast path first: the in-service packet finished at this
            # very instant and nothing has been recorded for it yet, so the
            # whole run -- service packet plus egress queue -- can collapse
            # into one array step (the check precedes _finish_tx because a
            # finished packet enters the flight heap, and the bulk path
            # requires no earlier in-flight deliveries).
            if (not tried_bulk and len(queue) >= _BULK_MIN
                    and self._sink_burst is not None and self.up
                    and type(self.loss) is LossModel and self.jitter is None
                    and not self.trace.enabled and not self._flight):
                tried_bulk = True
                if self._tx_burst():
                    return
            self._finish_tx(self._service)
            if queue.empty:
                self._service = None
                self._busy = False
                return
            pkt = queue.pop()
            self._service = pkt
            finish = sim._now + pkt.wire_size * 8.0 / self.bandwidth_bps
            if finish > sim._inline_until or sim._stopped:
                sim.at(finish, self._tx_step)
                return
            # Intrusion guard: yield unless our key (finish, 0) sorts
            # strictly before the next live heap entry (ties yield, so the
            # heap keeps authority over simultaneous events).
            while heap and not heap[0][3]._alive:
                _drop_dead(sim)
            if heap:
                entry = heap[0]
                etime = entry[0]
                if etime < finish or (etime == finish and entry[1] <= 0):
                    sim.at(finish, self._tx_step)
                    return
            sim._now = finish

    # ------------------------------------------------------------------
    def _tx_burst(self) -> bool:
        """Array-level drain of the in-service packet plus the whole egress
        queue in one step.

        Preconditions (checked by the caller): link up, no wire-loss RNG,
        no jitter, tracing off, no earlier in-flight packets, terminal
        sink, and the in-service packet's serialization completed at
        ``sim.now`` with nothing recorded for it yet.  Computes every
        finish/arrival instant with the exact float operations of the
        scalar chain (left-to-right prefix sum, then one ``+ delay_s``),
        so the result is bit-identical.  Returns False -- having mutated
        nothing -- when the burst would cross the inline bound or a
        foreign event.
        """
        sim = self.sim
        queue = self.queue
        bw = self.bandwidth_bps
        delay = self.delay_s
        service = self._service
        np = self._np
        if np is not None:
            sizes = np.fromiter((p.wire_size for p in queue._q),
                                dtype=np.float64, count=len(queue))
            times = np.empty(len(sizes) + 1)
            times[0] = sim._now
            np.multiply(sizes, 8.0, out=times[1:])
            times[1:] /= bw
            np.cumsum(times, out=times)  # sequential: scalar association
            arrivals_arr = times[1:] + delay
            wire_bytes = service.wire_size + int(sizes.sum())
            last_arrival = float(arrivals_arr[-1])
            arrivals = None  # materialised after the guard passes
        else:
            t = sim._now
            wire_bytes = service.wire_size
            arrivals = []
            push = arrivals.append
            for p in queue._q:
                w = p.wire_size
                wire_bytes += w
                t = t + w * 8.0 / bw
                push(t + delay)
            last_arrival = arrivals[-1]
        if last_arrival > sim._inline_until or sim._stopped:
            return False
        heap = sim._heap
        while heap and not heap[0][3]._alive:
            _drop_dead(sim)
        if heap:
            entry = heap[0]
            etime = entry[0]
            if etime < last_arrival or (etime == last_arrival
                                        and entry[1] <= -1):
                return False
        if arrivals is None:
            arrivals = arrivals_arr.tolist()
        # The service packet finished at sim.now, so it arrives first.
        pkts = queue.pop_all()
        pkts.insert(0, service)
        arrivals.insert(0, sim._now + delay)
        self.bytes_sent += wire_bytes
        self.packets_sent += len(pkts)
        sim._now = last_arrival
        self._sink_burst(pkts, arrivals)
        self._service = None
        self._busy = False
        return True

    # ------------------------------------------------------------------
    # Arrival chain
    # ------------------------------------------------------------------
    def _deliver(self, pkt: Packet, delay: float) -> None:
        sim = self.sim
        t = sim._now + delay
        idx = self._flight_idx
        self._flight_idx = idx + 1
        _flight_push(self._flight, (t, idx, pkt))
        ev = self._arrival_ev
        if ev is None:
            self._arrival_ev = sim.at(t, self._arrival_step, priority=-1)
        elif t < ev.time:
            # Jitter reordering: an earlier arrival displaced the head.
            ev.cancel()
            self._arrival_ev = sim.at(t, self._arrival_step, priority=-1)

    def _arrival_step(self) -> None:
        """Deliver the head in-flight packet, then later ones inline while
        no foreign event intrudes."""
        self._arrival_ev = None
        sim = self.sim
        flight = self._flight
        heap = sim._heap
        receive = self.sink.receive
        pop = _flight_pop
        while flight:
            head = flight[0]
            t = head[0]
            if t > sim._now:
                if t > sim._inline_until or sim._stopped:
                    self._arrival_ev = sim.at(t, self._arrival_step,
                                              priority=-1)
                    return
                while heap and not heap[0][3]._alive:
                    _drop_dead(sim)
                if heap:
                    entry = heap[0]
                    etime = entry[0]
                    if etime < t or (etime == t and entry[1] <= -1):
                        self._arrival_ev = sim.at(t, self._arrival_step,
                                                  priority=-1)
                        return
                sim._now = t
            pop(flight)
            receive(head[2])


def _drop_dead(sim: Simulator) -> None:
    """Pop one dead entry off the heap head, maintaining the counter."""
    _flight_pop(sim._heap)
    sim._dead -= 1
