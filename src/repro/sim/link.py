"""Point-to-point links with serialization delay, propagation delay and an
egress drop-tail queue.

This is the Emulab substitute: the paper's "emulated 20Mb physical links with
a path RTT of 30ms" become two :class:`Link` instances (one per direction)
between the dumbbell routers.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..obs.events import LINK_FAIL, LINK_RECOVER, PACKET_DROP
from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue

__all__ = ["Link", "PacketSink", "LossModel", "BernoulliLoss",
           "GilbertElliottLoss", "DelayJitter"]


class PacketSink(Protocol):
    """Anything that can accept a delivered packet."""

    def receive(self, pkt: Packet) -> None: ...


class LossModel:
    """Base class for stochastic wire-loss injection (failure testing).

    The paper's testbed has no random wire loss -- all loss is queue drop --
    so the default model never drops.  Subclass for lossy-link experiments.
    """

    def drops(self, pkt: Packet) -> bool:
        return False


class BernoulliLoss(LossModel):
    """IID packet loss with probability ``p`` (failure-injection tests)."""

    def __init__(self, p: float, rng) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("loss probability must be in [0,1]")
        self.p = p
        self._rng = rng

    def drops(self, pkt: Packet) -> bool:
        return self._rng.random() < self.p


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert--Elliott) bursty wire loss.

    Each packet first moves the chain -- good->bad with probability
    ``p_gb``, bad->good with ``p_bg`` -- then drops with the state's loss
    probability (``loss_bad`` defaults to 1: the classic Gilbert model).
    The stationary bad-state occupancy is ``p_gb / (p_gb + p_bg)``, so with
    ``loss_good=0, loss_bad=1`` the long-run loss rate converges there.
    """

    def __init__(self, *, p_gb: float, p_bg: float, loss_good: float = 0.0,
                 loss_bad: float = 1.0, rng) -> None:
        for name, p in (("p_gb", p_gb), ("p_bg", p_bg),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {p}")
        if p_gb + p_bg <= 0:
            raise ValueError("p_gb + p_bg must be positive (the chain "
                             "must be able to move)")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = rng
        self.bad = False
        # Introspection counters for tests/reports.
        self.bursts = 0
        self.dropped = 0
        self.offered = 0

    def drops(self, pkt: Packet) -> bool:
        r = self._rng
        if self.bad:
            if r.random() < self.p_bg:
                self.bad = False
        elif r.random() < self.p_gb:
            self.bad = True
            self.bursts += 1
        self.offered += 1
        p = self.loss_bad if self.bad else self.loss_good
        if p > 0.0 and r.random() < p:
            self.dropped += 1
            return True
        return False


class DelayJitter:
    """Per-packet extra propagation delay: ``U(0, max_extra_s)`` applied
    with probability ``p``.  Installed on ``Link.jitter``; delayed packets
    can arrive after later undelayed ones, so this also induces reordering.
    """

    __slots__ = ("max_extra_s", "p", "_rng", "applied")

    def __init__(self, *, max_extra_s: float, p: float = 1.0, rng) -> None:
        if max_extra_s <= 0:
            raise ValueError("max_extra_s must be positive")
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0,1]")
        self.max_extra_s = max_extra_s
        self.p = p
        self._rng = rng
        self.applied = 0

    def extra(self) -> float:
        r = self._rng
        if self.p < 1.0 and r.random() >= self.p:
            return 0.0
        self.applied += 1
        return r.random() * self.max_extra_s


class Link:
    """Unidirectional link: egress FIFO -> serialization -> propagation.

    Parameters
    ----------
    bandwidth_bps : link rate in bits per second (the paper's 20 Mb link is
        ``20e6``).
    delay_s : one-way propagation delay in seconds.
    queue_bytes : drop-tail buffer budget at the egress.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float, delay_s: float,
                 sink: PacketSink, *, queue_bytes: int = 64 * 1440,
                 name: str = "link", loss: LossModel | None = None,
                 on_drop: Callable[[Packet], None] | None = None):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.sink = sink
        self.name = name
        self.trace = sim.bus
        # Forensics hooks (repro.obs.flight / repro.obs.spans): cached from
        # the simulator so every drop site pays one ``is None`` check.  The
        # queue gets the same references because burst enqueues
        # (``push_all``) drop inside the queue, not here.
        self.flight = getattr(sim, "flight", None)
        self.spans = getattr(sim, "spans", None)
        self.queue = DropTailQueue(queue_bytes, on_drop=on_drop)
        self.queue.trace = self.trace
        self.queue.name = name
        self.queue.flight = self.flight
        self.queue.spans = self.spans
        self.loss = loss or LossModel()
        self.jitter: DelayJitter | None = None
        self._busy = False
        self.up = True
        # Wire counters for utilisation / fairness accounting.
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_lost_wire = 0

    # ------------------------------------------------------------------
    def tx_time(self, pkt: Packet) -> float:
        """Serialization time of ``pkt`` on this link."""
        return pkt.wire_size * 8.0 / self.bandwidth_bps

    def send(self, pkt: Packet) -> bool:
        """Offer ``pkt`` to the link; False when the egress queue drops it
        or the link is administratively down."""
        if not self.up:
            self.packets_lost_wire += 1
            fl = self.flight
            if fl is not None:
                fl.note("net", "DROP", kind="down", link=self.name,
                        flow=pkt.flow_id, pkt=pkt.seq)
            sp = self.spans
            if sp is not None:
                sp.on_drop(pkt, self.name, "down")
            tr = self.trace
            if tr.enabled:
                tr.emit("net", PACKET_DROP, link=self.name, kind="down",
                        flow=pkt.flow_id, pkt=pkt.seq, size=pkt.wire_size)
            return False
        if not self.queue.push(pkt):
            tr = self.trace
            if tr.enabled:
                tr.emit("net", PACKET_DROP, link=self.name, kind="queue",
                        flow=pkt.flow_id, pkt=pkt.seq, size=pkt.wire_size,
                        queued_pkts=len(self.queue),
                        queued_bytes=self.queue.bytes)
            return False
        if not self._busy:
            self._start_transmission()
        return True

    def send_burst(self, pkts: "list[Packet]") -> int:
        """Offer a back-to-back burst; returns the number accepted.

        Exactly equivalent to calling :meth:`send` per packet -- the only
        shortcut is the queue's bulk enqueue, and the transmitter is
        kicked once instead of per packet.  Down links and traced runs
        degrade to the per-packet path so drop accounting and trace
        events stay identical.
        """
        if not self.up or self.trace.enabled:
            ok = 0
            send = self.send
            for p in pkts:
                ok += send(p)
            return ok
        ok = 0
        if not self._busy and pkts:
            # The head packet starts serialising immediately (vacating its
            # queue slot before the rest arrive), exactly as under
            # per-packet send -- this keeps overflow drops identical.
            ok += self.send(pkts[0])
            pkts = pkts[1:]
        return ok + self.queue.push_all(pkts)

    # ------------------------------------------------------------------
    def _start_transmission(self) -> None:
        pkt = self.queue.pop()
        self._busy = True
        self.sim.schedule(self.tx_time(pkt), self._tx_done, pkt)

    def _finish_tx(self, pkt: Packet) -> None:
        """Account one packet leaving the serialiser at the current instant
        and hand it to propagation (or the wire-loss drop path).  Shared by
        the per-packet chain here and the coalesced chain in
        :class:`repro.sim.batch.BatchLink`."""
        self.bytes_sent += pkt.wire_size
        self.packets_sent += 1
        if self.up and not self.loss.drops(pkt):
            delay = self.delay_s
            jit = self.jitter
            if jit is not None:
                delay += jit.extra()
            self._deliver(pkt, delay)
        else:
            self.packets_lost_wire += 1
            fl = self.flight
            if fl is not None:
                fl.note("net", "DROP", kind="wire", link=self.name,
                        flow=pkt.flow_id, pkt=pkt.seq)
            sp = self.spans
            if sp is not None:
                sp.on_drop(pkt, self.name, "wire")
            tr = self.trace
            if tr.enabled:
                tr.emit("net", PACKET_DROP, link=self.name, kind="wire",
                        flow=pkt.flow_id, pkt=pkt.seq, size=pkt.wire_size)

    def _deliver(self, pkt: Packet, delay: float) -> None:
        # Propagation: deliver after the flight time.  priority=-1 makes
        # arrivals at an instant precede timers at the same instant.
        self.sim.schedule(delay, self.sink.receive, pkt, priority=-1)

    def _tx_done(self, pkt: Packet) -> None:
        self._finish_tx(pkt)
        if not self.queue.empty:
            self._start_transmission()
        else:
            self._busy = False

    # ------------------------------------------------------------------
    # Dynamics (failure injection, handover ramps)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Administratively down the link; queued packets are flushed.
        Idempotent -- failing a down link is a no-op."""
        if not self.up:
            return
        self.up = False
        flushed = self.queue.flush()
        self.packets_lost_wire += flushed
        fl = self.flight
        if fl is not None:
            fl.note("net", "LINK_FAIL", link=self.name, flushed=flushed)
        tr = self.trace
        if tr.enabled:
            tr.emit("net", LINK_FAIL, link=self.name, flushed=flushed)

    def recover(self) -> None:
        if self.up:
            return
        self.up = True
        fl = self.flight
        if fl is not None:
            fl.note("net", "LINK_RECOVER", link=self.name)
        tr = self.trace
        if tr.enabled:
            tr.emit("net", LINK_RECOVER, link=self.name)

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Change the link rate mid-run (capacity ramp/cliff).  Packets
        already serialising keep their old transmission time."""
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps

    def set_delay(self, delay_s: float) -> None:
        """Change the propagation delay mid-run (path change).  Packets
        already in flight keep their old delay, which can reorder across
        the boundary -- exactly what a real path change does."""
        if delay_s < 0:
            raise ValueError("propagation delay cannot be negative")
        self.delay_s = delay_s

    def telemetry_probe(self) -> dict[str, float]:
        """Read-only wire counters for the telemetry recorder (cumulative;
        the recorder differences successive probes for utilisation)."""
        return {"bytes_sent": float(self.bytes_sent),
                "packets_sent": float(self.packets_sent),
                "packets_lost_wire": float(self.packets_lost_wire),
                "up": 1.0 if self.up else 0.0}

    def accounting_violation(self) -> str | None:
        """Wire accounting at this link: every queue departure must either
        have finished serialising (``packets_sent``) or still be on the
        wire (``_busy``).  Returns a description, or None when sane."""
        st = self.queue.stats
        in_service = 1 if self._busy else 0
        if st.departures != self.packets_sent + in_service:
            return (f"link accounting: queue departures={st.departures} != "
                    f"packets_sent={self.packets_sent} + "
                    f"in_service={in_service}")
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Link {self.name} {self.bandwidth_bps/1e6:.1f}Mbps "
                f"{self.delay_s*1e3:.1f}ms q={len(self.queue)}>")
