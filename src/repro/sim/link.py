"""Point-to-point links with serialization delay, propagation delay and an
egress drop-tail queue.

This is the Emulab substitute: the paper's "emulated 20Mb physical links with
a path RTT of 30ms" become two :class:`Link` instances (one per direction)
between the dumbbell routers.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..obs.events import PACKET_DROP
from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue

__all__ = ["Link", "PacketSink", "LossModel", "BernoulliLoss"]


class PacketSink(Protocol):
    """Anything that can accept a delivered packet."""

    def receive(self, pkt: Packet) -> None: ...


class LossModel:
    """Base class for stochastic wire-loss injection (failure testing).

    The paper's testbed has no random wire loss -- all loss is queue drop --
    so the default model never drops.  Subclass for lossy-link experiments.
    """

    def drops(self, pkt: Packet) -> bool:
        return False


class BernoulliLoss(LossModel):
    """IID packet loss with probability ``p`` (failure-injection tests)."""

    def __init__(self, p: float, rng) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("loss probability must be in [0,1]")
        self.p = p
        self._rng = rng

    def drops(self, pkt: Packet) -> bool:
        return self._rng.random() < self.p


class Link:
    """Unidirectional link: egress FIFO -> serialization -> propagation.

    Parameters
    ----------
    bandwidth_bps : link rate in bits per second (the paper's 20 Mb link is
        ``20e6``).
    delay_s : one-way propagation delay in seconds.
    queue_bytes : drop-tail buffer budget at the egress.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float, delay_s: float,
                 sink: PacketSink, *, queue_bytes: int = 64 * 1440,
                 name: str = "link", loss: LossModel | None = None,
                 on_drop: Callable[[Packet], None] | None = None):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.sink = sink
        self.name = name
        self.trace = sim.bus
        self.queue = DropTailQueue(queue_bytes, on_drop=on_drop)
        self.queue.trace = self.trace
        self.queue.name = name
        self.loss = loss or LossModel()
        self._busy = False
        self.up = True
        # Wire counters for utilisation / fairness accounting.
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_lost_wire = 0

    # ------------------------------------------------------------------
    def tx_time(self, pkt: Packet) -> float:
        """Serialization time of ``pkt`` on this link."""
        return pkt.wire_size * 8.0 / self.bandwidth_bps

    def send(self, pkt: Packet) -> bool:
        """Offer ``pkt`` to the link; False when the egress queue drops it
        or the link is administratively down."""
        if not self.up:
            self.packets_lost_wire += 1
            tr = self.trace
            if tr.enabled:
                tr.emit("net", PACKET_DROP, link=self.name, kind="down",
                        flow=pkt.flow_id, pkt=pkt.seq, size=pkt.wire_size)
            return False
        if not self.queue.push(pkt):
            tr = self.trace
            if tr.enabled:
                tr.emit("net", PACKET_DROP, link=self.name, kind="queue",
                        flow=pkt.flow_id, pkt=pkt.seq, size=pkt.wire_size,
                        queued_pkts=len(self.queue),
                        queued_bytes=self.queue.bytes)
            return False
        if not self._busy:
            self._start_transmission()
        return True

    # ------------------------------------------------------------------
    def _start_transmission(self) -> None:
        pkt = self.queue.pop()
        self._busy = True
        self.sim.schedule(self.tx_time(pkt), self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.bytes_sent += pkt.wire_size
        self.packets_sent += 1
        if self.up and not self.loss.drops(pkt):
            # Propagation: deliver after the flight time.  priority=-1 makes
            # arrivals at an instant precede timers at the same instant.
            self.sim.schedule(self.delay_s, self.sink.receive, pkt,
                              priority=-1)
        else:
            self.packets_lost_wire += 1
            tr = self.trace
            if tr.enabled:
                tr.emit("net", PACKET_DROP, link=self.name, kind="wire",
                        flow=pkt.flow_id, pkt=pkt.seq, size=pkt.wire_size)
        if not self.queue.empty:
            self._start_transmission()
        else:
            self._busy = False

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Administratively down the link; queued packets are flushed."""
        self.up = False
        self.packets_lost_wire += len(self.queue)
        self.queue.clear()

    def recover(self) -> None:
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Link {self.name} {self.bandwidth_bps/1e6:.1f}Mbps "
                f"{self.delay_s*1e3:.1f}ms q={len(self.queue)}>")
