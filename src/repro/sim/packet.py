"""Packet model shared by every protocol in the reproduction.

A single slotted class keeps the hot path cheap (millions of packets per
experiment) while still carrying everything the paper's mechanisms need:

* ``marked`` -- IQ-RUDP sender priority marking: a *marked* packet requires
  reliable delivery, an *unmarked* one may be lost or deliberately discarded
  (paper section 2.1, adaptive reliability).
* ``tagged`` -- the conflict experiment (section 3.3) tags every fifth
  application datagram as control information that must reach the display.
* ``attrs`` -- quality attributes piggybacked on data, the application ->
  transport information flow at the heart of the coordination schemes.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any

__all__ = ["PacketKind", "Packet", "HEADER_BYTES", "ACK_BYTES"]

#: Transport+IP header overhead charged to every data packet on the wire.
HEADER_BYTES = 40
#: Wire size of a pure acknowledgement.
ACK_BYTES = 40


class PacketKind(IntEnum):
    """Distinguishes transport segment roles on the wire."""

    DATA = 0
    ACK = 1
    SYN = 2
    SYNACK = 3
    FIN = 4


class Packet:
    """One datagram in flight.

    ``size`` is the payload size in bytes; the wire occupies
    ``size + HEADER_BYTES``.  ``seq`` numbers are in *packets* for RUDP (the
    paper's window is packet-based) and in packets-of-MSS for our TCP.
    """

    __slots__ = (
        "flow_id", "kind", "seq", "ack", "size", "wire_size", "src", "dst",
        "sport", "dport", "created_at", "sent_at", "marked", "tagged",
        "frame_id", "retransmit", "attrs", "ecn", "sack", "skip",
        "last_of_frame", "fec", "deadline",
    )

    _ids = 0

    def __init__(self, *, flow_id: int, kind: PacketKind = PacketKind.DATA,
                 seq: int = 0, ack: int = -1, size: int = 0,
                 src: int = 0, dst: int = 0, sport: int = 0, dport: int = 0,
                 created_at: float = 0.0, marked: bool = True,
                 tagged: bool = False, frame_id: int = -1,
                 attrs: dict[str, Any] | None = None):
        self.flow_id = flow_id
        self.kind = kind
        self.seq = seq
        self.ack = ack
        self.size = size
        # Precomputed slot, not a property: links/queues read it several
        # times per packet and the attribute saves a descriptor call each
        # time.  The rare code that rewrites ``size`` after construction
        # (the skip-segment path in transport/base.py) must keep it in sync.
        self.wire_size = size + HEADER_BYTES
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.created_at = created_at
        self.sent_at = created_at
        self.marked = marked
        self.tagged = tagged
        self.frame_id = frame_id
        self.retransmit = 0
        self.attrs = attrs
        self.ecn = False
        self.sack = None
        # ``skip`` marks a zero-payload hole-fill segment: the sender decided
        # (adaptive reliability) not to retransmit a lost unmarked datagram
        # and tells the receiver to advance past its sequence number.
        self.skip = False
        # True on the final segment of an application frame; lets the
        # receiver time frame completions for inter-arrival metrics.
        self.last_of_frame = True
        # Non-None only on FEC repair segments: (generation id, stripe
        # index, covered-member metadata).  Data packets never set it, so
        # the disarmed receive path pays a single ``is None`` check.
        self.fec = None
        # Absolute simulation time after which the segment's frame is
        # stale; 0.0 means no deadline (deadline-aware scheduling off).
        self.deadline = 0.0

    @property
    def is_data(self) -> bool:
        return self.kind == PacketKind.DATA

    @property
    def is_ack(self) -> bool:
        return self.kind == PacketKind.ACK

    def copy(self) -> "Packet":
        """Shallow duplicate used for retransmissions."""
        p = Packet(flow_id=self.flow_id, kind=self.kind, seq=self.seq,
                   ack=self.ack, size=self.size, src=self.src, dst=self.dst,
                   sport=self.sport, dport=self.dport,
                   created_at=self.created_at, marked=self.marked,
                   tagged=self.tagged, frame_id=self.frame_id,
                   attrs=self.attrs)
        p.retransmit = self.retransmit
        p.skip = self.skip
        p.last_of_frame = self.last_of_frame
        p.fec = self.fec
        p.deadline = self.deadline
        return p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join((
            "M" if self.marked else "u",
            "T" if self.tagged else "-",
            f"R{self.retransmit}" if self.retransmit else "",
        ))
        return (f"<Pkt f{self.flow_id} {self.kind.name} seq={self.seq} "
                f"ack={self.ack} {self.size}B {flags}>")
