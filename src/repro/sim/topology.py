"""Dumbbell topology builder reproducing the paper's Emulab setup.

Paper section 3.1: "All experiments are conducted on emulated 20Mb physical
links with a path RTT of 30ms, unless otherwise noted, and a maximum RUDP
segment size of 1400 bytes."  Section 3.5's changing-network experiment uses
a path with 125 ms one-way delay instead.

The dumbbell is::

    senders --fast access--> [L router] ==bottleneck==> [R router] --> receivers
                                        <=============

Access links are fast and near-zero delay, so the bottleneck link alone sets
the path RTT and loss behaviour, exactly as on the emulated testbed.
"""

from __future__ import annotations

from .batch import BatchLink
from .engine import Simulator
from .link import Link
from .node import Host, Router

__all__ = ["Dumbbell", "PAPER_BOTTLENECK_BPS", "PAPER_RTT_S", "PAPER_MSS"]

#: Paper defaults (section 3.1).
PAPER_BOTTLENECK_BPS = 20e6
PAPER_RTT_S = 0.030
PAPER_MSS = 1400


class Dumbbell:
    """A two-router dumbbell with per-flow sender/receiver host pairs.

    Parameters mirror the paper: ``bottleneck_bps`` link rate and ``rtt_s``
    total two-way propagation delay (split evenly over the two directions of
    the bottleneck).  ``queue_pkts`` sizes the bottleneck buffer in units of
    MSS-sized wire packets; the default approximates one bandwidth-delay
    product plus slack, a standard emulation choice.
    """

    ACCESS_BPS = 1e9
    ACCESS_DELAY_S = 25e-6

    def __init__(self, sim: Simulator, *,
                 bottleneck_bps: float = PAPER_BOTTLENECK_BPS,
                 rtt_s: float = PAPER_RTT_S,
                 mss: int = PAPER_MSS,
                 queue_pkts: int = 64):
        self.sim = sim
        self.bottleneck_bps = bottleneck_bps
        self.rtt_s = rtt_s
        self.mss = mss
        one_way = max(rtt_s / 2.0 - 2 * self.ACCESS_DELAY_S, 0.0)
        qbytes = queue_pkts * (mss + 40)

        # Burst speed tier (repro.sim.batch): scenarios arm it by setting
        # ``sim.burst = True`` before building topology; every link then
        # coalesces back-to-back packets with bit-identical results.
        self._link_cls = BatchLink if getattr(sim, "burst", False) else Link

        self.left = Router(sim, address=1, name="L")
        self.right = Router(sim, address=2, name="R")
        self.forward = self._link_cls(
            sim, bottleneck_bps, one_way, self.right,
            queue_bytes=qbytes, name="bottleneck-fwd")
        self.backward = self._link_cls(
            sim, bottleneck_bps, one_way, self.left,
            queue_bytes=qbytes, name="bottleneck-bwd")
        self._next_addr = 10
        self._hosts: list[Host] = []

    # ------------------------------------------------------------------
    def add_flow_hosts(self, name: str = "") -> tuple[Host, Host]:
        """Create a (sender, receiver) host pair across the bottleneck.

        The sender sits left, the receiver right; both directions are wired
        so acknowledgements flow back through the reverse bottleneck link.
        """
        sender = Host(self.sim, self._next_addr, name=f"{name}-snd")
        receiver = Host(self.sim, self._next_addr + 1, name=f"{name}-rcv")
        self._next_addr += 2

        link_cls = self._link_cls
        up = link_cls(self.sim, self.ACCESS_BPS, self.ACCESS_DELAY_S,
                      self.left, name=f"{sender.name}-up")
        down = link_cls(self.sim, self.ACCESS_BPS, self.ACCESS_DELAY_S,
                        receiver, name=f"{receiver.name}-down")
        r_up = link_cls(self.sim, self.ACCESS_BPS, self.ACCESS_DELAY_S,
                        self.right, name=f"{receiver.name}-up")
        s_down = link_cls(self.sim, self.ACCESS_BPS, self.ACCESS_DELAY_S,
                          sender, name=f"{sender.name}-down")

        sender.attach_uplink(up)
        receiver.attach_uplink(r_up)
        # Left router: traffic to the receiver crosses the bottleneck;
        # traffic back to the sender exits on its access link.
        self.left.add_route(receiver.address, self.forward)
        self.left.add_route(sender.address, s_down)
        self.right.add_route(sender.address, self.backward)
        self.right.add_route(receiver.address, down)

        self._hosts.extend((sender, receiver))
        return sender, receiver

    # ------------------------------------------------------------------
    @property
    def bottleneck_queue(self):
        """Forward-direction bottleneck queue (where congestion lives)."""
        return self.forward.queue

    def utilization(self, duration_s: float) -> float:
        """Mean forward bottleneck utilisation over ``duration_s``."""
        if duration_s <= 0:
            return 0.0
        return (self.forward.bytes_sent * 8.0
                / (self.bottleneck_bps * duration_s))
