"""Time-series probes for experiments and figures.

The paper's Figures 2-4 are time series / derived series; these probes record
them without perturbing the simulation.  Storage is plain Python lists during
the run (appends dominate) and converts to NumPy arrays for analysis, per the
vectorise-at-the-edge idiom in the HPC guides.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .engine import Simulator

__all__ = ["Probe", "PeriodicSampler", "CountedSeries"]


class Probe:
    """Append-only (time, value) recorder."""

    def __init__(self, name: str = ""):
        self.name = name
        self._t: list[float] = []
        self._v: list[float] = []

    def record(self, t: float, value: float) -> None:
        self._t.append(t)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v, dtype=np.float64)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.times, self.values


class PeriodicSampler:
    """Samples ``fn()`` every ``period`` seconds into a :class:`Probe`.

    Used for congestion-window and queue-depth traces; start with
    :meth:`start` after the scenario is wired.
    """

    def __init__(self, sim: Simulator, period: float, fn: Callable[[], float],
                 name: str = ""):
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.period = period
        self.fn = fn
        self.probe = Probe(name)
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.sim.schedule(0.0, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.probe.record(self.sim.now, float(self.fn()))
        self.sim.schedule(self.period, self._tick)


class CountedSeries:
    """Per-event series keyed by an integer index (e.g. packet number).

    Figures 2/3 plot jitter against *packet index*; this container keeps the
    (index, value) pairs and converts lazily.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._i: list[int] = []
        self._v: list[float] = []

    def record(self, index: int, value: float) -> None:
        self._i.append(index)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._i)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return (np.asarray(self._i, dtype=np.int64),
                np.asarray(self._v, dtype=np.float64))

    def summary(self) -> dict[str, Any]:
        if not self._v:
            return {"count": 0, "mean": 0.0, "std": 0.0, "max": 0.0}
        v = np.asarray(self._v)
        return {"count": int(v.size), "mean": float(v.mean()),
                "std": float(v.std()), "max": float(v.max())}
