"""Seeded randomness helpers.

Every stochastic component (marking probabilities, VBR jitter, the synthetic
MBone trace, failure injection) draws from a stream split off a single
experiment seed, so whole experiments replay bit-identically and components
stay decoupled: adding draws to one stream never perturbs another.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, deterministically derived RNG streams.

    ``streams.get("marking")`` always returns the same
    :class:`random.Random` for the same root seed + name, regardless of the
    order streams are requested in.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def _derive(self, name: str) -> int:
        # Stable across processes (unlike hash()): seed the name bytes.
        h = np.frombuffer(name.encode(), dtype=np.uint8).sum(dtype=np.uint64)
        return (self.seed * 1_000_003 + int(h) * 7919 + len(name)) % (2**63)

    def get(self, name: str) -> random.Random:
        """Return (creating on first use) the named stream."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive(name))
            self._streams[name] = rng
        return rng

    def numpy(self, name: str) -> np.random.Generator:
        """A NumPy generator derived from the same root seed."""
        return np.random.default_rng(self._derive(name))
