"""Hosts and routers.

Addressing is deliberately small: nodes carry integer addresses, hosts demux
on destination port, routers forward on a static next-hop table.  That is all
a dumbbell reproduction needs, and it keeps the per-packet cost low.
"""

from __future__ import annotations

from typing import Protocol

from .engine import Simulator
from .link import Link
from .packet import Packet

__all__ = ["Endpoint", "Host", "Router"]


class Endpoint(Protocol):
    """A transport endpoint bound to a host port."""

    def receive(self, pkt: Packet) -> None: ...


class Host:
    """End system: owns transport endpoints, sends via its access link."""

    def __init__(self, sim: Simulator, address: int, name: str = ""):
        self.sim = sim
        self.address = address
        self.name = name or f"host{address}"
        self._ports: dict[int, Endpoint] = {}
        self._uplink: Link | None = None
        self.packets_received = 0
        self.no_route_drops = 0

    # ------------------------------------------------------------------
    def attach_uplink(self, link: Link) -> None:
        """Set the (single) egress link toward the network."""
        self._uplink = link

    def bind(self, port: int, endpoint: Endpoint) -> None:
        """Register ``endpoint`` to receive packets addressed to ``port``."""
        if port in self._ports:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._ports[port] = endpoint

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Transmit toward the network; False when there is no uplink or the
        access queue drops."""
        if self._uplink is None:
            self.no_route_drops += 1
            return False
        return self._uplink.send(pkt)

    def receive(self, pkt: Packet) -> None:
        """Deliver an arriving packet to the endpoint bound on its port."""
        self.packets_received += 1
        ep = self._ports.get(pkt.dport)
        if ep is not None:
            ep.receive(pkt)
        # Unbound ports silently sink the packet, like a closed UDP port.


class Router:
    """Static-routing store-and-forward router."""

    def __init__(self, sim: Simulator, address: int, name: str = ""):
        self.sim = sim
        self.address = address
        self.name = name or f"router{address}"
        self._routes: dict[int, Link] = {}
        self._default: Link | None = None
        self.forwarded = 0
        self.no_route_drops = 0

    def add_route(self, dst_address: int, link: Link) -> None:
        """Packets destined to ``dst_address`` leave on ``link``."""
        self._routes[dst_address] = link

    def set_default_route(self, link: Link) -> None:
        self._default = link

    def receive(self, pkt: Packet) -> None:
        link = self._routes.get(pkt.dst, self._default)
        if link is None:
            self.no_route_drops += 1
            return
        self.forwarded += 1
        link.send(pkt)
