"""Discrete-event network simulation substrate (Emulab substitute).

Public surface: the event engine, packet model, links/queues, nodes and the
dumbbell topology the paper's experiments run on.
"""

from .engine import Event, SimulationError, Simulator
from .link import BernoulliLoss, Link, LossModel
from .monitor import CountedSeries, PeriodicSampler, Probe
from .node import Host, Router
from .packet import ACK_BYTES, HEADER_BYTES, Packet, PacketKind
from .queues import DropTailQueue, QueueStats, REDQueue
from .rand import RandomStreams
from .topology import PAPER_BOTTLENECK_BPS, PAPER_MSS, PAPER_RTT_S, Dumbbell

__all__ = [
    "Event", "SimulationError", "Simulator",
    "BernoulliLoss", "Link", "LossModel",
    "CountedSeries", "PeriodicSampler", "Probe",
    "Host", "Router",
    "ACK_BYTES", "HEADER_BYTES", "Packet", "PacketKind",
    "DropTailQueue", "QueueStats", "REDQueue",
    "RandomStreams",
    "PAPER_BOTTLENECK_BPS", "PAPER_MSS", "PAPER_RTT_S", "Dumbbell",
]
