"""Command-line interface: run any paper experiment or a custom scenario.

Examples
--------
::

    python -m repro table1                 # regenerate a paper table
    python -m repro table6 --seed 3        # different seed
    python -m repro table6 --jobs 4        # fan rows across 4 processes
    python -m repro table3 --set cbr_bps=16e6   # override any config field
    python -m repro dynamics --jobs 4      # network-dynamics sweeps
    python -m repro reliability --jobs 4   # FEC repair tier vs ARQ-only
    python -m repro fuzz --budget 25 --seed 4   # differential fuzz sweep
    python -m repro list                   # what's available
    python -m repro scenario --transport iq --workload greedy \
        --cbr 16e6 --frames 4000 --adaptation resolution
    python -m repro scenario --telemetry 0.1 --save a.pkl   # sampled series
    python -m repro population --flows 1000  # burst/fluid population run
    python -m repro profile --cbr 16e6     # engine self-profile for one run
    python -m repro compare a.pkl b.pkl    # run diff (exit 1 on divergence)
    python -m repro metrics a.pkl          # Prometheus text exposition
    python -m repro lineage --transport iq --workload trace_clocked \
        --adaptation marking --cbr 18.5e6 --tolerance 0.4   # causal chain
    python -m repro forensics failed.pkl   # last-moments flight timeline

The experiment subcommands print the same paper-vs-measured blocks the
benches write; ``scenario`` runs a one-off configuration (through the
:mod:`repro.api` facade) and prints the standard metric bundle.  Every
experiment command accepts repeated ``--set key=value`` overrides that
patch the underlying ``ScenarioConfig`` (values parse as Python literals;
unknown keys fail with a close-match suggestion).
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Callable

from .analysis.tables import render_comparison, render_table
from .experiments import (baseline, conflict, dynamics, granularity,
                          overreaction, reliability)
from .experiments.common import TRANSPORTS
from .middleware.adaptation import ADAPTATIONS

__all__ = ["main", "EXPERIMENTS", "parse_overrides"]


def parse_overrides(pairs: "list[str] | None") -> "dict | None":
    """Parse repeated ``--set KEY=VALUE`` options into config overrides.

    Values are parsed as Python literals (``16e6``, ``0.25``, ``None``,
    ``(2.0, 1e6, 5.0)``); anything that does not parse stays a string, so
    ``--set workload=greedy`` works unquoted.  Key validity is *not*
    checked here -- ``ScenarioConfig.replace`` rejects unknown fields with
    a did-you-mean hint at application time.
    """
    if not pairs:
        return None
    out: dict = {}
    for item in pairs:
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise SystemExit(
                f"error: --set expects KEY=VALUE, got {item!r}")
        try:
            out[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            out[key] = raw
    return out

def _table(headers, paper, measured, title) -> str:
    paper_rows = [(k, *v) for k, v in paper.items()]
    return render_comparison(title, headers, paper_rows, measured)


def _run_table1(args) -> str:
    res = baseline.run_table1(
        seed=args.seed, jobs=args.jobs, trace=args.trace,
        overrides=parse_overrides(args.set), campaign_dir=args.campaign_dir)
    measured = [(k, *(round(x, 3) for x in baseline.table_metrics(r)))
                for k, r in res.items()]
    return _table(("row", "Time", "Thr KB/s", "IA", "Jitter"),
                  baseline.PAPER_TABLE1, measured, "Table 1")


def _run_table2(args) -> str:
    res = baseline.run_table2(
        seed=args.seed, jobs=args.jobs, trace=args.trace,
        overrides=parse_overrides(args.set), campaign_dir=args.campaign_dir)
    measured = [(k, *(round(x, 4) for x in baseline.table_metrics(r)))
                for k, r in res.items()]
    return _table(("row", "Time", "Thr KB/s", "IA", "Jitter"),
                  baseline.PAPER_TABLE2, measured, "Table 2")


def _run_table3(args) -> str:
    res = conflict.run_table3(
        seed=args.seed, jobs=args.jobs, trace=args.trace,
        overrides=parse_overrides(args.set), campaign_dir=args.campaign_dir)
    measured = [(k, *(round(x, 2) for x in conflict.conflict_metrics(r)))
                for k, r in res.items()]
    return _table(("row", "Dur", "Recv%", "TagDly", "TagJit", "Dly", "Jit"),
                  conflict.PAPER_TABLE3, measured, "Table 3")


def _run_table4(args) -> str:
    res = conflict.run_table4(
        seed=args.seed, jobs=args.jobs, trace=args.trace,
        overrides=parse_overrides(args.set), campaign_dir=args.campaign_dir)
    measured = [(k, *(round(x, 2) for x in conflict.conflict_metrics(r)))
                for k, r in res.items()]
    return _table(("row", "Dur", "Recv%", "TagDly", "TagJit", "Dly", "Jit"),
                  conflict.PAPER_TABLE4, measured, "Table 4")


def _run_table5(args) -> str:
    res = overreaction.run_table5(
        seed=args.seed, jobs=args.jobs, trace=args.trace,
        overrides=parse_overrides(args.set), campaign_dir=args.campaign_dir)
    measured = [(k, *(round(x, 2)
                      for x in overreaction.overreaction_metrics(r)))
                for k, r in res.items()]
    return _table(("row", "Thr KB/s", "Dur", "Dly", "Jit"),
                  overreaction.PAPER_TABLE5, measured, "Table 5")


def _run_table6(args) -> str:
    res = overreaction.run_table6(
        seed=args.seed, jobs=args.jobs, trace=args.trace,
        overrides=parse_overrides(args.set), campaign_dir=args.campaign_dir)
    rows = []
    paper_rows = []
    for rate, by_name in res.items():
        for name, r in by_name.items():
            rows.append((f"{rate}M", name, *(round(x, 2) for x in
                         overreaction.overreaction_metrics(r))))
            paper_rows.append((f"{rate}M", name,
                               *overreaction.PAPER_TABLE6[rate][name]))
    return render_comparison("Table 6",
                             ("iperf", "row", "Thr KB/s", "Dur", "Dly",
                              "Jit"), paper_rows, rows)


def _run_table7(args) -> str:
    res = granularity.run_table7(
        seed=args.seed, jobs=args.jobs, trace=args.trace,
        overrides=parse_overrides(args.set), campaign_dir=args.campaign_dir)
    measured = [(k, *(round(x, 2)
                      for x in granularity.granularity_metrics(r)))
                for k, r in res.items()]
    return _table(("row", "Dur", "Thr KB/s", "Dly", "Jit"),
                  granularity.PAPER_TABLE7, measured, "Table 7")


def _run_table8(args) -> str:
    res = granularity.run_table8(
        seed=args.seed, jobs=args.jobs, trace=args.trace,
        overrides=parse_overrides(args.set), campaign_dir=args.campaign_dir)
    measured = [(k, *(round(x, 2)
                      for x in granularity.granularity_metrics(r)))
                for k, r in res.items()]
    return _table(("row", "Dur", "Thr KB/s", "Dly", "Jit"),
                  granularity.PAPER_TABLE8, measured, "Table 8")


EXPERIMENTS: dict[str, Callable] = {
    "table1": _run_table1, "table2": _run_table2, "table3": _run_table3,
    "table4": _run_table4, "table5": _run_table5, "table6": _run_table6,
    "table7": _run_table7, "table8": _run_table8,
}


def _run_dynamics(args) -> str:
    schedules = tuple(args.schedules.split(",")) if args.schedules else None
    res = dynamics.run_dynamics(
        schedules=schedules, seed=args.seed, jobs=args.jobs,
        trace=args.trace, overrides=parse_overrides(args.set),
        campaign_dir=args.campaign_dir)
    return dynamics.render_dynamics(res)


def _run_reliability(args) -> str:
    schedules = tuple(args.schedules.split(",")) if args.schedules else None
    res = reliability.run_reliability(
        schedules=schedules, n_frames=args.frames, seed=args.seed,
        jobs=args.jobs, trace=args.trace,
        overrides=parse_overrides(args.set),
        campaign_dir=args.campaign_dir)
    return reliability.render_reliability(res)


def _build_scenario(args):
    """One-off scenario from the shared ``scenario``/``profile`` options."""
    from .api import Scenario
    scenario = Scenario(
        transport=args.transport, workload=args.workload,
        n_frames=args.frames, base_frame_size=args.frame_size,
        frame_rate=args.frame_rate,
        adaptation=ADAPTATIONS[args.adaptation],
        cbr_bps=args.cbr, vbr_mean_bps=args.vbr,
        loss_tolerance=args.tolerance, rtt_s=args.rtt, seed=args.seed,
        time_cap=args.time_cap)
    overrides = parse_overrides(args.set)
    if overrides:
        scenario = scenario.replace(**overrides)
    return scenario


def _run_scenario_cmd(args) -> str:
    from .api import run
    scenario = _build_scenario(args)
    if args.telemetry:
        from .api import TelemetryConfig
        scenario = scenario.replace(
            telemetry=TelemetryConfig(cadence_s=args.telemetry))
    # Traced one-off runs always execute fresh (cache=False) so the trace
    # file actually contains the run's event stream.
    res = run(scenario, cache=False if args.trace else None,
              trace=args.trace)
    if args.save:
        import pickle
        with open(args.save, "wb") as fh:
            pickle.dump(res, fh)
    rows = [(k, round(v, 4)) for k, v in sorted(res.summary.items())]
    out = render_table(("metric", "value"), rows,
                       title=f"scenario: {args.transport}/{args.workload}")
    if args.save:
        out += (f"\n\nresult saved to {args.save} "
                f"(inspect with 'repro metrics {args.save}' or diff two "
                f"saves with 'repro compare A B')")
    return out


def _run_population_cmd(args) -> str:
    from .analysis.tables import render_table as _rt
    from .experiments.population import run_population
    res = run_population(
        n_flows=args.flows, frames_per_flow=args.frames,
        frame_bytes=args.frame_size, bottleneck_bps=args.bottleneck,
        fluid_bps=args.fluid, rtt_s=args.rtt, seed=args.seed,
        arrival_window_s=args.window, time_cap=args.time_cap,
        burst=not args.no_burst)
    rows = [(k, round(v, 4)) for k, v in sorted(res.summary.items())]
    return _rt(("metric", "value"), rows,
               title=f"population: {args.flows} flows")


def _run_profile_cmd(args) -> str:
    from .obs.profiler import profile_scenario, render_profile
    res, profile = profile_scenario(_build_scenario(args).config)
    if args.json:
        import json
        return json.dumps({"summary": res.summary,
                           "profile": profile.as_dict()},
                          indent=2, sort_keys=True)
    return render_profile(profile, top=args.top)


def _run_compare_cmd(args) -> int:
    from .obs.compare import compare_artifacts, render_comparison_report
    report = compare_artifacts(args.a, args.b, rtol=args.rtol,
                               atol=args.atol, eps=args.eps)
    if args.json:
        import json
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_comparison_report(report, all_rows=args.all))
    return report.exit_code


def _run_metrics_cmd(args) -> str:
    from .api import load_result
    res = load_result(args.path)
    if res.registry is None:
        raise ValueError(f"{args.path} carries no metrics registry")
    return res.registry.render_prometheus(prefix=args.prefix)


def _run_fuzz_cmd(args) -> int:
    from .fuzz import run_fuzz
    report = run_fuzz(budget=args.budget, seed=args.seed, jobs=args.jobs,
                      timeout=args.timeout)
    if args.forensics:
        import json
        with open(args.forensics, "w") as fh:
            json.dump({"summary": report.summary_line(),
                       "failures": report.failures,
                       "mismatches": report.mismatches,
                       "forensics": report.forensics}, fh, indent=2)
        print(f"[fuzz] forensics written to {args.forensics} "
              f"({len(report.forensics)} record(s)); view with "
              f"'repro forensics {args.forensics}'")
    return 0 if report.ok else 1


def _run_lineage_cmd(args) -> str:
    from .analysis.lineage import render_frame_lineage, render_lineage
    if args.load:
        import pickle
        with open(args.load, "rb") as fh:
            res = pickle.load(fh)
        spans = getattr(res, "spans", None)
        if spans is None:
            raise ValueError(
                f"{args.load} carries no lineage spans; save it from a "
                f"run with spans armed (repro lineage ... --save PATH, or "
                f"ScenarioConfig(spans=True))")
    else:
        from .api import run
        scenario = _build_scenario(args).replace(spans=True)
        res = run(scenario)
        spans = res.spans
    if args.save:
        import pickle
        with open(args.save, "wb") as fh:
            pickle.dump(res, fh)
    if args.json:
        import json
        return json.dumps(spans, indent=2, sort_keys=True)
    if args.frame is not None:
        return render_frame_lineage(spans, args.frame)
    return render_lineage(spans, limit=args.limit)


def _render_forensics_record(rec, limit) -> str:
    from .obs.flight import render_flight
    parts = [f"== {rec.get('label', '?')}: {rec.get('case', '?')}"]
    for m in rec.get("mismatches", ()):
        parts.append(f"   {m}")
    div = rec.get("first_divergence")
    if div is not None:
        parts.append(f"   first divergence at event #{div} "
                     f"(marked >> below)")
    parts.append("-- reference run --")
    parts.append(render_flight(rec.get("ref_flight"), mark_id=div,
                               limit=limit))
    if rec.get("other_flight") is not None:
        parts.append("-- re-run --")
        parts.append(render_flight(rec.get("other_flight"), mark_id=div,
                                   limit=limit))
    return "\n".join(parts)


def _run_forensics_cmd(args) -> str:
    """Render the last-moments timeline of a failure artifact: a pickled
    ScenarioResult/FailedResult, or a ``repro fuzz --forensics`` JSON."""
    from .analysis.lineage import render_lineage
    from .obs.flight import render_flight
    if args.path.endswith(".json"):
        import json
        with open(args.path) as fh:
            payload = json.load(fh)
        records = payload.get("forensics", [])
        parts = [f"fuzz forensics: {len(records)} record(s)"]
        summary = payload.get("summary")
        if summary:
            parts.append(summary)
        for rec in records:
            parts.append("")
            parts.append(_render_forensics_record(rec, args.limit))
        return "\n".join(parts)
    import pickle

    from .experiments.common import ScenarioResult
    from .runner import FailedResult
    with open(args.path, "rb") as fh:
        res = pickle.load(fh)
    if not isinstance(res, (ScenarioResult, FailedResult)):
        raise ValueError(
            f"{args.path} holds {type(res).__name__}, not a "
            f"ScenarioResult/FailedResult (save one with --save, or point "
            f"at a 'repro fuzz --forensics' JSON)")
    flight = getattr(res, "flight", None)
    parts = []
    if getattr(res, "failed", False):
        parts.append(f"forensics: FAILED scenario "
                     f"[{res.kind}{f'/{res.error_type}' if res.error_type else ''}]"
                     f" {res.scenario}")
        if res.message:
            parts.append(f"  {res.message.strip().splitlines()[0]}")
    else:
        parts.append(f"forensics: completed={getattr(res, 'completed', '?')}"
                     f" scenario result {args.path}")
    parts.append("")
    parts.append(render_flight(flight, limit=args.limit))
    spans = getattr(res, "spans", None)
    if spans is not None:
        parts.append("")
        parts.append(render_lineage(spans, limit=args.limit))
    tb = getattr(res, "traceback", "")
    if tb:
        parts.append("")
        parts.append("--- worker traceback ---")
        parts.append(tb.rstrip())
    return "\n".join(parts)


def _run_report_cmd(args) -> str:
    types = None
    if args.events:
        types = () if args.events == "all" else tuple(args.events.split(","))
    if args.json:
        import json
        from .obs.report import report_json
        return json.dumps(report_json(args.path, run=args.run,
                                      limit=args.limit, types=types),
                          indent=2, sort_keys=True)
    from .obs.report import render_report
    return render_report(args.path, run=args.run, limit=args.limit,
                         types=types)


def _campaign_from_dir(dir_path: str):
    """Rebuild a campaign from a directory's stored manifest spec."""
    from .campaign import Campaign, CampaignStore
    store = CampaignStore(dir_path)
    manifest = store.read_manifest()
    if manifest is None:
        raise FileNotFoundError(
            f"no campaign manifest in {dir_path}; start one with "
            f"'repro campaign run SPEC --dir {dir_path}'")
    spec = manifest.get("spec")
    if spec is None:
        raise ValueError(
            f"the campaign in {dir_path} was built programmatically (no "
            f"stored spec); resume it through its original entry point")
    return store, Campaign.from_mapping(spec)


def _execute_campaign(campaign, args) -> int:
    """Shared run/resume executor: run, report, map outcome to exit code
    (0 clean, 1 failed cells, 130 interrupted with a resume hint)."""
    from .campaign import run_campaign
    print(campaign.describe(), file=sys.stderr)
    try:
        run = run_campaign(campaign, dir=args.dir, workers=args.workers,
                           timeout=args.timeout, retries=args.retries)
    except KeyboardInterrupt:
        print(file=sys.stderr)
        if args.dir:
            print(f"interrupted; finished cells are saved -- resume with: "
                  f"repro campaign resume {args.dir} "
                  f"--workers {args.workers}", file=sys.stderr)
        else:
            print("interrupted (no --dir: nothing persisted)",
                  file=sys.stderr)
        return 130
    report = run.report()
    print(report.render())
    if not run.complete and args.dir:
        print(f"\n{len(run.incomplete)} cell(s) still pending; resume "
              f"with: repro campaign resume {args.dir}", file=sys.stderr)
        return 130
    return 1 if report.failed else 0


def _run_campaign_cmd(args) -> int:
    from .api import load_campaign
    campaign = load_campaign(args.spec)
    overrides = parse_overrides(args.set)
    if overrides:
        campaign = campaign.replace_template(**overrides)
    return _execute_campaign(campaign, args)


def _resume_campaign_cmd(args) -> int:
    _, campaign = _campaign_from_dir(args.dir)
    return _execute_campaign(campaign, args)


def _status_campaign_cmd(args) -> str:
    from .campaign import CampaignStore
    status = CampaignStore(args.dir).status()
    if args.json:
        import json
        return json.dumps(status, indent=1, sort_keys=True)
    lines = [f"campaign {status['name']}: {status['done']}/{status['total']}"
             f" done ({status['failed']} failed), {status['running']} "
             f"running, {status['pending']} pending"
             + (f", {status['stale_claims']} stale claim(s)"
                if status['stale_claims'] else "")]
    for worker, n in status["workers"].items():
        lines.append(f"  {worker}: {n} cell(s) executed")
    for hb in status["heartbeats"]:
        lines.append(f"  heartbeat {hb['worker']}: {hb['state']}, age "
                     f"{hb['age_s']:.0f}s, {hb['done']} done "
                     f"({hb['failed']} failed), {hb['rate_per_s']:.2f} "
                     f"cells/s"
                     + (f", on {hb['claimed']!r}" if hb["claimed"] else ""))
    for claim in status["claims"]:
        lines.append(f"  lease on {claim['cell']!r}: held by "
                     f"{claim['worker']} for {claim['age_s']:.0f}s"
                     + (" -- STALE (stealable)" if claim["expired"] else ""))
    return "\n".join(lines)


def _watch_campaign_cmd(args) -> int:
    """Live (or ``--once``) view of a running campaign directory."""
    import time

    from .campaign import CampaignStore
    from .obs.live import (StreamingAggregator, _manifest_cells,
                           render_watch, watch_snapshot)
    metrics = tuple(args.metrics.split(",")) if args.metrics else None
    if args.once:
        snap = watch_snapshot(args.dir, expiry_s=args.expiry,
                              metrics=metrics)
        print(render_watch(snap))
        return 0
    store = CampaignStore(args.dir)
    manifest = store.read_manifest()
    if manifest is None:
        raise FileNotFoundError(
            f"no campaign manifest in {args.dir}; start one with "
            f"'repro campaign run SPEC --dir {args.dir}'")
    # One aggregator across refreshes: each tick folds only newly landed
    # cells, so watching a big campaign is O(new) per refresh.
    agg = StreamingAggregator(_manifest_cells(store, manifest),
                              metrics=metrics)
    try:
        while True:
            snap = watch_snapshot(args.dir, agg=agg, expiry_s=args.expiry,
                                  metrics=metrics)
            if sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            print(render_watch(snap))
            sys.stdout.flush()
            if snap["done"] >= snap["total"] and not snap["running"]:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print(file=sys.stderr)
        return 0


def _serve_cmd(args) -> int:
    """Serve a campaign directory's live state over HTTP."""
    from .obs.live import make_live_server
    server = make_live_server(args.dir, port=args.port, host=args.host,
                              expiry_s=args.expiry)
    host, port = server.server_address[:2]
    print(f"serving campaign {args.dir} on http://{host}:{port}/ "
          f"(Prometheus: /metrics; Ctrl-C to stop)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print(file=sys.stderr)
    finally:
        server.server_close()
    return 0


def _resolve_ledger(args):
    """The ledger named by ``--ledger-dir``/env, or None (caller errors)."""
    from .obs.ledger import RunLedger, ledger_dir
    root = args.ledger_dir or ledger_dir()
    if root is None:
        print("error: no run ledger configured; set REPRO_LEDGER_DIR or "
              "pass --ledger-dir", file=sys.stderr)
        return None
    return RunLedger(root)


def _history_cmd(args) -> int:
    from .obs.ledger import render_history
    ledger = _resolve_ledger(args)
    if ledger is None:
        return 2
    records = ledger.read(key=args.key)
    if not records:
        known = ", ".join(ledger.keys()) or "(ledger is empty)"
        print(f"error: no ledger records for {args.key!r}; known keys: "
              f"{known}", file=sys.stderr)
        return 2
    if args.json:
        import json
        print(json.dumps(records, indent=1, sort_keys=True))
        return 0
    metrics = tuple(args.metrics.split(",")) if args.metrics else None
    print(render_history(records, metrics=metrics, limit=args.limit))
    return 0


def _sentinel_cmd(args) -> int:
    from .obs.ledger import render_sentinel, sentinel_verdicts
    ledger = _resolve_ledger(args)
    if ledger is None:
        return 2
    records = ledger.read()
    if args.keys:
        wanted = set(args.keys)
        records = [r for r in records if r["key"] in wanted]
    verdicts = sentinel_verdicts(records, window=args.window,
                                 tolerance=args.tolerance)
    if args.json:
        import json
        print(json.dumps(verdicts, indent=1, sort_keys=True))
    else:
        print(render_sentinel(verdicts))
    return 1 if any(v["verdict"] == "regression" for v in verdicts) else 0


def _report_campaign_cmd(args) -> str:
    from .campaign import aggregate
    store, campaign = _campaign_from_dir(args.dir)
    results = {}
    for cell in campaign.cells():
        res = store.load_cell(cell.key)
        if res is not None:
            results[cell.key] = res
    metrics = tuple(args.metrics.split(",")) if args.metrics else None
    report = aggregate(campaign, results, metrics=metrics)
    if args.json:
        return report.to_json()
    if args.prom:
        return report.render_prometheus().rstrip("\n")
    return report.render()


def add_exec_flags(sp, *, seed: int | None = None, jobs: bool = False,
                   trace: str | None = None, set_: bool = False,
                   telemetry: bool = False, save: str | None = None,
                   campaign_dir: bool = False) -> None:
    """Attach the shared execution flag group to a subparser.

    One definition for the ``--seed/--jobs/--trace/--set/--telemetry/
    --save/--campaign-dir`` options every runnable command repeats; each
    flag is opt-in so commands pick the subset they support (``trace`` and
    ``save`` take the command-specific help text).
    """
    if seed is not None:
        sp.add_argument("--seed", type=int, default=seed)
    if jobs:
        sp.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the scenario batch "
                             "(results are identical for any N)")
    if trace is not None:
        sp.add_argument("--trace", metavar="PATH", default=None, help=trace)
    if set_:
        sp.add_argument("--set", action="append", metavar="KEY=VALUE",
                        default=None,
                        help="override any ScenarioConfig field for every "
                             "run (repeatable; values parse as Python "
                             "literals, e.g. --set cbr_bps=16e6)")
    if telemetry:
        sp.add_argument("--telemetry", type=float, metavar="CADENCE_S",
                        default=None,
                        help="sample per-flow/queue/link time series every "
                             "CADENCE_S sim-seconds (rides in the saved "
                             "result)")
    if save is not None:
        sp.add_argument("--save", metavar="PATH", default=None, help=save)
    if campaign_dir:
        sp.add_argument("--campaign-dir", metavar="DIR", default=None,
                        help="route the rows through a shared campaign "
                             "directory: interrupt and re-run the same "
                             "command to resume, point extra processes or "
                             "hosts at DIR to help (see 'repro campaign')")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="IQ-RUDP (HPDC 2002) reproduction harness")
    sub = p.add_subparsers(dest="command", required=True)

    for name in EXPERIMENTS:
        sp = sub.add_parser(name, help=f"regenerate the paper's {name}")
        add_exec_flags(sp, seed=2 if name in ("table5", "table6") else 1,
                       jobs=True, set_=True, campaign_dir=True,
                       trace="write the batch's trace events to PATH "
                             "(.jsonl or .jsonl.gz); view with "
                             "'repro report PATH'")

    dy = sub.add_parser(
        "dynamics",
        help="network-dynamics sweeps: coordinated vs uncoordinated under "
             "link flaps, handovers, bursty loss and capacity ramps")
    dy.add_argument("--schedules", metavar="NAMES", default=None,
                    help="comma-separated scenario subset (default: "
                         f"{','.join(dynamics.SCENARIOS)})")
    add_exec_flags(dy, seed=1, jobs=True, set_=True, campaign_dir=True,
                   trace="write the sweep's trace events to PATH; fault "
                         "phases show up in 'repro report PATH'")

    rl = sub.add_parser(
        "reliability",
        help="application-tailored reliability sweeps: FEC repair tier vs "
             "ARQ-only IQ-RUDP under bursty loss and handover blackouts")
    rl.add_argument("--schedules", metavar="NAMES", default=None,
                    help="comma-separated scenario subset (default: "
                         f"{','.join(reliability.SCENARIOS)})")
    rl.add_argument("--frames", type=int, default=250, metavar="N",
                    help="trace frames offered per cell (default 250; "
                         "keep >= 150 so every arm is still active when "
                         "the faults land)")
    add_exec_flags(rl, seed=1, jobs=True, set_=True, campaign_dir=True,
                   trace="write the sweep's trace events to PATH; FEC "
                         "repair/recovery events show up in "
                         "'repro report PATH' and 'repro lineage'")

    sub.add_parser("list", help="list experiments")

    def add_scenario_options(sp):
        sp.add_argument("--transport", choices=TRANSPORTS, default="iq")
        sp.add_argument("--workload",
                        choices=("greedy", "trace_clocked", "fixed_clocked"),
                        default="greedy")
        sp.add_argument("--adaptation", choices=sorted(ADAPTATIONS),
                        default="none")
        sp.add_argument("--frames", type=int, default=2000)
        sp.add_argument("--frame-size", type=int, default=1400)
        sp.add_argument("--frame-rate", type=float, default=10.0)
        sp.add_argument("--cbr", type=float, default=0.0)
        sp.add_argument("--vbr", type=float, default=0.0)
        sp.add_argument("--tolerance", type=float, default=None)
        sp.add_argument("--rtt", type=float, default=0.030)
        sp.add_argument("--time-cap", type=float, default=600.0)
        add_exec_flags(sp, seed=1, set_=True)

    sc = sub.add_parser("scenario", help="run a custom scenario")
    add_scenario_options(sc)
    add_exec_flags(sc, telemetry=True,
                   trace="write this run's trace events to PATH (forces a "
                         "fresh, uncached run)",
                   save="pickle the (detached) result to PATH for "
                        "'repro compare' / 'repro metrics'")

    pp = sub.add_parser(
        "population",
        help="run a population scenario on the burst/fluid speed tier: "
             "many concurrent foreground transports with fluid aggregate "
             "cross traffic (see EXPERIMENTS.md, 'Scale tiers')")
    pp.add_argument("--flows", type=int, default=1000, metavar="N",
                    help="concurrent foreground flows (default 1000)")
    pp.add_argument("--frames", type=int, default=40, metavar="N",
                    help="frames submitted per flow (default 40)")
    pp.add_argument("--frame-size", type=int, default=1400)
    pp.add_argument("--bottleneck", type=float, default=200e6, metavar="BPS",
                    help="bottleneck rate in bps (default 200e6)")
    pp.add_argument("--fluid", type=float, default=50e6, metavar="BPS",
                    help="fluid background aggregate rate in bps; 0 "
                         "disables the macro tier (default 50e6)")
    pp.add_argument("--rtt", type=float, default=0.030)
    pp.add_argument("--window", type=float, default=2.0, metavar="S",
                    help="flow arrival window in seconds (default 2.0)")
    pp.add_argument("--time-cap", type=float, default=60.0)
    pp.add_argument("--seed", type=int, default=1)
    pp.add_argument("--no-burst", action="store_true",
                    help="run on per-packet links instead of the burst "
                         "tier (bit-identical results, ~10x slower)")

    pf = sub.add_parser(
        "profile",
        help="run one scenario on the self-profiling engine and print "
             "per-callback event counts (deterministic) and wall-time "
             "attribution (advisory)")
    add_scenario_options(pf)
    pf.add_argument("--top", type=int, default=20, metavar="N",
                    help="show the N busiest callbacks (default 20)")
    pf.add_argument("--json", action="store_true",
                    help="emit the profile (and run summary) as JSON")

    cp = sub.add_parser(
        "compare",
        help="diff two run artifacts (pickled results from 'scenario "
             "--save' and/or .jsonl[.gz] traces): summary-metric deltas, "
             "per-series first divergence, trace event-count deltas. "
             "Exits 0 when identical within tolerance, 1 when diverged.")
    cp.add_argument("a", help="baseline artifact")
    cp.add_argument("b", help="candidate artifact")
    cp.add_argument("--rtol", type=float, default=0.0,
                    help="relative tolerance for summary metrics (default 0)")
    cp.add_argument("--atol", type=float, default=0.0,
                    help="absolute tolerance for summary metrics (default 0)")
    cp.add_argument("--eps", type=float, default=0.0,
                    help="per-bucket tolerance for telemetry series "
                         "(default 0)")
    cp.add_argument("--all", action="store_true",
                    help="show matching rows too, not just divergences")
    cp.add_argument("--json", action="store_true",
                    help="emit the structured diff as JSON")

    mt = sub.add_parser(
        "metrics",
        help="render a saved result's metrics registry in Prometheus "
             "text exposition format")
    mt.add_argument("path", help="pickled result ('scenario --save' or a "
                                 "results-cache .pkl)")
    mt.add_argument("--prefix", default="repro_",
                    help="metric name prefix (default repro_)")

    fz = sub.add_parser(
        "fuzz",
        help="seeded scenario fuzz: random configs + fault schedules run "
             "with invariants armed and differential oracles (jobs=1 vs "
             "jobs=N, cache-hit vs fresh, armed vs disarmed)")
    fz.add_argument("--budget", type=int, default=25, metavar="N",
                    help="number of generated cases (default 25)")
    fz.add_argument("--seed", type=int, default=4,
                    help="generator seed; the case list is a pure function "
                         "of it (default 4)")
    fz.add_argument("--jobs", type=int, default=2, metavar="N",
                    help="worker count for the parallel differential pass")
    fz.add_argument("--timeout", type=float, default=120.0, metavar="S",
                    help="per-case wall-clock budget in seconds")
    fz.add_argument("--forensics", metavar="PATH", default=None,
                    help="write a JSON forensics file on completion: one "
                         "record per failure/mismatch with both sides' "
                         "flight-recorder dumps and the first-divergence "
                         "event id (view with 'repro forensics PATH')")

    ln = sub.add_parser(
        "lineage",
        help="run one scenario with causal frame-lineage spans armed and "
             "render the decision chain (attribute exchange -> "
             "coordination action) plus per-frame outcomes and latency "
             "decomposition")
    add_scenario_options(ln)
    ln.add_argument("--frame", type=int, default=None, metavar="N",
                    help="show the segment-level story of frame N instead "
                         "of the full report")
    ln.add_argument("--limit", type=int, default=20, metavar="N",
                    help="frame-table rows to show (non-delivered frames "
                         "always shown; default 20)")
    ln.add_argument("--json", action="store_true",
                    help="emit the raw lineage artifact as JSON")
    ln.add_argument("--load", metavar="PATH", default=None,
                    help="render lineage from a saved result pickle "
                         "instead of running a scenario")
    add_exec_flags(ln, save="pickle the (detached) result to PATH")

    fo = sub.add_parser(
        "forensics",
        help="render the last-moments flight-recorder timeline of a "
             "failure artifact: a pickled ScenarioResult/FailedResult, or "
             "a 'repro fuzz --forensics' JSON file")
    fo.add_argument("path", help="pickled result or fuzz forensics JSON")
    fo.add_argument("--limit", type=int, default=None, metavar="N",
                    help="show at most the newest N flight events")

    ca = sub.add_parser(
        "campaign",
        help="declarative experiment campaigns: a spec (template x axes x "
             "seeds) expands to a cell grid executed by work-stealing "
             "workers over a shared directory (resumable, multi-process, "
             "multi-host)")
    casub = ca.add_subparsers(dest="action", required=True)

    def add_campaign_exec_flags(sp):
        sp.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes splitting the cell grid "
                             "(default 1; results identical for any N)")
        sp.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-cell wall-clock budget in seconds")
        sp.add_argument("--retries", type=int, default=0, metavar="N",
                        help="extra attempts for transient failures "
                             "(timeout / worker-lost)")

    car = casub.add_parser(
        "run", help="expand a campaign spec and run (or resume) it")
    car.add_argument("spec", help="campaign spec file (.toml/.yaml/.json)")
    car.add_argument("--dir", metavar="DIR", default=None,
                     help="campaign directory holding claims and results; "
                          "required for resume, multi-worker and "
                          "multi-host execution")
    add_campaign_exec_flags(car)
    add_exec_flags(car, set_=True)

    crs = casub.add_parser(
        "resume",
        help="continue an interrupted campaign from its directory's "
             "stored spec (finished cells are never re-executed)")
    crs.add_argument("dir", help="campaign directory")
    add_campaign_exec_flags(crs)

    cst = casub.add_parser("status",
                           help="progress of a campaign directory, with "
                                "per-worker heartbeat liveness and lease "
                                "ages (stale leases flagged)")
    cst.add_argument("dir", help="campaign directory")
    cst.add_argument("--json", action="store_true",
                     help="emit the status as JSON")

    cwa = casub.add_parser(
        "watch",
        help="live view of a running campaign: per-worker heartbeat rows "
             "plus per-axis aggregates that update incrementally as cells "
             "land (no wait for the final report)")
    cwa.add_argument("dir", help="campaign directory")
    cwa.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (tests/CI)")
    cwa.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="refresh period in seconds (default 2)")
    cwa.add_argument("--expiry", type=float, default=300.0, metavar="S",
                     help="heartbeat staleness window in seconds "
                          "(default: the 300s claim lease)")
    cwa.add_argument("--metrics", metavar="NAMES", default=None,
                     help="comma-separated summary metrics to stream "
                          "(default: the standard campaign set)")

    crp = casub.add_parser(
        "report",
        help="aggregate a campaign directory: per-axis summary stats and "
             "failures by kind")
    crp.add_argument("dir", help="campaign directory")
    crp.add_argument("--metrics", metavar="NAMES", default=None,
                     help="comma-separated summary metrics to aggregate "
                          "(default: the spec's list, else duration/"
                          "throughput/inter-arrival/jitter)")
    crp.add_argument("--json", action="store_true",
                     help="emit the full deterministic report as JSON")
    crp.add_argument("--prom", action="store_true",
                     help="emit Prometheus text exposition instead")

    sv = sub.add_parser(
        "serve",
        help="expose a campaign directory's live state over HTTP: "
             "/metrics (Prometheus text exposition, pinned formatting), "
             "/ (the watch table) and /healthz")
    sv.add_argument("dir", help="campaign directory")
    sv.add_argument("--port", type=int, default=9464, metavar="N",
                    help="TCP port to bind (default 9464; 0 = ephemeral)")
    sv.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                    help="bind address (default 127.0.0.1)")
    sv.add_argument("--expiry", type=float, default=300.0, metavar="S",
                    help="heartbeat staleness window in seconds "
                         "(default: the 300s claim lease)")

    hi = sub.add_parser(
        "history",
        help="metric trajectories for one run-ledger key across runs "
             "(requires REPRO_LEDGER_DIR or --ledger-dir)")
    hi.add_argument("key", help="ledger key: a bench name, campaign name "
                                "or batch row label")
    hi.add_argument("--metrics", metavar="NAMES", default=None,
                    help="comma-separated metrics to plot (default: the "
                         "newest record's directional metrics)")
    hi.add_argument("--ledger-dir", metavar="DIR", default=None,
                    help="run-ledger directory (default: "
                         "$REPRO_LEDGER_DIR)")
    hi.add_argument("--limit", type=int, default=None, metavar="N",
                    help="show at most the newest N runs")
    hi.add_argument("--json", action="store_true",
                    help="emit the raw ledger records as JSON")

    se = sub.add_parser(
        "sentinel",
        help="regression sentinel: judge each ledger key's newest run "
             "against the median of a rolling window of its predecessors; "
             "exit 1 when any directional metric regressed beyond "
             "tolerance")
    se.add_argument("keys", nargs="*",
                    help="ledger keys to judge (default: every key)")
    se.add_argument("--window", type=int, default=5, metavar="N",
                    help="reference runs per key (default 5)")
    se.add_argument("--tolerance", type=float, default=0.10, metavar="F",
                    help="fractional drift treated as noise (default "
                         "0.10 = 10%%)")
    se.add_argument("--ledger-dir", metavar="DIR", default=None,
                    help="run-ledger directory (default: "
                         "$REPRO_LEDGER_DIR)")
    se.add_argument("--json", action="store_true",
                    help="emit the typed verdicts as JSON")

    rp = sub.add_parser("report",
                        help="render timeline + coordination audit for a "
                             "trace file")
    rp.add_argument("path", help="trace file written with --trace")
    rp.add_argument("--run", default=None,
                    help="only this run label (default: all runs)")
    rp.add_argument("--limit", type=int, default=60, metavar="N",
                    help="show at most the last N timeline rows per run")
    rp.add_argument("--events", default=None, metavar="TYPES",
                    help="comma-separated event types for the timeline, or "
                         "'all' (default: the adaptation/coordination set)")
    rp.add_argument("--json", action="store_true",
                    help="emit the report (timeline + audit) as JSON")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            print("experiments:", ", ".join(EXPERIMENTS))
            print("dynamics scenarios:", ", ".join(dynamics.SCENARIOS))
            print("reliability scenarios:",
                  ", ".join(reliability.SCENARIOS))
            print("plus: scenario (custom runs), population "
                  "(burst/fluid scale tier); see --help")
        elif args.command == "dynamics":
            print(_run_dynamics(args))
        elif args.command == "reliability":
            print(_run_reliability(args))
        elif args.command == "scenario":
            print(_run_scenario_cmd(args))
        elif args.command == "population":
            print(_run_population_cmd(args))
        elif args.command == "fuzz":
            return _run_fuzz_cmd(args)
        elif args.command == "lineage":
            print(_run_lineage_cmd(args))
        elif args.command == "forensics":
            print(_run_forensics_cmd(args))
        elif args.command == "profile":
            print(_run_profile_cmd(args))
        elif args.command == "compare":
            return _run_compare_cmd(args)
        elif args.command == "metrics":
            print(_run_metrics_cmd(args), end="")
        elif args.command == "campaign":
            if args.action == "run":
                return _run_campaign_cmd(args)
            if args.action == "resume":
                return _resume_campaign_cmd(args)
            if args.action == "status":
                print(_status_campaign_cmd(args))
            elif args.action == "watch":
                return _watch_campaign_cmd(args)
            else:
                print(_report_campaign_cmd(args))
        elif args.command == "serve":
            return _serve_cmd(args)
        elif args.command == "history":
            return _history_cmd(args)
        elif args.command == "sentinel":
            return _sentinel_cmd(args)
        elif args.command == "report":
            print(_run_report_cmd(args))
        else:
            print(EXPERIMENTS[args.command](args))
    except BrokenPipeError:
        # Reports are long; ``repro report ... | head`` is normal usage.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    except KeyboardInterrupt:
        print("\ninterrupted; completed rows are preserved -- re-run the "
              "same command to resume (campaign directory / results cache)",
              file=sys.stderr)
        return 130
    except (ValueError, FileNotFoundError) as exc:
        # Config mistakes (bad --set keys/values, unknown schedule names,
        # missing artifact paths) are user errors: no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
