"""Constant-bit-rate UDP source -- the paper's ``iperf`` cross traffic.

"To congest the 20M link, we use the iperf tool to generate UDP cross
traffic at a fixed rate that differs across experiments" (section 3.1).
iperf's UDP mode emits fixed-size datagrams on a fixed interval; this class
does exactly that on the simulated clock.
"""

from __future__ import annotations

from ..sim.engine import Simulator
from ..transport.udp import UdpSender

__all__ = ["CbrSource"]


class CbrSource:
    """Sends ``payload_bytes`` datagrams so the *wire* rate is ``rate_bps``.

    The interval accounts for header overhead (iperf's -b targets the UDP
    payload rate; the distinction is a constant factor -- we target wire
    rate so "18 Mbps cross traffic on a 20 Mbps link" leaves the 2 Mbps the
    paper's numbers imply).
    """

    def __init__(self, sim: Simulator, sender: UdpSender, *,
                 rate_bps: float, payload_bytes: int = 1400,
                 start: float = 0.0, stop: float | None = None):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if payload_bytes <= 0:
            raise ValueError("payload size must be positive")
        self.sim = sim
        self.sender = sender
        self.rate_bps = rate_bps
        self.payload_bytes = payload_bytes
        self.stop_time = stop
        self.interval = (payload_bytes + 40) * 8.0 / rate_bps
        self.datagrams_sent = 0
        self._running = False
        sim.at(start, self.start)

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            self._running = False
            return
        self.sender.send(self.payload_bytes)
        self.datagrams_sent += 1
        self.sim.schedule(self.interval, self._tick)

    def set_rate(self, rate_bps: float) -> None:
        """Change the target rate mid-run (used by step-congestion tests)."""
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps
        self.interval = (self.payload_bytes + 40) * 8.0 / rate_bps
