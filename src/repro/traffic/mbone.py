"""Synthetic MBone membership-dynamics trace (paper Figure 1 substitute).

The paper drives both the changing-application workload and the VBR cross
traffic from an MBone session-membership trace: "The changing pattern of
frame size follows the MBone trace in Figure 1 ... The frame size is the
group size multiplied by 3000 bytes" (section 3.1).  The original trace is
not available, so we synthesise one with the properties Figure 1 shows and
the experiments rely on:

* a positive integer group size fluctuating over time,
* "constant and very fast changes in rate" (section 3.3's justification for
  coarse thresholds) -- i.e. substantial step-to-step variation,
* occasional bursts of joins (flash crowds) and gradual decay.

The generator is a seeded birth-death (M/M/inf-style) membership process
with burst arrivals layered on top.  Because the experiments consume the
trace only as a frame-size multiplier, any series with comparable mean and
burstiness exercises the identical code paths (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

import numpy as np

__all__ = ["mbone_trace", "MboneParams"]


class MboneParams:
    """Tunables for the synthetic membership process.

    Defaults target a mean group size ~8 with excursions to ~25 and floors
    near 2, chosen so the changing-application workload (group x 3000 B per
    frame) offers roughly the load the paper's Table 1 durations imply.
    """

    __slots__ = ("join_rate", "mean_lifetime", "burst_prob", "burst_size",
                 "initial_members", "min_members")

    def __init__(self, *, join_rate: float = 2.0, mean_lifetime: float = 4.0,
                 burst_prob: float = 0.02, burst_size: int = 10,
                 initial_members: int = 8, min_members: int = 2):
        if join_rate <= 0 or mean_lifetime <= 0:
            raise ValueError("join_rate and mean_lifetime must be positive")
        if not 0.0 <= burst_prob <= 1.0:
            raise ValueError("burst_prob must be in [0,1]")
        self.join_rate = join_rate
        self.mean_lifetime = mean_lifetime
        self.burst_prob = burst_prob
        self.burst_size = burst_size
        self.initial_members = initial_members
        self.min_members = min_members


def mbone_trace(n: int, *, seed: int = 7, params: MboneParams | None = None
                ) -> np.ndarray:
    """Return ``n`` group-size samples (one per trace step).

    The process: per step, ``Poisson(join_rate)`` members join (plus a burst
    of ``burst_size`` with probability ``burst_prob``), and each current
    member independently leaves with probability ``1/mean_lifetime``.  The
    equilibrium mean is ``join_rate * mean_lifetime`` plus the burst
    contribution; ``min_members`` keeps the session alive.
    """
    if n <= 0:
        raise ValueError("trace length must be positive")
    p = params or MboneParams()
    rng = np.random.default_rng(seed)
    out = np.empty(n, dtype=np.int64)
    members = p.initial_members
    leave_p = 1.0 / p.mean_lifetime
    for i in range(n):
        joins = rng.poisson(p.join_rate)
        if rng.random() < p.burst_prob:
            joins += p.burst_size
        leaves = rng.binomial(members, leave_p) if members else 0
        members = max(members + joins - leaves, p.min_members)
        out[i] = members
    return out


def trace_frame_sizes(n: int, multiplier: int, *, seed: int = 7,
                      params: MboneParams | None = None) -> np.ndarray:
    """Frame-size series: group size x ``multiplier`` bytes.

    The paper's two uses: multiplier 3000 for the changing-application
    source, 2000 for the VBR cross-traffic source.
    """
    return mbone_trace(n, seed=seed, params=params) * multiplier
