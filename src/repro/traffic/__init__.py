"""Workload and cross-traffic generators."""

from .bulk import BulkSource
from .cbr import CbrSource
from .mbone import MboneParams, mbone_trace, trace_frame_sizes
from .vbr import VbrSource

__all__ = ["BulkSource", "CbrSource", "MboneParams", "mbone_trace",
           "trace_frame_sizes", "VbrSource"]
