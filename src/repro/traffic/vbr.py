"""Variable-bit-rate UDP source driven by a frame-size trace.

Paper section 3.1, changing-network setting: "a variable bit rate UDP source
is used as cross traffic ... The UDP source also has a fixed frame rate
(500 frames/sec) and the frame size fluctuation follows the same MBone
trace.  The frame size is the group size multiplied by 2000."
"""

from __future__ import annotations

from typing import Sequence

from ..sim.engine import Simulator
from ..transport.udp import UdpSender

__all__ = ["VbrSource"]


class VbrSource:
    """Emits one trace-sized frame every ``1/frame_rate`` seconds.

    The trace wraps around when exhausted so the source can outlive the
    trace length (cross traffic must persist for the whole experiment).
    """

    def __init__(self, sim: Simulator, sender: UdpSender, *,
                 frame_sizes: Sequence[int], frame_rate: float,
                 trace_step_s: float = 1.0,
                 start: float = 0.0, stop: float | None = None):
        if frame_rate <= 0:
            raise ValueError("frame rate must be positive")
        if trace_step_s <= 0:
            raise ValueError("trace step must be positive")
        if len(frame_sizes) == 0:
            raise ValueError("empty frame-size trace")
        self.sim = sim
        self.sender = sender
        self.frame_sizes = list(int(s) for s in frame_sizes)
        if any(s <= 0 for s in self.frame_sizes):
            raise ValueError("frame sizes must be positive")
        self.interval = 1.0 / frame_rate
        # Membership dynamics evolve on a seconds timescale (Figure 1), far
        # slower than the frame clock: the trace index advances once per
        # ``trace_step_s``, so congestion swings persist long enough for
        # transports and applications to react -- the regime the paper's
        # coordination schemes are designed for.
        self.trace_step_s = trace_step_s
        self.stop_time = stop
        self.frames_sent = 0
        self._start_time = start
        self._running = False
        sim.at(start, self.start)

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._start_time = self.sim.now
            self._tick()

    def stop(self) -> None:
        self._running = False

    def current_size(self) -> int:
        """Frame size for the current trace step (wraps around)."""
        # The epsilon absorbs float accumulation from the frame clock so a
        # frame nominally at a step boundary lands in the new step.
        elapsed = self.sim.now - self._start_time
        step = int(elapsed / self.trace_step_s + 1e-9)
        return self.frame_sizes[step % len(self.frame_sizes)]

    def _tick(self) -> None:
        if not self._running:
            return
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            self._running = False
            return
        self.sender.send(self.current_size(), frame_id=self.frames_sent)
        self.frames_sent += 1
        self.sim.schedule(self.interval, self._tick)
