"""Greedy bulk source for a reliable connection.

Two uses in the reproduction:

* the TCP cross flow in the fairness test (Table 2), and
* the changing-network application, which "sends out fixed size data packets
  as fast as allowed by RUDP" (section 3.1) -- greedy, backpressured by the
  transport window.

The source keeps the transport's send backlog topped up via the sender's
``on_space`` backpressure callback, so the *transport* (not the source
clock) paces the flow.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["BulkSource"]


class _SubmitTarget(Protocol):
    def submit(self, size: int, **kw) -> int: ...
    def finish(self) -> None: ...


class BulkSource:
    """Feeds ``total_bytes`` (or unbounded) ``chunk_bytes`` datagrams.

    Wire the sender with ``on_space=source.pump`` and call :meth:`start`
    once.  ``frame_id`` counts submitted chunks so receiver-side metrics can
    treat each chunk as a message.
    """

    def __init__(self, conn: _SubmitTarget, *, chunk_bytes: int = 1400,
                 total_bytes: int | None = None, marked: bool = True):
        if chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        if total_bytes is not None and total_bytes <= 0:
            raise ValueError("total_bytes must be positive when given")
        self.conn = conn
        self.chunk_bytes = chunk_bytes
        self.total_bytes = total_bytes
        self.marked = marked
        self.submitted_bytes = 0
        self.chunks = 0
        self.done = False
        self._started = False
        self._pumping = False

    def start(self) -> None:
        self._started = True
        self.pump()

    def pump(self) -> None:
        """Refill the transport backlog (on_space callback).

        Submitting can itself trigger ``on_space`` (the sender pumps and
        finds room), so the method guards against re-entry -- otherwise a
        single refill would nest and overshoot the byte budget.
        """
        if not self._started or self.done or self._pumping:
            return
        self._pumping = True
        try:
            for _ in range(16):
                if (self.total_bytes is not None
                        and self.submitted_bytes >= self.total_bytes):
                    self.done = True
                    self.conn.finish()
                    return
                size = self.chunk_bytes
                if self.total_bytes is not None:
                    size = min(size, self.total_bytes - self.submitted_bytes)
                self.conn.submit(size, marked=self.marked,
                                 frame_id=self.chunks)
                self.submitted_bytes += size
                self.chunks += 1
        finally:
            self._pumping = False
