"""Declarative network-dynamics schedules.

A :class:`FaultSchedule` is an immutable list of timed impairment *phases*
applied to a scenario's bottleneck links.  It lives inside
:class:`~repro.experiments.common.ScenarioConfig`, so it must behave like
every other config field:

* **hashable / stable repr** -- the results cache fingerprints configs with
  ``repr(value)`` (see :mod:`repro.runner.hashing`); every phase is a frozen
  dataclass whose auto-generated repr lists all parameters, and the schedule
  reproduces itself from its repr.
* **picklable** -- schedules ride to worker processes with the config.
* **declarative** -- phases say *what* the network does and *when*; the
  :class:`~repro.faults.injector.FaultInjector` translates them into
  simulator events, so two runs of the same schedule are deterministic for
  any ``--jobs N``.

Phase vocabulary (all times in simulation seconds from t=0):

===================  ====================================================
:class:`Blackout`    link(s) administratively down for a window
:class:`LinkFlap`    periodic down/up cycles inside a window (handover
                     storms, flaky last-mile)
:class:`BurstyLoss`  Gilbert--Elliott two-state wire loss inside a window
:class:`BandwidthRamp`  linear capacity change (cliff with ``steps=1``)
:class:`DelayRamp`   linear propagation-delay change
:class:`Jitter`      random per-packet extra delay (causes reordering)
===================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

__all__ = ["Blackout", "LinkFlap", "BurstyLoss", "BandwidthRamp",
           "DelayRamp", "Jitter", "FaultSchedule", "DIRECTIONS"]

#: Which bottleneck link(s) a phase applies to: the data path, the ACK
#: path, or both (a real outage usually takes both).
DIRECTIONS = ("fwd", "bwd", "both")


def _check_window(start: float, stop: float) -> None:
    if start < 0:
        raise ValueError(f"phase start {start} < 0")
    if stop <= start:
        raise ValueError(f"phase stop {stop} must exceed start {start}")


def _check_direction(direction: str) -> None:
    if direction not in DIRECTIONS:
        raise ValueError(f"direction must be one of {DIRECTIONS}, "
                         f"got {direction!r}")


def _check_prob(name: str, p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0,1], got {p}")


@dataclass(frozen=True)
class Blackout:
    """Link(s) hard down over ``[start, stop)`` -- the handover gap."""

    start: float
    stop: float
    direction: str = "both"

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_direction(self.direction)


@dataclass(frozen=True)
class LinkFlap:
    """Repeating ``down_s`` outages separated by ``up_s`` of service,
    starting at ``start`` and ceasing (link restored) at ``stop``."""

    start: float
    stop: float
    down_s: float
    up_s: float
    direction: str = "both"

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_direction(self.direction)
        if self.down_s <= 0 or self.up_s <= 0:
            raise ValueError("down_s and up_s must be positive")


@dataclass(frozen=True)
class BurstyLoss:
    """Gilbert--Elliott two-state wire loss over ``[start, stop)``.

    Per packet the chain moves good->bad with probability ``p_gb`` and
    bad->good with ``p_bg``; the stationary fraction of time spent bad is
    ``p_gb / (p_gb + p_bg)``.  With the default ``loss_good=0`` /
    ``loss_bad=1`` the stationary loss rate equals that fraction.
    """

    start: float
    stop: float
    p_gb: float
    p_bg: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    direction: str = "fwd"

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_direction(self.direction)
        for name in ("p_gb", "p_bg", "loss_good", "loss_bad"):
            _check_prob(name, getattr(self, name))
        if self.p_gb + self.p_bg <= 0:
            raise ValueError("p_gb + p_bg must be positive (the chain "
                             "must be able to move)")


@dataclass(frozen=True)
class BandwidthRamp:
    """Linear capacity change from the link's current rate to ``to_bps``
    over ``[start, stop]`` in ``steps`` discrete updates; the link *holds*
    ``to_bps`` afterwards (a capacity cliff is ``steps=1``)."""

    start: float
    stop: float
    to_bps: float
    steps: int = 10
    direction: str = "fwd"

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_direction(self.direction)
        if self.to_bps <= 0:
            raise ValueError("to_bps must be positive")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")


@dataclass(frozen=True)
class DelayRamp:
    """Linear propagation-delay change to ``to_s`` over ``[start, stop]``
    in ``steps`` updates; holds ``to_s`` afterwards."""

    start: float
    stop: float
    to_s: float
    steps: int = 10
    direction: str = "both"

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_direction(self.direction)
        if self.to_s < 0:
            raise ValueError("to_s cannot be negative")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")


@dataclass(frozen=True)
class Jitter:
    """Random extra propagation delay over ``[start, stop)``: each packet
    independently gains ``U(0, max_extra_s)`` with probability ``p``.
    Because delayed packets can land *after* later undelayed ones, this is
    also the reordering primitive."""

    start: float
    stop: float
    max_extra_s: float
    p: float = 1.0
    direction: str = "fwd"

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        _check_direction(self.direction)
        if self.max_extra_s <= 0:
            raise ValueError("max_extra_s must be positive")
        _check_prob("p", self.p)


Phase = Union[Blackout, LinkFlap, BurstyLoss, BandwidthRamp, DelayRamp,
              Jitter]

_PHASE_TYPES: Tuple[type, ...] = (Blackout, LinkFlap, BurstyLoss,
                                  BandwidthRamp, DelayRamp, Jitter)


class FaultSchedule:
    """Immutable, hashable sequence of impairment phases.

    Phases keep their construction order (the injector sorts nothing;
    overlapping phases compose -- e.g. a delay ramp under bursty loss).
    """

    __slots__ = ("phases",)

    def __init__(self, *phases: Phase):
        if not phases:
            raise ValueError("a FaultSchedule needs at least one phase")
        for ph in phases:
            if not isinstance(ph, _PHASE_TYPES):
                raise TypeError(f"not a fault phase: {ph!r}")
        object.__setattr__(self, "phases", tuple(phases))

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("FaultSchedule is immutable")

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FaultSchedule):
            return self.phases == other.phases
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.phases)

    def __repr__(self) -> str:
        inner = ", ".join(repr(ph) for ph in self.phases)
        return f"FaultSchedule({inner})"

    # -- pickling (``__slots__`` + blocked ``__setattr__``) ----------------
    def __getstate__(self):
        return self.phases

    def __setstate__(self, state):
        object.__setattr__(self, "phases", tuple(state))

    def __reduce__(self):
        return (self.__class__, tuple(self.phases))

    @property
    def horizon(self) -> float:
        """Time of the last phase boundary."""
        return max(ph.stop for ph in self.phases)

    def describe(self) -> str:
        """Compact one-line summary for trace headers and reports."""
        kinds = [type(ph).__name__ for ph in self.phases]
        return f"{len(kinds)} phase(s): " + ", ".join(kinds)
