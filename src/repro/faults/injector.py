"""Translate a :class:`~repro.faults.schedule.FaultSchedule` into simulator
events against a scenario's topology.

The injector is built *inside* ``run_scenario`` from the config alone -- the
schedule plus one named RNG stream (``streams.get("faults")``) -- so a given
(config, seed) pair produces the identical impairment event sequence in any
worker process: fault dynamics are as deterministic and cache-stable as the
rest of the scenario.

Every phase boundary emits a :data:`~repro.obs.events.FAULT_PHASE` trace
event; link outages additionally emit :data:`~repro.obs.events.LINK_FAIL` /
:data:`~repro.obs.events.LINK_RECOVER` from the link itself, so ``repro
report`` timelines show exactly when the network moved underneath the
transport.
"""

from __future__ import annotations

from ..obs.events import FAULT_PHASE
from ..sim.link import DelayJitter, GilbertElliottLoss, Link
from .schedule import (BandwidthRamp, Blackout, BurstyLoss, DelayRamp,
                       FaultSchedule, Jitter, LinkFlap)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms one schedule against a dumbbell's bottleneck links.

    Parameters
    ----------
    sim : the scenario's simulator (events are scheduled on it).
    net : a topology exposing ``forward`` / ``backward`` bottleneck links
        (:class:`~repro.sim.topology.Dumbbell`).
    schedule : the declarative phase list.
    rng : dedicated ``random.Random`` for the stochastic phases (bursty
        loss, jitter); derived from the scenario seed so results are
        reproducible for any job count.
    """

    def __init__(self, sim, net, schedule: FaultSchedule, rng) -> None:
        self.sim = sim
        self.net = net
        self.schedule = schedule
        self.rng = rng
        self.trace = sim.bus
        #: Counters for tests and reports.
        self.phases_begun = 0
        self.phases_ended = 0
        self.flap_cycles = 0

    # ------------------------------------------------------------------
    def _links(self, direction: str) -> tuple[Link, ...]:
        if direction == "fwd":
            return (self.net.forward,)
        if direction == "bwd":
            return (self.net.backward,)
        return (self.net.forward, self.net.backward)

    def _mark(self, idx: int, phase, state: str, **extra) -> None:
        counter = "phases_begun" if state == "begin" else "phases_ended"
        setattr(self, counter, getattr(self, counter) + 1)
        fl = getattr(self.sim, "flight", None)
        if fl is not None:
            fl.note("net", "FAULT_PHASE", phase=idx,
                    kind=type(phase).__name__, state=state)
        tr = self.trace
        if tr.enabled:
            tr.emit("net", FAULT_PHASE, phase=idx,
                    kind=type(phase).__name__, state=state,
                    start=phase.start, stop=phase.stop,
                    direction=phase.direction, **extra)

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule every phase's begin/end (and interior) events."""
        for idx, phase in enumerate(self.schedule):
            if isinstance(phase, Blackout):
                self._install_blackout(idx, phase)
            elif isinstance(phase, LinkFlap):
                self._install_flap(idx, phase)
            elif isinstance(phase, BurstyLoss):
                self._install_bursty(idx, phase)
            elif isinstance(phase, BandwidthRamp):
                self._install_ramp(idx, phase, kind="bandwidth")
            elif isinstance(phase, DelayRamp):
                self._install_ramp(idx, phase, kind="delay")
            elif isinstance(phase, Jitter):
                self._install_jitter(idx, phase)
            else:  # pragma: no cover - schedule validates construction
                raise TypeError(f"unknown phase {phase!r}")

    # ------------------------------------------------------------------
    def _install_blackout(self, idx: int, ph: Blackout) -> None:
        links = self._links(ph.direction)

        def begin() -> None:
            self._mark(idx, ph, "begin")
            for link in links:
                link.fail()

        def end() -> None:
            for link in links:
                link.recover()
            self._mark(idx, ph, "end")

        self.sim.at(ph.start, begin)
        self.sim.at(ph.stop, end)

    def _install_flap(self, idx: int, ph: LinkFlap) -> None:
        links = self._links(ph.direction)

        def down() -> None:
            # The window closed while this cycle was pending: stay up.
            if self.sim.now >= ph.stop:
                return
            self.flap_cycles += 1
            for link in links:
                link.fail()
            self.sim.schedule(ph.down_s, up)

        def up() -> None:
            for link in links:
                link.recover()
            next_down = self.sim.now + ph.up_s
            if next_down < ph.stop:
                self.sim.schedule(ph.up_s, down)

        def end() -> None:
            for link in links:
                link.recover()  # idempotent: ensures service restored
            self._mark(idx, ph, "end")

        def begin() -> None:
            self._mark(idx, ph, "begin")
            down()

        self.sim.at(ph.start, begin)
        self.sim.at(ph.stop, end)

    def _install_bursty(self, idx: int, ph: BurstyLoss) -> None:
        links = self._links(ph.direction)
        saved: dict[Link, object] = {}

        def begin() -> None:
            self._mark(idx, ph, "begin", p_gb=ph.p_gb, p_bg=ph.p_bg)
            for link in links:
                saved[link] = link.loss
                link.loss = GilbertElliottLoss(
                    p_gb=ph.p_gb, p_bg=ph.p_bg, loss_good=ph.loss_good,
                    loss_bad=ph.loss_bad, rng=self.rng)

        def end() -> None:
            dropped = 0
            for link in links:
                model = link.loss
                if isinstance(model, GilbertElliottLoss):
                    dropped += model.dropped
                link.loss = saved.pop(link)
            self._mark(idx, ph, "end", dropped=dropped)

        self.sim.at(ph.start, begin)
        self.sim.at(ph.stop, end)

    def _install_ramp(self, idx: int, ph, *, kind: str) -> None:
        links = self._links(ph.direction)
        target = ph.to_bps if kind == "bandwidth" else ph.to_s
        base: dict[Link, float] = {}

        def value_of(link: Link) -> float:
            return (link.bandwidth_bps if kind == "bandwidth"
                    else link.delay_s)

        def apply(link: Link, value: float) -> None:
            if kind == "bandwidth":
                link.set_bandwidth(value)
            else:
                link.set_delay(value)

        def step(k: int) -> None:
            frac = k / ph.steps
            for link in links:
                apply(link, base[link] + (target - base[link]) * frac)
            if k == ph.steps:
                self._mark(idx, ph, "end", target=target)

        def begin() -> None:
            self._mark(idx, ph, "begin", target=target)
            for link in links:
                base[link] = value_of(link)
            span = ph.stop - ph.start
            for k in range(1, ph.steps + 1):
                self.sim.schedule(span * k / ph.steps, step, k)

        self.sim.at(ph.start, begin)

    def _install_jitter(self, idx: int, ph: Jitter) -> None:
        links = self._links(ph.direction)

        def begin() -> None:
            self._mark(idx, ph, "begin", max_extra_s=ph.max_extra_s)
            for link in links:
                link.jitter = DelayJitter(max_extra_s=ph.max_extra_s,
                                          p=ph.p, rng=self.rng)

        def end() -> None:
            applied = 0
            for link in links:
                if link.jitter is not None:
                    applied += link.jitter.applied
                link.jitter = None
            self._mark(idx, ph, "end", applied=applied)

        self.sim.at(ph.start, begin)
        self.sim.at(ph.stop, end)
