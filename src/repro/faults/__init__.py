"""repro.faults -- declarative network-dynamics (fault-injection) subsystem.

The paper's Emulab testbed only changes conditions at experiment
boundaries; this package lets a scenario's network change *mid-flow*.  A
:class:`FaultSchedule` of timed impairment phases rides inside
:class:`~repro.experiments.common.ScenarioConfig` (hashable for the results
cache, deterministic under any ``--jobs N``) and a :class:`FaultInjector`
arms it against the topology at run start.

See :mod:`repro.faults.schedule` for the phase vocabulary and
:mod:`repro.experiments.dynamics` for the canonical flap/handover sweeps.
"""

from .injector import FaultInjector
from .schedule import (DIRECTIONS, BandwidthRamp, Blackout, BurstyLoss,
                       DelayRamp, FaultSchedule, Jitter, LinkFlap)

__all__ = ["FaultSchedule", "FaultInjector", "Blackout", "LinkFlap",
           "BurstyLoss", "BandwidthRamp", "DelayRamp", "Jitter",
           "DIRECTIONS"]
