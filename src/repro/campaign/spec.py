"""Declarative campaign specs: template x axes x seeds -> scenario cells.

A campaign is *what every future study runs through*: a scenario template
plus named parameter axes, expanded into a (possibly huge) set of
:class:`~repro.experiments.common.ScenarioConfig` cells with **stable cell
keys** -- two processes (or two hosts) expanding the same spec agree
byte-for-byte on every cell's identity, which is what lets the
work-stealing executor (:mod:`.exec`) split one campaign across N workers
with zero coordination beyond a shared directory.

Spec shape (a plain mapping; TOML/YAML/JSON files parse to it)::

    name = "table2-grid"

    [template]                  # ScenarioConfig fields, validated through
    workload = "greedy"         # the repro.api.Scenario facade -- unknown
    n_frames = 2000             # fields fail with a did-you-mean hint
    tcp_cross_bytes = 500000000

    [axes]                      # cartesian grid: every combination
    transport = ["tcp", "iq"]
    cbr_bps = [0.0, 8e6]

    [zip]                       # zip-paired axes: advance together
    rtt_s = [0.03, 0.1]
    queue_pkts = [64, 256]

    [[cases]]                   # explicit extra cells (crossed with seeds)
    transport = "rudp"
    cbr_bps = 16e6

    [seeds]
    count = 3                   # or: list = [1, 5, 9]

Cell count = ``len(grid product) * len(zip rows) * len(seeds) +
len(cases) * len(seeds)``.  String values share the CLI ``--set`` dialect
(parsed as Python literals when they parse, kept as strings otherwise),
``adaptation`` accepts a registry name from
:data:`repro.middleware.adaptation.ADAPTATIONS`, and ``faults`` accepts a
dynamics-scenario name from :data:`repro.experiments.dynamics.SCHEDULES`.
"""

from __future__ import annotations

import ast
import difflib
import hashlib
import itertools
import json
from typing import Any, Iterable, Mapping

from ..api import Scenario
from ..experiments.common import ScenarioConfig
from ..middleware.adaptation import ADAPTATIONS
from ..runner.hashing import callable_token, config_fingerprint
from ..transport.fec import FecConfig

__all__ = ["Campaign", "CampaignCell", "load_campaign", "cell_key",
           "stable_value"]

#: Recognised top-level spec keys (anything else is a typo).
_SPEC_KEYS = ("name", "template", "axes", "zip", "cases", "seeds", "metrics")


def _did_you_mean(name: str, valid: Iterable[str]) -> str:
    close = difflib.get_close_matches(name, list(valid), n=1)
    return f"{name!r}" + (f" (did you mean {close[0]!r}?)" if close else "")


def stable_value(value: Any) -> str:
    """Deterministic text rendering of a config field value.

    ``repr`` everywhere except callables, which render via
    :func:`~repro.runner.hashing.callable_token` (dotted name) so the text
    never embeds a memory address.  ``FaultSchedule`` and
    ``TelemetryConfig`` already define stable parameter-complete reprs.
    """
    if callable(value):
        token = callable_token(value)
        if token is not None:
            return token
    return repr(value)


def cell_key(cfg: ScenarioConfig) -> str:
    """Stable, filesystem-safe identity of one campaign cell.

    Hashes the full config fingerprint (every field, callables by dotted
    name) *without* the code salt: a campaign directory is tied to its
    spec, not to a source snapshot -- the global results cache still salts.
    Raises for configs that cannot be stably fingerprinted (lambda
    adaptation factories): such a cell could never be claimed consistently
    by two workers.
    """
    fp = config_fingerprint(cfg)
    if fp is None:
        raise ValueError(
            "campaign cells must be stably hashable; use a module-level "
            "adaptation factory (e.g. repro.middleware.adaptation."
            "resolution_default) instead of a lambda or local closure")
    return hashlib.sha256(fp.encode()).hexdigest()[:20]


def _coerce(field: str, value: Any) -> Any:
    """Spec-value coercion sharing the CLI ``--set`` dialect.

    Strings parse as Python literals when they parse (``"16e6"`` ->
    16000000.0, ``"None"`` -> None, ``"(2.0, 1e6, 5.0)"`` -> tuple) and
    stay strings otherwise (``"greedy"``); ``adaptation`` names resolve
    through the shared registry and ``faults`` through the dynamics
    schedule registry, so spec files never need Python callables.
    """
    if field == "adaptation" and isinstance(value, str):
        if value not in ADAPTATIONS:
            raise ValueError(
                f"unknown adaptation {_did_you_mean(value, ADAPTATIONS)}; "
                f"available: {', '.join(sorted(ADAPTATIONS))}")
        return ADAPTATIONS[value]
    if field == "faults" and isinstance(value, str):
        from ..experiments.dynamics import SCHEDULES
        if value not in SCHEDULES:
            raise ValueError(
                f"unknown fault schedule {_did_you_mean(value, SCHEDULES)}; "
                f"available: {', '.join(sorted(SCHEDULES))}")
        return SCHEDULES[value]
    if field == "fec" and isinstance(value, str):
        # "8/2", "8/2/4", "8/2/static", "none" -- never literal_eval'd
        # (the "K/R" shape would parse as division).
        return FecConfig.parse(value)
    if isinstance(value, str):
        try:
            return ast.literal_eval(value)
        except (ValueError, SyntaxError):
            return value
    return value


def _coerce_fields(fields: Mapping[str, Any]) -> dict[str, Any]:
    return {name: _coerce(name, value) for name, value in fields.items()}


class CampaignCell:
    """One expanded cell: a concrete scenario plus its campaign identity."""

    __slots__ = ("key", "label", "assignment", "seed", "config")

    def __init__(self, *, key: str, label: str, assignment: dict[str, Any],
                 seed: int, config: ScenarioConfig):
        self.key = key
        self.label = label
        self.assignment = assignment
        self.seed = seed
        self.config = config

    def __repr__(self) -> str:
        return f"CampaignCell({self.label!r}, key={self.key!r})"


def _cell_label(assignment: Mapping[str, Any], seed: int) -> str:
    parts = [f"{name}={stable_value(value)}"
             for name, value in assignment.items()]
    parts.append(f"seed={seed}")
    return ",".join(parts)


class Campaign:
    """A validated campaign spec plus its (memoised) cell expansion.

    Build one programmatically::

        camp = Campaign(Scenario(workload="greedy", n_frames=2000),
                        name="grid",
                        axes={"transport": ["tcp", "iq"],
                              "cbr_bps": [0.0, 8e6]},
                        seeds=3)

    or declaratively via :func:`load_campaign` (TOML/YAML/JSON file or a
    plain mapping).  ``len(camp)`` is the cell count; ``camp.cells()`` the
    expansion; :func:`~repro.campaign.run_campaign` executes it.
    """

    def __init__(self, template: Scenario | ScenarioConfig | None = None, *,
                 name: str = "campaign",
                 axes: Mapping[str, Iterable[Any]] | None = None,
                 zip_axes: Mapping[str, Iterable[Any]] | None = None,
                 cases: Iterable[Mapping[str, Any]] | None = None,
                 seeds: int | Iterable[int] | None = None,
                 metrics: Iterable[str] | None = None):
        if template is None:
            template = Scenario()
        elif isinstance(template, ScenarioConfig):
            template = Scenario(**dict(vars(template)))
        elif not isinstance(template, Scenario):
            raise TypeError(f"template must be a Scenario (or "
                            f"ScenarioConfig), got {type(template).__name__}")
        self.name = str(name)
        self.template = template
        self.axes = {str(k): list(v) for k, v in (axes or {}).items()}
        self.zip_axes = {str(k): list(v)
                         for k, v in (zip_axes or {}).items()}
        self.cases = [dict(c) for c in (cases or [])]
        self.metrics = tuple(metrics) if metrics is not None else None
        self._validate_axes()
        self.seeds = self._resolve_seeds(seeds)
        self._cells: tuple[CampaignCell, ...] | None = None

    # -- validation --------------------------------------------------------
    def _resolve_seeds(self, seeds) -> tuple[int, ...]:
        base = int(self.template.seed)
        if seeds is None:
            return (base,)
        if isinstance(seeds, bool):
            raise ValueError(f"seeds must be a count or a list, got {seeds!r}")
        if isinstance(seeds, int):
            if seeds < 1:
                raise ValueError(f"seeds count must be >= 1, got {seeds}")
            return tuple(base + i for i in range(seeds))
        out = tuple(int(s) for s in seeds)
        if not out:
            raise ValueError("seeds list cannot be empty")
        if len(set(out)) != len(out):
            raise ValueError(f"duplicate seeds: {sorted(out)}")
        return out

    def _validate_axes(self) -> None:
        overlap = sorted(set(self.axes) & set(self.zip_axes))
        if overlap:
            raise ValueError(f"field(s) {', '.join(overlap)} appear in both "
                             f"'axes' and 'zip'; pick one")
        for group, axes in (("axes", self.axes), ("zip", self.zip_axes)):
            for field, values in axes.items():
                if not values:
                    raise ValueError(f"{group} field {field!r} has no values")
                if field == "seed":
                    raise ValueError("'seed' is not an axis; use the "
                                     "'seeds' section for replicates")
                # Unknown-field rejection routes through the Scenario facade
                # so there is exactly one error dialect (did-you-mean).
                self.template.replace(**{field: values[0]})
        if self.zip_axes:
            lengths = {field: len(v) for field, v in self.zip_axes.items()}
            if len(set(lengths.values())) > 1:
                detail = ", ".join(f"{k}: {n}" for k, n in lengths.items())
                raise ValueError(
                    f"zip-paired axes must have equal lengths ({detail})")
        for i, case in enumerate(self.cases):
            if not isinstance(case, Mapping) or not case:
                raise ValueError(f"cases[{i}] must be a non-empty mapping "
                                 f"of ScenarioConfig overrides")
            if "seed" in case:
                raise ValueError(f"cases[{i}] sets 'seed'; seeds come from "
                                 f"the 'seeds' section")
            self.template.replace(**case)

    # -- construction from a mapping / file --------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "Campaign":
        """Build (and fully validate) a campaign from a plain mapping --
        the parsed form of a TOML/YAML/JSON spec file."""
        if not isinstance(mapping, Mapping):
            raise TypeError(f"campaign spec must be a mapping, "
                            f"got {type(mapping).__name__}")
        unknown = sorted(set(mapping) - set(_SPEC_KEYS))
        if unknown:
            hints = ", ".join(_did_you_mean(k, _SPEC_KEYS) for k in unknown)
            raise ValueError(f"unknown campaign spec key(s): {hints}; "
                             f"valid keys: {', '.join(_SPEC_KEYS)}")
        template_fields = _coerce_fields(mapping.get("template") or {})
        template = Scenario(**template_fields)
        axes = {field: [_coerce(field, v) for v in values]
                for field, values in (mapping.get("axes") or {}).items()}
        zip_axes = {field: [_coerce(field, v) for v in values]
                    for field, values in (mapping.get("zip") or {}).items()}
        cases = [_coerce_fields(case)
                 for case in (mapping.get("cases") or [])]
        seeds = mapping.get("seeds")
        if isinstance(seeds, Mapping):
            extra = sorted(set(seeds) - {"count", "list"})
            if extra:
                # Classic TOML slip: top-level keys written after the
                # [seeds] header land inside the seeds table.
                raise ValueError(
                    f"unexpected key(s) in the 'seeds' table: "
                    f"{', '.join(map(repr, extra))} (it takes exactly one "
                    f"of 'count' or 'list'; in TOML, top-level keys like "
                    f"'metrics' must appear before the first [table] "
                    f"header)")
            if "count" in seeds and "list" in seeds:
                raise ValueError("the 'seeds' table takes exactly one of "
                                 "'count' or 'list'")
            seeds = seeds.get("count", seeds.get("list"))
        camp = cls(template, name=mapping.get("name", "campaign"),
                   axes=axes, zip_axes=zip_axes, cases=cases, seeds=seeds,
                   metrics=mapping.get("metrics"))
        camp._raw = _raw_mapping(mapping)
        return camp

    @classmethod
    def from_scenarios(cls, rows, *, name: str = "batch") -> "Campaign":
        """Wrap an already-expanded collection of scenarios as a campaign.

        ``rows`` is a mapping of ``{label: Scenario|ScenarioConfig}`` (or a
        plain iterable, labelled by index) -- the shape every table bench
        already builds.  Labels become cell labels verbatim, so a bench
        routed through a campaign directory keys its results exactly as
        before.  No template/axes structure exists, so the manifest stores
        no spec and per-axis aggregation is empty.
        """
        if not isinstance(rows, Mapping):
            rows = {str(i): sc for i, sc in enumerate(rows)}
        cells: list[CampaignCell] = []
        seen: dict[str, str] = {}
        for label, sc in rows.items():
            if isinstance(sc, Scenario):
                cfg = sc.config
            elif isinstance(sc, ScenarioConfig):
                cfg = sc
            else:
                raise TypeError(
                    f"rows[{label!r}] must be a Scenario or ScenarioConfig, "
                    f"got {type(sc).__name__}")
            key = cell_key(cfg)
            label = str(label)
            if key in seen:
                raise ValueError(f"duplicate cell: rows {label!r} and "
                                 f"{seen[key]!r} hold the same configuration")
            seen[key] = label
            cells.append(CampaignCell(key=key, label=label, assignment={},
                                      seed=cfg.seed, config=cfg))
        if not cells:
            raise ValueError("cannot build a campaign from zero scenarios")
        camp = cls(name=name)
        camp._cells = tuple(cells)
        camp._cells_only = True
        return camp

    _raw: dict | None = None
    _cells_only: bool = False

    def to_mapping(self) -> dict | None:
        """JSON-serialisable spec mapping for the campaign manifest, or
        None when the campaign was built programmatically from values that
        do not serialise (then only Python-side resume works)."""
        if self._raw is not None:
            return self._raw
        if self._cells_only:
            return None
        template: dict[str, Any] = {}
        defaults = vars(ScenarioConfig())
        reverse_adapt = {fn: name for name, fn in ADAPTATIONS.items()
                         if fn is not None}
        for field, value in vars(self.template.config).items():
            if defaults.get(field) == value:
                continue
            if field == "adaptation" and value in reverse_adapt:
                value = reverse_adapt[value]
            template[field] = value
        mapping = {"name": self.name, "template": template,
                   "axes": self.axes, "zip": self.zip_axes,
                   "cases": self.cases,
                   "seeds": {"list": list(self.seeds)}}
        if self.metrics is not None:
            mapping["metrics"] = list(self.metrics)
        try:
            json.dumps(mapping)
        except (TypeError, ValueError):
            return None
        return mapping

    def replace_template(self, **overrides: Any) -> "Campaign":
        """Derive a campaign with template overrides (the CLI ``--set``
        path); axis values still win over template values per cell."""
        camp = Campaign(self.template.replace(**_coerce_fields(overrides)),
                        name=self.name, axes=self.axes,
                        zip_axes=self.zip_axes, cases=self.cases,
                        seeds=self.seeds, metrics=self.metrics)
        if self._raw is not None:
            raw = dict(self._raw)
            raw["template"] = dict(raw.get("template") or {})
            raw["template"].update(overrides)
            try:
                json.dumps(raw)
            except (TypeError, ValueError):
                raw = None
            camp._raw = raw
        return camp

    # -- expansion ---------------------------------------------------------
    def _assignments(self):
        axis_names = list(self.axes)
        grid = itertools.product(*(self.axes[a] for a in axis_names)) \
            if axis_names else [()]
        zip_rows: list[dict[str, Any]] = [{}]
        if self.zip_axes:
            names = list(self.zip_axes)
            zip_rows = [dict(zip(names, row))
                        for row in zip(*(self.zip_axes[n] for n in names))]
        for combo in grid:
            for zrow in zip_rows:
                assignment = dict(zip(axis_names, combo))
                assignment.update(zrow)
                yield assignment
        for case in self.cases:
            yield dict(case)

    def cells(self) -> tuple[CampaignCell, ...]:
        """Expand (once) to the full cell tuple, in spec order: grid
        (leftmost axis slowest) x zip row x seed, then explicit cases x
        seed.  Every cell validates through the Scenario facade; duplicate
        cells (identical resulting configs) are an error."""
        if self._cells is not None:
            return self._cells
        cells: list[CampaignCell] = []
        seen: dict[str, str] = {}
        for assignment in self._assignments():
            for seed in self.seeds:
                scenario = self.template.replace(**assignment, seed=seed)
                cfg = scenario.config
                key = cell_key(cfg)
                label = _cell_label(assignment, seed)
                if key in seen:
                    raise ValueError(
                        f"duplicate campaign cell: {label!r} and "
                        f"{seen[key]!r} expand to the same configuration")
                seen[key] = label
                cells.append(CampaignCell(key=key, label=label,
                                          assignment=assignment, seed=seed,
                                          config=cfg))
        if not cells:
            raise ValueError("campaign expands to zero cells")
        self._cells = tuple(cells)
        return self._cells

    def __len__(self) -> int:
        return len(self.cells())

    def describe(self) -> str:
        """One-line shape summary for logs and the status command."""
        parts = []
        if self.axes:
            parts.append(" x ".join(f"{a}[{len(v)}]"
                                    for a, v in self.axes.items()))
        if self.zip_axes:
            names = list(self.zip_axes)
            parts.append(f"zip({','.join(names)})"
                         f"[{len(self.zip_axes[names[0]])}]")
        if self.cases:
            parts.append(f"cases[{len(self.cases)}]")
        parts.append(f"seeds[{len(self.seeds)}]")
        return (f"{self.name}: {' x '.join(parts) if parts else 'template'}"
                f" = {len(self)} cells")

    def __repr__(self) -> str:
        return f"<Campaign {self.describe()}>"


def _raw_mapping(mapping: Mapping[str, Any]) -> dict | None:
    """Deep-copy a spec mapping for the manifest, or None when the caller
    handed us values JSON cannot carry."""
    try:
        return json.loads(json.dumps(dict(mapping)))
    except (TypeError, ValueError):
        return None


def load_campaign(source) -> Campaign:
    """Load a campaign from a mapping or a spec file.

    ``source`` is a plain mapping (returned as a validated
    :class:`Campaign`), or a path to a ``.toml``, ``.yaml``/``.yml`` or
    ``.json`` file.  YAML requires PyYAML; the other formats use the
    standard library.
    """
    if isinstance(source, Campaign):
        return source
    if isinstance(source, Mapping):
        return Campaign.from_mapping(source)
    path = str(source)
    lowered = path.lower()
    if lowered.endswith(".toml"):
        import tomllib
        with open(path, "rb") as fh:
            mapping = tomllib.load(fh)
    elif lowered.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise ValueError(
                f"cannot load {path}: YAML specs need PyYAML (use TOML or "
                f"JSON instead)") from exc
        with open(path) as fh:
            mapping = yaml.safe_load(fh)
    elif lowered.endswith(".json"):
        with open(path) as fh:
            mapping = json.load(fh)
    else:
        raise ValueError(f"unrecognised campaign spec format {path!r} "
                         f"(expected .toml, .yaml/.yml or .json)")
    if not isinstance(mapping, Mapping):
        raise ValueError(f"campaign spec {path!r} must parse to a mapping, "
                         f"got {type(mapping).__name__}")
    return Campaign.from_mapping(mapping)
