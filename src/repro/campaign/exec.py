"""Campaign execution: in-memory fan-out or work-stealing over a directory.

Two modes, one entry point (:func:`run_campaign`):

* **In-memory** (``dir=None``): the whole expansion goes through
  :func:`~repro.runner.run_batch` with failure capture -- fine for small
  grids inside one process.
* **Work-stealing** (``dir=PATH``): the campaign directory
  (:class:`~repro.campaign.store.CampaignStore`) is the only coordination
  channel.  Each worker loops over the (identically-ordered) cell list,
  skips finished cells, claims one with ``O_CREAT|O_EXCL``, executes it
  under the resilient runner (capture / timeout / retries), stores the
  result atomically and releases the claim.  ``workers=N`` forks N child
  processes over the same directory; running the same command on other
  hosts sharing the filesystem adds workers the same way.  A killed worker
  leaves an expiring lease; once it expires any worker (a survivor still
  passing over the cells, or a later ``resume``) steals the cell and the
  campaign finishes anyway.  Interrupt with SIGINT and ``resume`` later:
  finished cells are
  never re-executed, so the completed report is byte-identical to an
  uninterrupted run.

Determinism: every cell derives all randomness from its own seed, so the
result set is bit-identical for any worker count, any interleaving, and
any interrupt/resume history.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import signal
import time

from ..experiments.common import ScenarioConfig, ScenarioResult
from ..obs.ledger import record_run
from ..obs.live import HeartbeatWriter, heartbeat_enabled
from ..runner.cache import ResultsCache
from ..runner.failures import BatchExecutionError, FailedResult
from ..runner.pool import run_batch, run_one
from ..runner.progress import SweepProgress
from .aggregate import CampaignReport, aggregate
from .spec import Campaign, CampaignCell
from .store import DEFAULT_LEASE_S, CampaignStore

__all__ = ["run_campaign", "run_rows", "CampaignRun", "worker_loop"]


class CampaignRun:
    """Outcome of one :func:`run_campaign` call.

    ``results_by_key`` maps cell key to :class:`ScenarioResult` /
    :class:`FailedResult` (missing keys = interrupted before completion);
    ``results`` re-keys by cell label in expansion order; ``report()``
    aggregates (see :mod:`.aggregate`).
    """

    def __init__(self, campaign: Campaign,
                 results_by_key: dict[str, ScenarioResult | FailedResult]):
        self.campaign = campaign
        self.cells = campaign.cells()
        self.results_by_key = results_by_key

    @property
    def results(self) -> dict[str, ScenarioResult | FailedResult]:
        return {c.label: self.results_by_key[c.key]
                for c in self.cells if c.key in self.results_by_key}

    @property
    def incomplete(self) -> tuple[CampaignCell, ...]:
        """Cells without a stored result (only after an interrupt)."""
        return tuple(c for c in self.cells
                     if c.key not in self.results_by_key)

    @property
    def complete(self) -> bool:
        return not self.incomplete

    def report(self, *, metrics=None) -> CampaignReport:
        return aggregate(self.campaign, self.results_by_key,
                         metrics=metrics)


def _cache_token(cache) -> "str | bool | None":
    """Reduce a cache argument to something picklable for child workers."""
    if cache is False or cache is None:
        return cache
    if isinstance(cache, ResultsCache):
        return os.fspath(cache.root)
    return None if cache is True else cache


def _resolve_cache_token(token) -> "ResultsCache | bool | None":
    if isinstance(token, str):
        return ResultsCache(token)
    return token


def _flight_note(res) -> "str | None":
    """The last flight-recorder event of a result, as ``layer:event`` --
    the one-line forensic breadcrumb a heartbeat carries."""
    dump = getattr(res, "flight", None)
    if isinstance(dump, dict):
        events = dump.get("events") or []
        tail = events[-1] if events else None
        if isinstance(tail, dict) and tail.get("event"):
            layer = tail.get("layer")
            return (f"{layer}:{tail['event']}" if layer
                    else str(tail["event"]))
    return None


def worker_loop(store: CampaignStore,
                cells: "list[tuple[str, str, ScenarioConfig]]", *,
                cache=None, timeout: float | None = None,
                retries: int = 0, on_cell=None,
                heartbeat: bool = True) -> int:
    """One worker's pass over the campaign: claim, run, store, release.

    ``cells`` is the shared ordered list of ``(key, label, config)``.
    Returns the number of cells this worker executed.  Raises
    ``KeyboardInterrupt`` through (after releasing the in-flight claim) so
    the caller can report resume instructions.

    With ``heartbeat=True`` (and ``REPRO_HEARTBEAT`` not ``0``) the worker
    maintains an atomic liveness file under the store's ``heartbeats/``
    directory -- claimed cell before each run, counters + the result's
    last flight-recorder note after (see :mod:`repro.obs.live`).
    """
    executed = 0
    journal = store.journal()
    hb = (HeartbeatWriter(store.heartbeat_dir, store.worker)
          if heartbeat and heartbeat_enabled() else None)
    try:
        # Loop until every cell is either done or leased to another live
        # worker.  An expired lease is stolen inside try_claim, so "live
        # lease elsewhere" is the only blocked state -- and that holder
        # (or a later resume, if it died) finishes the cell; waiting here
        # could outlive the holder's whole campaign, so we exit instead.
        while True:
            progressed = False
            retry = False    # claim vanished mid-pass: claimable next pass
            blocked = False  # live lease held by another worker
            done = store.done_keys()
            for key, label, cfg in cells:
                if key in done:
                    continue
                if not store.try_claim(key):
                    if store.load_cell(key) is not None:
                        continue
                    claim = store.read_claim(key)
                    expires = (claim or {}).get("expires_at")
                    if (isinstance(expires, (int, float))
                            and time.time() < expires):
                        blocked = True
                    else:
                        retry = True
                    continue
                if store.load_cell(key) is not None:
                    store.release_claim(key)
                    continue
                try:
                    if hb is not None:
                        hb.claim(label, key)
                    res = run_one(cfg, cache=cache, on_error="capture",
                                  timeout=timeout, retries=retries)
                    store.store_cell(key, res)
                    try:
                        journal.append(key, res)
                    except (pickle.PicklingError, TypeError, AttributeError,
                            OSError):
                        pass
                    executed += 1
                    progressed = True
                    if hb is not None:
                        hb.complete(failed=isinstance(res, FailedResult),
                                    note=_flight_note(res))
                    if on_cell is not None:
                        on_cell(key, label, res)
                finally:
                    store.release_claim(key)
            if hb is not None:
                hb.beat()  # stay live while blocked on others' leases
            if progressed or retry:
                continue
            break  # done, or the rest is in other workers' hands
    finally:
        if hb is not None:
            hb.close()
        store.close()
    return executed


def _raise_interrupt(signum, frame):
    raise KeyboardInterrupt


def _worker_main(root: str, worker: str, lease_s: float,
                 cells: "list[tuple[str, str, ScenarioConfig]]",
                 cache_token, timeout: float | None, retries: int) -> None:
    """Child-process entry point for ``workers=N`` fan-out."""
    os.environ["REPRO_PROGRESS"] = "0"  # parent owns the progress line
    # The parent's SIGINT handler terminate()s us with SIGTERM; default
    # SIGTERM disposition would kill the process without unwinding, leaking
    # the in-flight claim as a live lease that blocks the next resume.
    # Translating it into KeyboardInterrupt runs worker_loop's finally
    # (claim released, journal flushed) before exiting.
    signal.signal(signal.SIGTERM, _raise_interrupt)
    store = CampaignStore(root, worker=worker, lease_s=lease_s)
    try:
        worker_loop(store, cells, cache=_resolve_cache_token(cache_token),
                    timeout=timeout, retries=retries)
    except KeyboardInterrupt:
        pass


def _load_results(store: CampaignStore, cells) -> dict:
    results: dict[str, ScenarioResult | FailedResult] = {}
    for cell in cells:
        res = store.load_cell(cell.key)
        if res is not None:
            results[cell.key] = res
    return results


def _collect_and_heal(store: CampaignStore, campaign: Campaign, cells, *,
                      cache, timeout: float | None, retries: int
                      ) -> CampaignRun:
    """Load the final result set, re-running any torn cell files.

    Workers skip cells on file *existence* (``done_keys`` -- cheap enough
    to poll every pass), so a cell whose result file exists but does not
    unpickle (torn write, disk hiccup) would otherwise stay pending
    forever.  Rare by construction (results are written atomically), so
    healing is a separate inline pass rather than a per-pass unpickle of
    every finished cell.
    """
    results = _load_results(store, cells)
    torn = [c for c in cells if c.key not in results
            and os.path.exists(store.cell_path(c.key))]
    if torn:
        for c in torn:
            try:
                os.unlink(store.cell_path(c.key))
            except OSError:
                pass
        worker_loop(store, [(c.key, c.label, c.config) for c in torn],
                    cache=cache, timeout=timeout, retries=retries,
                    heartbeat=False)
        results = _load_results(store, cells)
    return CampaignRun(campaign, results)


def run_campaign(campaign, *, dir: "str | os.PathLike | None" = None,
                 workers: int = 1, cache=None,
                 timeout: float | None = None, retries: int = 0,
                 lease_s: float = DEFAULT_LEASE_S,
                 progress: bool | None = None) -> CampaignRun:
    """Execute a campaign; returns a :class:`CampaignRun`.

    ``campaign`` is a :class:`~repro.campaign.Campaign`, a spec mapping or
    a spec-file path (anything :func:`~repro.campaign.load_campaign`
    takes).  With ``dir=None`` the expansion runs in-memory through
    ``run_batch`` (``workers`` = its ``jobs``).  With a directory, state
    lives on disk: ``workers`` child processes split the cells via the
    claim/lease protocol, the run survives SIGINT (re-invoke with the same
    directory to resume) and other hosts pointing at the same directory
    join the same campaign.  Failures are always captured as
    :class:`FailedResult` cells -- inspect ``run.report()``.
    """
    from .spec import load_campaign
    campaign = load_campaign(campaign)
    cells = campaign.cells()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    t0 = time.monotonic()

    if dir is None:
        batch = run_batch({c.key: c.config for c in cells}, jobs=workers,
                          cache=cache, on_error="capture", timeout=timeout,
                          retries=retries)
        return _ledgered(CampaignRun(campaign, dict(batch)),
                         time.monotonic() - t0)

    store = CampaignStore(dir, lease_s=lease_s)
    store.init(campaign)
    triples = [(c.key, c.label, c.config) for c in cells]
    already = len(_load_results(store, cells))

    if workers == 1:
        bar = SweepProgress(len(cells), cached=already, enabled=progress)
        try:
            worker_loop(store, triples, cache=cache, timeout=timeout,
                        retries=retries,
                        on_cell=lambda k, l, r: bar.update(
                            failed=isinstance(r, FailedResult)))
        finally:
            bar.finish()
        return _ledgered(
            _collect_and_heal(store, campaign, cells, cache=cache,
                              timeout=timeout, retries=retries),
            time.monotonic() - t0)

    # Multi-process fan-out: children coordinate purely through the store;
    # the parent only paints progress and handles SIGINT.
    cache_token = _cache_token(cache)
    ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
    procs = []
    for w in range(workers):
        p = ctx.Process(
            target=_worker_main,
            args=(os.fspath(dir), f"{store.worker}-w{w}", lease_s, triples,
                  cache_token, timeout, retries),
            daemon=False)
        p.start()
        procs.append(p)

    bar = SweepProgress(len(cells), cached=already, enabled=progress)
    seen = already
    try:
        while any(p.is_alive() for p in procs):
            done = len(store.done_keys() & {c.key for c in cells})
            while seen < done:
                bar.update()
                seen += 1
            # Failures live in the workers; their heartbeats are the only
            # live channel back, so the parent's line folds them in.
            bar.failed = _heartbeat_failed(store)
            time.sleep(0.05)
        for p in procs:
            p.join()
    except KeyboardInterrupt:
        for p in procs:
            p.terminate()
        for p in procs:
            p.join()
        raise
    finally:
        bar.finish()
    return _ledgered(
        _collect_and_heal(store, campaign, cells, cache=cache,
                          timeout=timeout, retries=retries),
        time.monotonic() - t0)


def _heartbeat_failed(store: CampaignStore) -> int:
    from ..obs.live import read_heartbeats
    return sum(hb.get("failed", 0) for hb in read_heartbeats(
        store.heartbeat_dir) if isinstance(hb.get("failed"), int))


def _ledgered(run: CampaignRun, duration_s: float) -> CampaignRun:
    """Append the finished campaign's summary row to the run ledger
    (no-op unless ``REPRO_LEDGER_DIR`` is armed)."""
    import hashlib
    done = len(run.results_by_key)
    failed = sum(1 for r in run.results_by_key.values()
                 if isinstance(r, FailedResult))
    fingerprint = hashlib.sha256(
        "\n".join(c.key for c in run.cells).encode()).hexdigest()[:20]
    record_run("campaign", run.campaign.name, {
        "cells_total": len(run.cells), "cells_done": done,
        "cells_failed": failed,
        "cells_per_s": round(done / duration_s, 4) if duration_s > 0 else 0.0,
    }, fingerprint=fingerprint,
        timings={"duration_s": round(duration_s, 4)})
    return run


def run_rows(rows, *, name: str, dir: "str | os.PathLike | None" = None,
             jobs: int = 1, cache=None, trace: str | None = None):
    """Run an experiment's keyed scenario rows through the campaign layer.

    This is the bridge the table/dynamics benches call: with ``dir=None``
    it is exactly the historical ``run_batch(rows, ...)`` (legacy error
    propagation, tracing, bit-identical output); with a campaign directory
    the same rows inherit claim/resume semantics -- interrupt the bench,
    re-run the same command, and only missing rows execute.

    Returns results keyed like ``rows``.  An incomplete campaign-backed
    run (interrupt before every row finished) raises ``KeyboardInterrupt``
    after persisting what completed; a failed row raises
    :class:`BatchExecutionError` exactly like ``on_error="raise"``.
    """
    if dir is None:
        return run_batch(rows, jobs=jobs, cache=cache, trace=trace)
    if trace is not None:
        raise ValueError(
            "trace capture is per-process and cannot compose with a shared "
            "campaign directory; drop --campaign-dir or --trace")
    campaign = Campaign.from_scenarios(rows, name=name)
    cells = campaign.cells()
    run = run_campaign(campaign, dir=dir, workers=jobs, cache=cache)
    keys = list(rows.keys())
    missing = [c.label for c in run.incomplete]
    if missing:
        raise KeyboardInterrupt
    results = {}
    for orig_key, cell in zip(keys, cells):
        res = run.results_by_key[cell.key]
        if isinstance(res, FailedResult):
            raise BatchExecutionError(res)
        results[orig_key] = res
    return results
