"""Campaign-level aggregation: per-cell, per-axis and failure rollups.

A finished (or interrupted) campaign is thousands of
:class:`ScenarioResult`/:class:`FailedResult` rows; :func:`aggregate`
reduces them to one :class:`CampaignReport`:

* **cells** -- per-cell metric rows (label, seed, state, chosen metrics);
* **axes** -- for every axis field, summary stats (n/mean/min/max/std) of
  each metric grouped by that field's value, pooled over all other axes
  and seeds -- the "what did varying X do" view;
* **failures** -- count by classified kind
  (:func:`repro.obs.report.failures_by_kind`).

Determinism contract: ``as_dict()`` carries *no wall-clock timestamps or
host identity* -- it is a pure function of the campaign spec and the
result set, so an interrupted-then-resumed campaign reports byte-identical
JSON to an uninterrupted one (CI asserts exactly this).  Prometheus output
reuses :mod:`repro.obs.metrics`' pinned number formatting for the same
reason.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Mapping

from ..analysis.tables import render_table
from ..experiments.common import ScenarioResult
from ..obs.metrics import _prom_name, _prom_value
from ..obs.report import failures_by_kind
from ..runner.failures import FailedResult
from .spec import Campaign, stable_value

__all__ = ["CampaignReport", "aggregate", "DEFAULT_METRICS"]

#: Metrics summarised when the spec names none.
DEFAULT_METRICS = ("duration_s", "throughput_kBps", "msg_interarrival_s",
                   "msg_jitter_s")


def _stats(values: "list[float]") -> dict[str, float]:
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return {"n": n, "mean": mean, "min": min(values), "max": max(values),
            "std": math.sqrt(var)}


class CampaignReport:
    """Aggregated view of one campaign's results (see module docstring)."""

    def __init__(self, *, name: str, total: int, done: int, failed: int,
                 failures: dict[str, int], metrics: tuple[str, ...],
                 cells: "list[dict]", axes: "dict[str, dict]"):
        self.name = name
        self.total = total
        self.done = done
        self.failed = failed
        self.failures = failures
        self.metrics = metrics
        self.cells = cells
        self.axes = axes

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    # -- serialisation -----------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-able report payload; deterministic by construction (no
        timestamps, no hostnames, stable ordering everywhere)."""
        return {
            "campaign": self.name,
            "cells": {"total": self.total, "done": self.done,
                      "ok": self.done - self.failed,
                      "failed": self.failed,
                      "pending": self.total - self.done},
            "failures": {"total": self.failed,
                         "by_kind": dict(self.failures)},
            "metrics": list(self.metrics),
            "per_cell": self.cells,
            "per_axis": self.axes,
        }

    def to_json(self, **kw) -> str:
        kw.setdefault("indent", 1)
        kw.setdefault("sort_keys", True)
        return json.dumps(self.as_dict(), **kw)

    # -- text --------------------------------------------------------------
    def render(self) -> str:
        """Monospace report for the terminal."""
        lines = [f"campaign {self.name}: {self.done}/{self.total} cells "
                 f"done, {self.failed} failed, "
                 f"{self.total - self.done} pending"]
        if self.failures:
            detail = ", ".join(f"{kind}: {n}"
                               for kind, n in self.failures.items())
            lines.append(f"failures by kind: {detail}")
        for field, groups in self.axes.items():
            rows = []
            for value, metrics in groups.items():
                for metric, st in metrics.items():
                    rows.append([value, metric, st["n"], st["mean"],
                                 st["min"], st["max"], st["std"]])
            if rows:
                lines.append("")
                lines.append(render_table(
                    [field, "metric", "n", "mean", "min", "max", "std"],
                    rows, title=f"axis: {field}"))
        return "\n".join(lines)

    def render_prometheus(self, prefix: str = "repro_campaign_") -> str:
        """Prometheus text exposition of the campaign state -- scrapeable
        from a cron wrapper, byte-stable for goldens."""
        esc = lambda s: str(s).replace("\\", r"\\").replace('"', r'\"')
        lines: list[str] = []
        cname = _prom_name(prefix, "cells")
        lines.append(f"# TYPE {cname} gauge")
        for state, count in (("total", self.total), ("done", self.done),
                             ("ok", self.done - self.failed),
                             ("failed", self.failed),
                             ("pending", self.total - self.done)):
            lines.append(f'{cname}{{state="{state}"}} {_prom_value(count)}')
        if self.failures:
            fname = _prom_name(prefix, "failures")
            lines.append(f"# TYPE {fname} gauge")
            for kind, n in self.failures.items():
                lines.append(f'{fname}{{kind="{esc(kind)}"}} '
                             f'{_prom_value(n)}')
        mname = _prom_name(prefix, "metric")
        header_done = False
        for field, groups in self.axes.items():
            for value, metrics in groups.items():
                for metric, st in metrics.items():
                    for stat in ("n", "mean", "min", "max", "std"):
                        if not header_done:
                            lines.append(f"# TYPE {mname} gauge")
                            header_done = True
                        lines.append(
                            f'{mname}{{axis="{esc(field)}",'
                            f'value="{esc(value)}",metric="{esc(metric)}",'
                            f'stat="{stat}"}} {_prom_value(st[stat])}')
        return "\n".join(lines) + "\n"


def aggregate(campaign: Campaign,
              results_by_key: Mapping[str, "ScenarioResult | FailedResult"],
              *, metrics: Iterable[str] | None = None) -> CampaignReport:
    """Reduce a campaign's result set to a :class:`CampaignReport`.

    ``metrics`` defaults to the spec's ``metrics`` list, else
    :data:`DEFAULT_METRICS`; metrics absent from a result's summary are
    skipped silently (population results, say, have different keys).
    """
    if metrics is None:
        metrics = campaign.metrics or DEFAULT_METRICS
    metrics = tuple(metrics)
    cells = campaign.cells()

    cell_rows: list[dict] = []
    failed_kinds: list[str] = []
    done = 0
    # axis field -> rendered value -> metric -> [values]
    axis_pools: dict[str, dict[str, dict[str, list[float]]]] = {}
    axis_fields: list[str] = []
    for cell in cells:
        for field in cell.assignment:
            if field not in axis_fields:
                axis_fields.append(field)

    for cell in cells:
        res = results_by_key.get(cell.key)
        row: dict = {"cell": cell.label, "key": cell.key, "seed": cell.seed}
        if res is None:
            row["state"] = "pending"
        elif isinstance(res, FailedResult):
            done += 1
            failed_kinds.append(res.kind)
            row["state"] = "failed"
            row["kind"] = res.kind
            row["detail"] = res.describe()
        else:
            done += 1
            row["state"] = "ok"
            summary = res.summary
            row["metrics"] = {m: summary[m] for m in metrics
                              if m in summary}
            for field in axis_fields:
                if field not in cell.assignment:
                    continue
                value = stable_value(cell.assignment[field])
                pool = axis_pools.setdefault(field, {}).setdefault(value, {})
                for m, v in row["metrics"].items():
                    pool.setdefault(m, []).append(float(v))
        cell_rows.append(row)

    axes: dict[str, dict] = {}
    for field in axis_fields:
        groups = axis_pools.get(field, {})
        axes[field] = {value: {m: _stats(vs)
                               for m, vs in groups[value].items()}
                       for value in sorted(groups)}

    return CampaignReport(
        name=campaign.name, total=len(cells), done=done,
        failed=len(failed_kinds), failures=failures_by_kind(failed_kinds),
        metrics=metrics, cells=cell_rows, axes=axes)
