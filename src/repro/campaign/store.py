"""Shared campaign directory: manifest, cell results, claims, journals.

The store is the only coordination channel between campaign workers --
N processes (or N hosts on a shared filesystem) operate on one directory
with no sockets, no broker and no leader::

    <dir>/manifest.json        campaign identity: spec + ordered cell list
    <dir>/cells/<key>.pkl      one finished result per cell (atomic write)
    <dir>/claims/<key>.json    lease held by the worker running the cell
    <dir>/journal/<worker>.pkl per-worker completion journal (SweepJournal)

Claim protocol (work stealing)
------------------------------
A worker claims a cell by hard-linking a fully-written lease into
``claims/<key>.json`` -- the filesystem arbitrates, exactly one creator
wins, and the claim file is born complete (never observable half-written).
The claim carries a lease deadline; a worker that dies mid-cell simply
stops renewing, and once the lease expires any other worker *steals* the
cell by atomically replacing the claim file (``os.replace`` of a fresh
lease).  Two live workers can therefore never run the same cell; a steal
race against a not-quite-dead worker is possible in theory but harmless in
practice because every cell is deterministic and results are written
atomically -- the two writers produce identical bytes.

Results are idempotent: ``cells/<key>.pkl`` is written via tmp+rename, a
finished cell is never re-executed (workers check ``done`` before
claiming), and corrupt/torn files read as "not done" and re-run.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import socket
import tempfile
import time

from ..experiments.common import ScenarioResult
from ..runner.checkpoint import SweepJournal
from ..runner.failures import FailedResult
from .spec import Campaign

__all__ = ["CampaignStore", "DEFAULT_LEASE_S"]

#: Default claim lease in seconds; generous because a lease only has to
#: outlive one *cell*, and expiry merely delays stealing, never loses work.
DEFAULT_LEASE_S = 300.0

_RESULT_TYPES = (ScenarioResult, FailedResult)


def _atomic_write_bytes(path: pathlib.Path, payload: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CampaignStore:
    """Filesystem-backed state of one campaign run (see module docstring).

    ``worker`` names this process in claims and its journal file; it only
    needs to be unique among *concurrently live* workers.
    """

    def __init__(self, root: str | os.PathLike, *, worker: str | None = None,
                 lease_s: float = DEFAULT_LEASE_S):
        self.root = pathlib.Path(root)
        self.worker = worker or f"{socket.gethostname()}-{os.getpid()}"
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s!r}")
        self.lease_s = float(lease_s)
        self.cells_dir = self.root / "cells"
        self.claims_dir = self.root / "claims"
        self.journal_dir = self.root / "journal"
        self.heartbeat_dir = self.root / "heartbeats"
        self.manifest_path = self.root / "manifest.json"
        self._journal: SweepJournal | None = None

    # -- manifest ----------------------------------------------------------
    def init(self, campaign: Campaign) -> None:
        """Create (or verify) the campaign manifest.

        First caller writes it atomically; later callers -- resumes, extra
        workers -- must present a campaign expanding to the *identical*
        ordered cell list, otherwise the directory belongs to a different
        campaign and mixing them would corrupt both.
        """
        cells = [{"key": c.key, "label": c.label} for c in campaign.cells()]
        existing = self.read_manifest()
        if existing is not None:
            if existing.get("cells") != cells:
                raise ValueError(
                    f"campaign directory {self.root} already holds campaign "
                    f"{existing.get('name')!r} with a different cell set; "
                    f"use a fresh directory")
            return
        manifest = {
            "version": 1,
            "name": campaign.name,
            "spec": campaign.to_mapping(),
            "cells": cells,
        }
        _atomic_write_bytes(self.manifest_path,
                            json.dumps(manifest, indent=1).encode())
        for d in (self.cells_dir, self.claims_dir, self.journal_dir):
            d.mkdir(parents=True, exist_ok=True)

    def read_manifest(self) -> dict | None:
        try:
            with open(self.manifest_path) as fh:
                return json.load(fh)
        except OSError:
            return None
        except ValueError as exc:
            raise ValueError(f"corrupt campaign manifest "
                             f"{self.manifest_path}: {exc}") from exc

    # -- results -----------------------------------------------------------
    def cell_path(self, key: str) -> pathlib.Path:
        return self.cells_dir / f"{key}.pkl"

    def store_cell(self, key: str, result: ScenarioResult | FailedResult
                   ) -> None:
        """Persist one finished cell (atomic; idempotent by construction)."""
        _atomic_write_bytes(self.cell_path(key),
                            pickle.dumps(result,
                                         protocol=pickle.HIGHEST_PROTOCOL))

    def load_cell(self, key: str) -> ScenarioResult | FailedResult | None:
        """The stored result for ``key``, or None when missing/torn."""
        try:
            with open(self.cell_path(key), "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        return value if isinstance(value, _RESULT_TYPES) else None

    def done_keys(self) -> set[str]:
        """Keys with a stored result file (existence check only -- cheap
        enough to poll; torn files are caught at load time)."""
        try:
            names = os.listdir(self.cells_dir)
        except OSError:
            return set()
        return {n[:-4] for n in names if n.endswith(".pkl")}

    # -- claims (work stealing) -------------------------------------------
    def claim_path(self, key: str) -> pathlib.Path:
        return self.claims_dir / f"{key}.json"

    def _lease_payload(self, generation: int) -> bytes:
        now = time.time()
        return json.dumps({
            "worker": self.worker, "pid": os.getpid(),
            "host": socket.gethostname(),
            "claimed_at": now, "expires_at": now + self.lease_s,
            "generation": generation,
        }).encode()

    def read_claim(self, key: str) -> dict | None:
        """The current claim for ``key``; a corrupt/torn claim file reads
        as an *expired* claim (stealable), never as a crash."""
        try:
            with open(self.claim_path(key)) as fh:
                claim = json.load(fh)
        except OSError:
            return None
        except ValueError:
            return {"worker": "?", "expires_at": 0.0, "generation": 0}
        if not isinstance(claim, dict):
            return {"worker": "?", "expires_at": 0.0, "generation": 0}
        return claim

    def try_claim(self, key: str) -> bool:
        """Attempt to claim ``key``; True when this worker now holds the
        lease.

        The lease payload is written to a private tmp file first and then
        hard-linked into place -- ``os.link`` fails with ``FileExistsError``
        when another worker won, and a winner's claim file is *born
        complete* (create-then-write would expose a momentarily-empty
        claim that a concurrent reader misreads as corrupt/expired and
        steals).  An expired lease is stolen with an atomic replace, so at
        most one stealer's lease survives.
        """
        path = self.claim_path(key)
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.claims_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(self._lease_payload(generation=1))
            try:
                os.link(tmp, path)
                return True
            except FileExistsError:
                pass
            claim = self.read_claim(key)
            if claim is None:
                # Claim vanished between the link attempt and the read
                # (holder finished and released); the cell is either done
                # or claimable on the next pass.
                return False
            if claim.get("worker") == self.worker:
                return True
            expires = claim.get("expires_at")
            if isinstance(expires, (int, float)) and time.time() < expires:
                return False  # live lease held elsewhere
            generation = claim.get("generation")
            generation = generation + 1 if isinstance(generation, int) else 1
            with open(tmp, "wb") as fh:
                fh.write(self._lease_payload(generation))
            os.replace(tmp, path)
            tmp = None
            return True
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def renew_claim(self, key: str) -> None:
        """Push this worker's lease deadline out (call between cells or
        from a long-running cell's supervisor)."""
        _atomic_write_bytes(self.claim_path(key), self._lease_payload(1))

    def release_claim(self, key: str) -> None:
        """Drop the claim (after the result is stored, or on interrupt so
        another worker can take over immediately)."""
        try:
            os.unlink(self.claim_path(key))
        except OSError:
            pass

    # -- per-worker journal ------------------------------------------------
    def journal(self) -> SweepJournal:
        """This worker's completion journal (successes *and* deterministic
        failures -- a campaign needs both to know a cell is settled)."""
        if self._journal is None:
            self._journal = SweepJournal(
                self.journal_dir / f"{self.worker}.pkl",
                expect=_RESULT_TYPES)
        return self._journal

    def journal_counts(self) -> dict[str, int]:
        """Completion count per worker journal -- the zero-duplicate
        witness: across all journals, every key appears exactly once."""
        counts: dict[str, int] = {}
        try:
            names = sorted(os.listdir(self.journal_dir))
        except OSError:
            return counts
        for name in names:
            if not name.endswith(".pkl"):
                continue
            journal = SweepJournal(self.journal_dir / name,
                                   expect=_RESULT_TYPES)
            counts[name[:-4]] = len(journal.load())
        return counts

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- status ------------------------------------------------------------
    def status(self, *, now: float | None = None) -> dict:
        """Point-in-time campaign progress from the filesystem alone.

        ``now`` is injectable so lease/heartbeat ages are deterministic in
        tests.  Besides the aggregate counts, the dict carries per-claim
        lease detail (``claims``: cell label, holder, lease age, expired)
        and per-worker heartbeat liveness (``heartbeats``: see
        :func:`repro.obs.live.read_heartbeats` /
        :func:`~repro.obs.live.heartbeat_state`).
        """
        from ..obs.live import heartbeat_state, read_heartbeats
        manifest = self.read_manifest()
        if manifest is None:
            raise FileNotFoundError(
                f"no campaign manifest in {self.root}; run "
                f"'repro campaign run' with a spec first")
        labels = {c["key"]: c["label"] for c in manifest["cells"]}
        keys = [c["key"] for c in manifest["cells"]]
        done = self.done_keys() & set(keys)
        failed = 0
        failed_kinds: list[str] = []
        for key in keys:
            if key not in done:
                continue
            res = self.load_cell(key)
            if res is None:
                done.discard(key)
            elif isinstance(res, FailedResult):
                failed += 1
                failed_kinds.append(res.kind)
        if now is None:
            now = time.time()
        claimed = expired = 0
        claims: list[dict] = []
        for key in keys:
            if key in done:
                continue
            claim = self.read_claim(key)
            if claim is None:
                continue
            expires = claim.get("expires_at")
            live = isinstance(expires, (int, float)) and now < expires
            claimed += live
            expired += not live
            claimed_at = claim.get("claimed_at")
            claims.append({
                "cell": labels[key],
                "worker": claim.get("worker", "?"),
                "age_s": (max(now - claimed_at, 0.0)
                          if isinstance(claimed_at, (int, float)) else 0.0),
                "expired": not live,
            })
        heartbeats = []
        for hb in read_heartbeats(self.heartbeat_dir):
            updated = hb.get("updated_at")
            heartbeats.append({
                "worker": hb.get("worker", "?"),
                "state": heartbeat_state(hb, now=now,
                                         expiry_s=self.lease_s),
                "age_s": (max(now - updated, 0.0)
                          if isinstance(updated, (int, float)) else 0.0),
                "claimed": hb.get("claimed"),
                "done": hb.get("done", 0),
                "failed": hb.get("failed", 0),
                "rate_per_s": hb.get("rate_per_s", 0.0),
                "note": hb.get("note"),
            })
        return {
            "name": manifest.get("name"),
            "total": len(keys),
            "done": len(done),
            "failed": failed,
            "failed_kinds": sorted(failed_kinds),
            "running": claimed,
            "stale_claims": expired,
            "pending": len(keys) - len(done) - claimed,
            "workers": self.journal_counts(),
            "claims": claims,
            "heartbeats": heartbeats,
        }
