"""Declarative experiment campaigns with work-stealing scale-out.

The layer every future study runs through (ROADMAP item 1): a campaign is
a scenario template crossed with named parameter axes and seed replicates
(:mod:`.spec`), executed in-memory or across N worker processes/hosts
coordinating solely through a shared campaign directory (:mod:`.exec`,
:mod:`.store`), and reduced to per-axis summary stats with failure rollups
(:mod:`.aggregate`).  Public names re-export from :mod:`repro.api`::

    from repro import Campaign, run_campaign, load_campaign

    run = run_campaign("spec.toml", dir="camp/", workers=4)
    print(run.report().render())
"""

from .aggregate import DEFAULT_METRICS, CampaignReport, aggregate
from .exec import CampaignRun, run_campaign, run_rows, worker_loop
from .spec import Campaign, CampaignCell, cell_key, load_campaign
from .store import CampaignStore

__all__ = ["Campaign", "CampaignCell", "CampaignReport", "CampaignRun",
           "CampaignStore", "DEFAULT_METRICS", "aggregate", "cell_key",
           "load_campaign", "run_campaign", "run_rows", "worker_loop"]
