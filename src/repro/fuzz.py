"""Seeded scenario fuzzer: the property-based safety net (``repro fuzz``).

Generates ``budget`` random-but-bounded :class:`ScenarioConfig`\\ s (random
transports, workloads, adaptation strategies, cross traffic and
:class:`FaultSchedule`\\ s) from one ``random.Random(seed)`` stream -- the
case list is a pure function of ``--seed`` -- and runs them through five
passes whose results must agree exactly:

A. **reference**: serial (``jobs=1``), invariants armed, fresh cache.
B. **parallel**: ``jobs=N``, uncached -- worker count must not change a
   single summary bit.
C. **cache-hit**: re-run against pass A's cache -- every case must hit,
   and a deserialised result must equal the fresh one.
D. **disarmed**: a sample of cases with ``invariants=False`` -- the
   checker must be purely observational.
E. **burst-flipped**: a sample of cases re-run with the burst speed tier
   toggled (``burst=not burst``) -- coalesced links must be bit-identical
   to per-packet links (~30% of generated cases arm ``burst`` natively,
   so both flip directions occur).

Every pass runs under the resilient batch path (crash isolation +
per-case timeout), so one insane generated case is a reported failure
row, not a dead fuzz run.  An incomplete scenario (``completed == 0``
at the time cap) is a legitimate outcome, not a failure -- the oracle is
*agreement*, not success.
"""

from __future__ import annotations

import random
import tempfile
from typing import Callable

from .experiments.common import ScenarioConfig, ScenarioResult
from .faults.schedule import (BandwidthRamp, Blackout, BurstyLoss, DelayRamp,
                              FaultSchedule, Jitter, LinkFlap)
from .middleware.adaptation import (FecAdaptation, FrequencyAdaptation,
                                    MarkingAdaptation, ResolutionAdaptation)
from .obs.compare import compare_summaries, compare_telemetry
from .obs.flight import first_divergence
from .obs.telemetry import TelemetryConfig
from .runner import FailedResult, ResultsCache, run_batch
from .transport.fec import FecConfig

__all__ = ["sample_config", "sample_faults", "run_fuzz", "FuzzReport"]

#: Transports the fuzzer draws from (all registry entries).
TRANSPORT_POOL = ("tcp", "rudp", "rudp_nocc", "rudp_reno", "iq",
                  "iq_nocond", "iq_nodiscard", "iq_noreinflate")

#: Adaptation factories must be module-level names: a lambda would make
#: the config unhashable (no cache key) and break pass C.
ADAPTATION_POOL = (ResolutionAdaptation, FrequencyAdaptation,
                   MarkingAdaptation, FecAdaptation)

#: Virtual-time ceiling per generated case; sized so even a stalled
#: scenario simulates in well under a wall-clock second.
CASE_TIME_CAP = 30.0


def sample_faults(rng: random.Random) -> FaultSchedule:
    """One to three bounded impairment phases with gaps between them."""
    phases = []
    t = rng.uniform(0.2, 1.0)
    for _ in range(rng.randint(1, 3)):
        dur = rng.uniform(0.2, 1.2)
        start, stop = t, t + dur
        kind = rng.randrange(6)
        direction = rng.choice(("fwd", "bwd", "both"))
        if kind == 0:
            phases.append(Blackout(start, stop, direction=direction))
        elif kind == 1:
            phases.append(LinkFlap(start, stop,
                                   down_s=rng.uniform(0.05, 0.3),
                                   up_s=rng.uniform(0.1, 0.5),
                                   direction=direction))
        elif kind == 2:
            phases.append(BurstyLoss(start, stop,
                                     p_gb=rng.uniform(0.005, 0.05),
                                     p_bg=rng.uniform(0.2, 0.6)))
        elif kind == 3:
            phases.append(BandwidthRamp(start, stop,
                                        to_bps=rng.choice((2e6, 5e6, 10e6)),
                                        steps=rng.randint(2, 8)))
        elif kind == 4:
            phases.append(DelayRamp(start, stop,
                                    to_s=rng.uniform(0.02, 0.2),
                                    steps=rng.randint(2, 8),
                                    direction=direction))
        else:
            phases.append(Jitter(start, stop,
                                 max_extra_s=rng.uniform(0.001, 0.01),
                                 p=rng.uniform(0.2, 1.0)))
        t = stop + rng.uniform(0.1, 0.6)
    return FaultSchedule(*phases)


def sample_config(rng: random.Random) -> ScenarioConfig:
    """One bounded random scenario (invariants armed)."""
    transport = rng.choice(TRANSPORT_POOL)
    adaptation = None
    if transport != "tcp" and rng.random() < 0.5:
        # TCP has no adaptation callbacks (rejected by construction).
        adaptation = rng.choice(ADAPTATION_POOL)
    kw = dict(
        transport=transport,
        workload=rng.choice(("greedy", "fixed_clocked", "trace_clocked")),
        adaptation=adaptation,
        n_frames=rng.randint(30, 120),
        frame_rate=rng.choice((5.0, 10.0, 20.0)),
        frame_multiplier=rng.choice((1000, 3000)),
        base_frame_size=rng.choice((700, 1400, 4200)),
        bottleneck_bps=rng.choice((4e6, 8e6, 20e6)),
        rtt_s=rng.choice((0.010, 0.030, 0.120)),
        queue_pkts=rng.choice((16, 32, 64)),
        loss_tolerance=rng.choice((None, 0.05, 0.2)),
        cbr_bps=rng.choice((0.0, 0.0, 1e6, 3e6)),
        seed=rng.randint(1, 1_000_000),
        time_cap=CASE_TIME_CAP,
        invariants=True,
    )
    if rng.random() < 0.4:
        kw["faults"] = sample_faults(rng)
    if rng.random() < 0.2:
        kw["tcp_cross_bytes"] = rng.choice((100_000, 400_000))
    if rng.random() < 0.15:
        kw["vbr_mean_bps"] = 1e6
    if rng.random() < 0.3:
        # Sampled telemetry rides the differential passes: series must be
        # identical across jobs=1/N and cache hit/miss like summaries are.
        kw["telemetry"] = TelemetryConfig(
            cadence_s=rng.choice((0.05, 0.1)))
    if rng.random() < 0.3:
        # Burst speed tier (repro.sim.batch): contractually bit-identical
        # to per-packet links, so burst cases flow through every
        # differential pass unchanged; pass E flips the flag explicitly.
        kw["burst"] = True
    if transport != "tcp" and rng.random() < 0.3:
        # FEC repair tier (repro.transport.fec): armed cases exercise
        # generation flush, recovery injection and the redundancy
        # controller through the same differential passes -- recovery is
        # a deterministic function of which datagrams arrive, so armed
        # summaries must agree across jobs/cache/burst too.
        k = rng.choice((4, 8))
        kw["fec"] = FecConfig(k=k, r=rng.randint(1, 2),
                              adaptive=rng.random() < 0.7)
        if rng.random() < 0.3:
            kw["frame_deadline_s"] = rng.choice((0.25, 0.5, 1.0))
    return ScenarioConfig(**kw)


class FuzzReport:
    """Outcome of one fuzz run: per-case failures and oracle mismatches."""

    def __init__(self, budget: int, seed: int):
        self.budget = budget
        self.seed = seed
        self.failures: list[str] = []    # cases that crashed/violated
        self.mismatches: list[str] = []  # differential-oracle breaches
        #: One forensics record per failure/mismatch: the flight-recorder
        #: dumps of both sides plus the first event id at which they
        #: diverge (``repro fuzz --forensics PATH`` serialises these).
        self.forensics: list[dict] = []
        self.cases_run = 0

    @property
    def ok(self) -> bool:
        return not self.failures and not self.mismatches

    def summary_line(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (f"fuzz {verdict}: {self.cases_run} cases (seed={self.seed}), "
                f"{len(self.failures)} failures, "
                f"{len(self.mismatches)} differential mismatches")


def _case_label(i: int, cfg: ScenarioConfig) -> str:
    extras = []
    if cfg.adaptation is not None:
        extras.append(cfg.adaptation.__name__)
    if cfg.faults is not None:
        extras.append("faults")
    tail = f" [{'+'.join(extras)}]" if extras else ""
    return (f"case {i}: {cfg.transport}/{cfg.workload}/"
            f"seed={cfg.seed}{tail}")


def _compare(report: FuzzReport, label: str, i: int, cfg: ScenarioConfig,
             ref, other) -> None:
    """Exact-agreement oracle between a reference result and a re-run.

    Any disagreement additionally files a forensics record: both sides'
    flight-recorder dumps and the first event id at which they diverge,
    which localises *where* two supposedly identical runs parted ways."""
    before = len(report.mismatches)
    _compare_inner(report, label, i, cfg, ref, other)
    if len(report.mismatches) > before:
        ref_fl = getattr(ref, "flight", None)
        other_fl = getattr(other, "flight", None)
        report.forensics.append({
            "label": label,
            "case": _case_label(i, cfg),
            "mismatches": report.mismatches[before:],
            "first_divergence": first_divergence(ref_fl, other_fl),
            "ref_flight": ref_fl,
            "other_flight": other_fl,
        })


def _compare_inner(report: FuzzReport, label: str, i: int,
                   cfg: ScenarioConfig, ref, other) -> None:
    ref_failed = isinstance(ref, FailedResult)
    other_failed = isinstance(other, FailedResult)
    if ref_failed != other_failed:
        report.mismatches.append(
            f"{label}: {_case_label(i, cfg)}: one pass failed "
            f"({'ref' if ref_failed else 'other'}) and the other did not")
        return
    if ref_failed:
        if ref.kind != other.kind:
            report.mismatches.append(
                f"{label}: {_case_label(i, cfg)}: failure kinds differ "
                f"({ref.kind} vs {other.kind})")
        return
    # Same diff machinery as ``repro compare`` with zero tolerance: the
    # fuzz oracle and the user-facing tool cannot disagree about equality.
    bad = [row["metric"]
           for row in compare_summaries(ref.summary, other.summary)
           if not row["within"]]
    if bad:
        report.mismatches.append(
            f"{label}: {_case_label(i, cfg)}: summaries differ in "
            f"{bad[:6]}")
    ref_tm = getattr(ref, "telemetry", None)
    other_tm = getattr(other, "telemetry", None)
    if (ref_tm is None) != (other_tm is None):
        report.mismatches.append(
            f"{label}: {_case_label(i, cfg)}: telemetry present on only "
            f"one side")
    elif ref_tm is not None:
        diverged = [row for row in compare_telemetry(ref_tm, other_tm)
                    if row["status"] != "identical"]
        if diverged:
            first = diverged[0]
            report.mismatches.append(
                f"{label}: {_case_label(i, cfg)}: telemetry series "
                f"{first['series']} {first['status']} "
                f"({first.get('first_divergence')})")
        if ref_tm.annotations != other_tm.annotations:
            report.mismatches.append(
                f"{label}: {_case_label(i, cfg)}: telemetry annotations "
                f"differ")


def run_fuzz(*, budget: int = 25, seed: int = 4, jobs: int = 2,
             timeout: float = 120.0,
             log: Callable[[str], None] = print) -> FuzzReport:
    """Run the four-pass differential fuzz; see module docstring."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    rng = random.Random(seed)
    cfgs = [sample_config(rng) for _ in range(budget)]
    report = FuzzReport(budget, seed)
    report.cases_run = budget

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        cache = ResultsCache(tmp)

        log(f"[fuzz] pass A: {budget} cases, serial, invariants armed")
        ref = run_batch(cfgs, jobs=1, cache=cache, on_error="capture",
                        timeout=timeout)
        for i, (cfg, res) in enumerate(zip(cfgs, ref)):
            if isinstance(res, FailedResult):
                report.failures.append(
                    f"{_case_label(i, cfg)}: {res.describe()}")
                report.forensics.append({
                    "label": "failure",
                    "case": _case_label(i, cfg),
                    "mismatches": [res.describe()],
                    "first_divergence": None,
                    "ref_flight": res.flight,
                    "other_flight": None,
                })

        log(f"[fuzz] pass B: jobs={jobs}, uncached (parallel determinism)")
        par = run_batch(cfgs, jobs=jobs, cache=False, on_error="capture",
                        timeout=timeout)
        for i, cfg in enumerate(cfgs):
            _compare(report, "jobs differential", i, cfg, ref[i], par[i])

        log("[fuzz] pass C: cache-hit vs fresh")
        hits_before = cache.hits
        again = run_batch(cfgs, jobs=1, cache=cache, on_error="capture",
                          timeout=timeout)
        for i, cfg in enumerate(cfgs):
            _compare(report, "cache differential", i, cfg, ref[i], again[i])
        expected_hits = sum(1 for r in ref
                            if isinstance(r, ScenarioResult))
        got_hits = cache.hits - hits_before
        if got_hits != expected_hits:
            report.mismatches.append(
                f"cache differential: expected {expected_hits} hits on "
                f"re-run, got {got_hits} (a failed case left an entry, or "
                f"a good one was not stored)")

        log("[fuzz] pass D: invariants disarmed sample (observer purity)")
        sample_idx = list(range(0, budget, max(budget // 8, 1)))
        disarmed = run_batch([cfgs[i].replace(invariants=False)
                              for i in sample_idx],
                             jobs=1, cache=False, on_error="capture",
                             timeout=timeout)
        for j, i in enumerate(sample_idx):
            _compare(report, "invariant differential", i, cfgs[i],
                     ref[i], disarmed[j])

        log("[fuzz] pass E: burst tier flipped sample (speed-tier purity)")
        burst_idx = list(range(1, budget, max(budget // 8, 1)))
        flipped = run_batch([cfgs[i].replace(burst=not cfgs[i].burst)
                             for i in burst_idx],
                            jobs=1, cache=False, on_error="capture",
                            timeout=timeout)
        for j, i in enumerate(burst_idx):
            _compare(report, "burst differential", i, cfgs[i],
                     ref[i], flipped[j])

    for line in report.failures + report.mismatches:
        log(f"[fuzz] FAIL {line}")
    log(f"[fuzz] {report.summary_line()}")
    return report
