"""Transport protocols: TCP baseline, RUDP, IQ-RUDP, and plain UDP."""

from .base import (DUP_ACK_THRESHOLD, FlowStats, WindowedReceiver,
                   WindowedSender, make_flow_id)
from .cc import CongestionControl, FixedWindowCC, RenoCC
from .fec import FecConfig, FecReceiver, FecSender, FecState
from .iq_rudp import IqRudpConnection
from .lda import LdaCC
from .reliability import (FullReliability, LossTolerantReliability,
                          ReliabilityPolicy)
from .rtt import RttEstimator
from .rudp import RudpConnection
from .seqspace import ReorderBuffer
from .tcp import TcpConnection
from .udp import UdpSender, UdpSink

__all__ = [
    "DUP_ACK_THRESHOLD", "FlowStats", "WindowedReceiver", "WindowedSender",
    "make_flow_id",
    "CongestionControl", "FixedWindowCC", "RenoCC", "LdaCC",
    "FecConfig", "FecReceiver", "FecSender", "FecState",
    "IqRudpConnection", "RudpConnection", "TcpConnection",
    "FullReliability", "LossTolerantReliability", "ReliabilityPolicy",
    "RttEstimator", "ReorderBuffer", "UdpSender", "UdpSink",
]
