"""Congestion-control strategies for the windowed transports.

The sender machinery in :mod:`repro.transport.base` is congestion-control
agnostic; the strategy object owns the window.  Three laws matter for the
paper:

* :class:`RenoCC` -- classic TCP AIMD with slow start and fast recovery, the
  baseline in Tables 1 and 2 and the cross-traffic competitor in Table 2.
* :class:`LdaCC` (in :mod:`repro.transport.lda`) -- the Loss-Delay
  Adjustment-style smooth law RUDP/IQ-RUDP use ("IQ-RUDP implements TCP-like
  congestion control using an algorithm resembling LDA", section 2).
* :class:`FixedWindowCC` -- congestion control *disabled*, used for the
  "application adaptation only" row of Table 1.

Coordination hooks enter through :meth:`CongestionControl.scale_window`: the
IQ-RUDP engine multiplies the window when the application reports a
resolution adaptation (sections 3.4/3.5).
"""

from __future__ import annotations

import abc

__all__ = ["CongestionControl", "RenoCC", "FixedWindowCC"]


class CongestionControl(abc.ABC):
    """Interface between a windowed sender and its congestion law.

    ``cwnd`` is measured in packets (the paper's RUDP window is packet
    based).  It is a float internally; the sender compares in-flight packet
    counts against ``int(cwnd)``.
    """

    #: Senders only schedule epoch ticks for laws that want them.
    needs_epochs = False

    def __init__(self, *, initial_cwnd: float = 2.0, min_cwnd: float = 1.0,
                 max_cwnd: float = 1 << 14):
        if not (0 < min_cwnd <= initial_cwnd <= max_cwnd):
            raise ValueError("need 0 < min_cwnd <= initial_cwnd <= max_cwnd")
        self.cwnd = float(initial_cwnd)
        self.min_cwnd = float(min_cwnd)
        self.max_cwnd = float(max_cwnd)
        # Optional ``observer(reason, old_cwnd, new_cwnd)``; notified on
        # *discrete* window events (loss responses, coordination rescales,
        # LDA epochs) -- never per ACK, which would swamp any trace.  The
        # sender wires this only when its simulator is being traced.
        self.observer = None

    def _notify(self, reason: str, old: float) -> None:
        obs = self.observer
        if obs is not None and self.cwnd != old:
            obs(reason, old, self.cwnd)

    # The observer is live wiring (a closure over the trace bus), not part
    # of the congestion state: results shipped between pool workers and the
    # parent pickle without it.
    def __getstate__(self):
        state = dict(self.__dict__)
        state["observer"] = None
        return state

    # -- event hooks ----------------------------------------------------
    @abc.abstractmethod
    def on_ack(self, newly_acked: int) -> None:
        """Cumulative ACK advanced by ``newly_acked`` packets."""

    def on_fast_retransmit(self, inflight: int) -> None:
        """Triple-duplicate-ACK loss detected (entering recovery)."""

    def on_dupack_in_recovery(self) -> None:
        """Further duplicate ACK while in recovery."""

    def on_recovery_exit(self) -> None:
        """Recovery point fully acknowledged."""

    def on_timeout(self, inflight: int) -> None:
        """Retransmission timer fired."""

    def on_epoch(self, sent: int, lost: int, rtt: float) -> None:
        """Per-RTT measurement epoch (only when ``needs_epochs``)."""

    # -- coordination hook -----------------------------------------------
    def scale_window(self, factor: float) -> float:
        """Multiply the window by ``factor`` (IQ-RUDP re-adaptation).

        The factor is clamped to [1/4, 4] per event so a mis-reported
        application attribute cannot blow up or collapse the window in one
        step; the resulting window stays within [min_cwnd, max_cwnd].
        Returns the new window.
        """
        factor = min(max(factor, 0.25), 4.0)
        old = self.cwnd
        self.cwnd = min(max(self.cwnd * factor, self.min_cwnd), self.max_cwnd)
        self._notify("coord_rescale", old)
        return self.cwnd

    def _clamp(self) -> None:
        self.cwnd = min(max(self.cwnd, self.min_cwnd), self.max_cwnd)

    def telemetry_probe(self) -> dict[str, float]:
        """Read-only window state for the telemetry recorder; laws with
        more state (see :class:`~repro.transport.lda.LdaCC`) extend it."""
        return {"cwnd": self.cwnd}

    def bounds_violation(self) -> str | None:
        """Window-bounds invariant: ``min_cwnd <= cwnd <= max_cwnd`` (with
        float slack).  Returns a description, or None when within bounds."""
        eps = 1e-9
        if not (self.min_cwnd - eps <= self.cwnd <= self.max_cwnd + eps):
            return (f"cwnd {self.cwnd!r} outside "
                    f"[{self.min_cwnd!r}, {self.max_cwnd!r}]")
        return None


class RenoCC(CongestionControl):
    """TCP Reno: slow start, congestion avoidance, fast retransmit/recovery.

    The implementation follows RFC 5681 at packet granularity (as in the
    ns-2 lineage of simulators): cwnd += 1 per ACK in slow start,
    += 1/cwnd per ACK in congestion avoidance, halved on fast retransmit
    with the classic +3/+1 inflation during recovery, and collapsed to
    1 MSS on timeout.
    """

    def __init__(self, *, initial_cwnd: float = 2.0,
                 initial_ssthresh: float = 64.0, **kw):
        super().__init__(initial_cwnd=initial_cwnd, **kw)
        self.ssthresh = float(initial_ssthresh)

    def on_ack(self, newly_acked: int) -> None:
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / self.cwnd
        self._clamp()

    def on_fast_retransmit(self, inflight: int) -> None:
        old = self.cwnd
        self.ssthresh = max(inflight / 2.0, 2.0)
        self.cwnd = self.ssthresh + 3.0
        self._clamp()
        self._notify("fast_retransmit", old)

    def on_dupack_in_recovery(self) -> None:
        self.cwnd += 1.0
        self._clamp()

    def on_recovery_exit(self) -> None:
        old = self.cwnd
        self.cwnd = self.ssthresh
        self._clamp()
        self._notify("recovery_exit", old)

    def on_timeout(self, inflight: int) -> None:
        old = self.cwnd
        self.ssthresh = max(inflight / 2.0, 2.0)
        self.cwnd = self.min_cwnd
        self._clamp()
        self._notify("timeout", old)


class FixedWindowCC(CongestionControl):
    """Constant window: adaptive congestion control disabled.

    Table 1's "application adaptation only" row instruments IQ-RUDP "to
    disable its adaptive congestion window algorithm, but still provide
    performance metrics to the application"; this law is that switch.
    """

    def __init__(self, window: float = 64.0, **kw):
        super().__init__(initial_cwnd=window, min_cwnd=window,
                         max_cwnd=window, **kw)

    def on_ack(self, newly_acked: int) -> None:  # noqa: D102 - fixed law
        pass

    def scale_window(self, factor: float) -> float:
        return self.cwnd  # immutable by construction
