"""Plain (unreliable) UDP endpoints.

Used for the experiments' cross traffic: the "iperf" constant-bit-rate
source and the MBone-driven VBR source both send over this.  No ACKs, no
retransmission -- losses simply vanish at the bottleneck, which is what makes
UDP cross traffic so aggressive against the responsive flows under test.
"""

from __future__ import annotations

from typing import Callable

from ..sim.engine import Simulator
from ..sim.node import Host
from ..sim.packet import Packet, PacketKind
from .base import make_flow_id

__all__ = ["UdpSender", "UdpSink"]


class UdpSender:
    """Datagram sender; frames above the MSS are segmented."""

    def __init__(self, sim: Simulator, host: Host, *, port: int,
                 peer_addr: int, peer_port: int, mss: int = 1400,
                 flow_id: int | None = None):
        self.sim = sim
        self.host = host
        self.port = port
        self.peer_addr = peer_addr
        self.peer_port = peer_port
        self.mss = mss
        self.flow_id = flow_id if flow_id is not None else make_flow_id(sim)
        self.packets_sent = 0
        self.bytes_sent = 0
        self._seq = 0
        host.bind(port, self)

    def send(self, size: int, *, frame_id: int = -1) -> int:
        """Emit one datagram of ``size`` bytes; returns segments sent."""
        if size <= 0:
            raise ValueError("datagram size must be positive")
        now = self.sim.now
        nseg = (size + self.mss - 1) // self.mss
        remaining = size
        for i in range(nseg):
            seg = min(self.mss, remaining)
            remaining -= seg
            pkt = Packet(flow_id=self.flow_id, kind=PacketKind.DATA,
                         seq=self._seq, size=seg, src=self.host.address,
                         dst=self.peer_addr, sport=self.port,
                         dport=self.peer_port, created_at=now,
                         frame_id=frame_id)
            pkt.last_of_frame = (i == nseg - 1)
            self._seq += 1
            self.host.send(pkt)
            self.packets_sent += 1
            self.bytes_sent += seg
        return nseg

    def receive(self, pkt: Packet) -> None:
        pass  # one-way flow; nothing comes back


class UdpSink:
    """Counts received datagrams; estimates loss from sequence gaps."""

    def __init__(self, sim: Simulator, host: Host, *, port: int,
                 flow_id: int | None = None,
                 on_deliver: Callable[[Packet, float], None] | None = None):
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.on_deliver = on_deliver
        self.packets_received = 0
        self.bytes_received = 0
        self.highest_seq = -1
        host.bind(port, self)

    def receive(self, pkt: Packet) -> None:
        if self.flow_id is not None and pkt.flow_id != self.flow_id:
            return
        self.packets_received += 1
        self.bytes_received += pkt.size
        if pkt.seq > self.highest_seq:
            self.highest_seq = pkt.seq
        if self.on_deliver is not None:
            self.on_deliver(pkt, self.sim.now)

    def receive_burst(self, pkts: list[Packet], times: list[float]) -> None:
        """Array-level delivery: equivalent to ``receive(pkts[i])`` with the
        clock at ``times[i]``, for every ``i`` in order.

        Advertising this method is a contract with
        :class:`repro.sim.batch.BatchLink`: a terminal sink schedules no
        events and reads nothing but its arguments, so a whole back-to-back
        burst can be delivered in one engine step.
        """
        if self.flow_id is not None:
            fid = self.flow_id
            kept = [i for i, p in enumerate(pkts) if p.flow_id == fid]
            if len(kept) != len(pkts):
                pkts = [pkts[i] for i in kept]
                times = [times[i] for i in kept]
            if not pkts:
                return
        self.packets_received += len(pkts)
        self.bytes_received += sum(p.size for p in pkts)
        hi = self.highest_seq
        for p in pkts:
            if p.seq > hi:
                hi = p.seq
        self.highest_seq = hi
        cb = self.on_deliver
        if cb is not None:
            for p, t in zip(pkts, times):
                cb(p, t)

    @property
    def loss_ratio(self) -> float:
        """Fraction of the sequence space never seen (in-order estimate)."""
        expected = self.highest_seq + 1
        if expected <= 0:
            return 0.0
        return max(0.0, 1.0 - self.packets_received / expected)
