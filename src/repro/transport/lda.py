"""Loss-Delay Adjustment style congestion control for RUDP/IQ-RUDP.

Paper section 2: "IQ-RUDP implements TCP-like congestion control using an
algorithm resembling Loss-Delay Adjustment (LDA)" (Sisalem & Schulzrinne,
NOSSDAV'98).  LDA is epoch based: once per round-trip the sender looks at the
loss ratio observed during the epoch and

* with no loss, increases its window additively (one packet per epoch --
  "the average rate of increase is the same for both protocols", Table 2
  discussion), and
* with loss, decreases *proportionally to the measured loss ratio* instead
  of TCP's blind halving.

The proportional decrease is what gives the paper's IQ-RUDP its "smoother
changes of congestion window" and hence the better delay/jitter in Table 1.
An initial doubling phase mirrors slow start so RUDP is not starved while a
competing TCP ramps up.
"""

from __future__ import annotations

from .cc import CongestionControl

__all__ = ["LdaCC"]


class LdaCC(CongestionControl):
    """Epoch-based loss-proportional window law.

    Parameters
    ----------
    additive_increase : packets added per loss-free epoch.
    loss_sensitivity : multiplier on the epoch loss ratio when decreasing;
        1.0 reproduces "reduce by the loss fraction".
    max_decrease : cap on the per-epoch multiplicative reduction so a burst
        of drop-tail losses cannot zero the window (LDA clamps similarly).
    """

    needs_epochs = True

    #: Epoch floor: LDA adjusts on feedback-report intervals (the original
    #: uses RTCP reports, i.e. a seconds timescale), not per-RTT like TCP's
    #: ACK clock.  The sender uses max(RTT, min_epoch_s) between epochs.
    #: This slow adjustment cadence is load-bearing for the paper's
    #: over-reaction results: window recovery after a cut takes seconds,
    #: which is exactly the gap IQ-RUDP's immediate re-inflation closes.
    DEFAULT_MIN_EPOCH_S = 1.0

    def __init__(self, *, initial_cwnd: float = 2.0,
                 initial_ssthresh: float = 64.0,
                 additive_increase: float = 1.0,
                 loss_sensitivity: float = 1.0,
                 max_decrease: float = 0.5,
                 min_epoch_s: float | None = None,
                 min_cwnd: float = 2.0, **kw):
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=min_cwnd, **kw)
        self.ssthresh = float(initial_ssthresh)
        self.additive_increase = additive_increase
        self.loss_sensitivity = loss_sensitivity
        self.max_decrease = max_decrease
        self.min_epoch_s = (min_epoch_s if min_epoch_s is not None
                            else self.DEFAULT_MIN_EPOCH_S)
        self.epochs = 0
        self.loss_epochs = 0
        # A loss burst straddles epochs (detection lags ~1 RTT), so after a
        # decrease one epoch of losses is attributed to the same event and
        # does not compound the cut -- the LDA analogue of TCP's
        # one-reduction-per-window rule.
        self._cooldown = 0

    # ------------------------------------------------------------------
    def on_ack(self, newly_acked: int) -> None:
        # Window changes only at epoch boundaries; ACKs just clock data out.
        pass

    def on_epoch(self, sent: int, lost: int, rtt: float) -> None:
        self.epochs += 1
        if sent <= 0:
            return
        old = self.cwnd
        loss_ratio = lost / sent
        if lost == 0:
            self._cooldown = 0
            if self.cwnd < self.ssthresh:
                self.cwnd *= 2.0  # startup ramp, slow-start equivalent
            else:
                self.cwnd += self.additive_increase
        elif self._cooldown > 0:
            self._cooldown -= 1
        else:
            self.loss_epochs += 1
            decrease = min(self.loss_sensitivity * loss_ratio,
                           self.max_decrease)
            self.cwnd *= (1.0 - decrease)
            self._cooldown = 1
            # Leaving startup: future growth is additive.
            self.ssthresh = min(self.ssthresh, self.cwnd)
        self._clamp()
        self._notify("epoch_decrease" if lost else "epoch_increase", old)

    def on_fast_retransmit(self, inflight: int) -> None:
        # Loss is accounted at the epoch boundary; no immediate cut.  This is
        # precisely the "smoother" reaction the paper contrasts with TCP.
        self.ssthresh = min(self.ssthresh, self.cwnd)

    def telemetry_probe(self) -> dict[str, float]:
        probe = super().telemetry_probe()
        probe["epochs"] = float(self.epochs)
        probe["loss_epochs"] = float(self.loss_epochs)
        return probe

    def on_timeout(self, inflight: int) -> None:
        # A timeout means the ACK clock stalled -- collapse and re-enter the
        # doubling ramp toward half the old window (slow-start analogue), so
        # the flow recovers in a few epochs instead of crawling additively.
        old = self.cwnd
        self.ssthresh = max(self.cwnd / 2.0, 4.0)
        self.cwnd = self.min_cwnd
        self._cooldown = 1
        self._clamp()
        self._notify("timeout", old)
