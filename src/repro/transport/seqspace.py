"""Sequence-number bookkeeping helpers.

Python integers never wrap, so unlike a C transport we need no modular
arithmetic; what we do need is tidy bookkeeping of the receive window: which
sequence numbers have arrived out of order, and how far the cumulative point
can advance.  :class:`ReorderBuffer` centralises that so both TCP and RUDP
receivers share one audited implementation.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["ReorderBuffer"]


class ReorderBuffer:
    """Out-of-order packet store keyed by sequence number.

    Tracks ``rcv_nxt`` (the next in-order sequence expected).  ``offer``
    classifies an arriving sequence number; ``drain`` yields the stored
    entries that have become in-order after ``rcv_nxt`` advances.
    """

    def __init__(self, start: int = 0, *, max_buffered: int = 1 << 16):
        self.rcv_nxt = start
        self._buf: dict[int, object] = {}
        self.max_buffered = max_buffered
        self.duplicates = 0

    def __len__(self) -> int:
        return len(self._buf)

    def offer(self, seq: int, item: object) -> str:
        """Classify an arrival: ``"inorder"``, ``"buffered"`` or ``"dup"``.

        ``"inorder"`` means ``seq == rcv_nxt``; the caller consumes *item*
        directly, advances with :meth:`advance`, then drains.
        """
        if seq < self.rcv_nxt or seq in self._buf:
            self.duplicates += 1
            return "dup"
        if seq == self.rcv_nxt:
            return "inorder"
        if len(self._buf) >= self.max_buffered:
            # Receive-window overflow: treat as duplicate/ignored.  With the
            # advertised windows used in the experiments this cannot trigger,
            # but the guard keeps memory bounded under failure injection.
            self.duplicates += 1
            return "dup"
        self._buf[seq] = item
        return "buffered"

    def advance(self) -> None:
        """Move ``rcv_nxt`` past a consumed in-order sequence number."""
        self.rcv_nxt += 1

    def drain(self) -> Iterator[tuple[int, object]]:
        """Yield (seq, item) pairs that are now in-order, advancing as it
        goes.  Stops at the first remaining gap."""
        while self.rcv_nxt in self._buf:
            item = self._buf.pop(self.rcv_nxt)
            seq = self.rcv_nxt
            self.rcv_nxt += 1
            yield seq, item

    def contains(self, seq: int) -> bool:
        """True once *seq* has been consumed or sits buffered out of order
        (the FEC decoder's membership test for repair coverage)."""
        return seq < self.rcv_nxt or seq in self._buf

    def buffered_seqs(self) -> list[int]:
        """Sorted out-of-order sequence numbers currently held (EACK body)."""
        return sorted(self._buf)

    def missing_before(self, seq: int) -> list[int]:
        """Sequence numbers in [rcv_nxt, seq) not yet buffered -- the holes
        a loss-tolerant receiver would need filled or skipped."""
        return [s for s in range(self.rcv_nxt, seq) if s not in self._buf]
