"""Forward-error-correction repair tier for the RUDP-family transports.

The paper's reliability story is pure ARQ: lost packets are retransmitted
(or skipped, under adaptive reliability), which costs at least one
retransmission round trip per loss and head-of-line stalls the window
under bursty wire loss.  FlEC (PAPERS.md) makes the modern argument that
reliability mechanisms should be *application-tailored*; this module adds
the coding half of that trade-off as a strictly additive layer:

* The sender groups its first-transmission data segments into
  *generations* of ``k`` packets and emits ``r`` XOR *repair* segments per
  generation.  Repairs are **interleaved**: repair ``i`` of a generation
  covers members ``i, i+r, i+2r, ...``, so a contiguous burst of up to
  ``r`` in-generation losses (the Gilbert-Elliott shape the dynamics
  sweeps inject) hits ``r`` distinct stripes and every stripe can still
  recover its single missing member.  In general each stripe recovers at
  most one loss -- the classic single-parity limit, stated honestly.
* The receiver reconstructs a stripe's one missing segment from the
  repair's carried member metadata and injects the rebuilt packet through
  the normal receive path, so delivery logs, ACK generation, spans and
  the sender's window all observe an ordinary (if synthesised) arrival --
  no retransmission round trip was paid.
* Stripes that cannot be repaired immediately (two or more members
  missing) are held, bounded, and re-checked as ARQ retransmissions fill
  holes -- compound recovery -- and the existing ARQ/skip machinery
  remains the correctness backstop throughout: FEC disarmed or
  overwhelmed degenerates to exactly the pre-FEC protocol.

Payload bytes are not simulated (the simulator carries sizes, not data),
so the "XOR" here is the bookkeeping that a real coder would need anyway:
which sequence numbers a repair covers and each member's full header
metadata, which is exactly what reconstruction must reproduce.  A repair
segment's wire size is the largest covered member's size (a real XOR
parity is as long as the longest input), so redundancy bandwidth is
charged faithfully.

Determinism: the coder draws no randomness and keys everything on
sequence numbers and the simulation clock, so armed runs are
reproducible and disarmed runs execute only ``is None`` guards.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..sim.packet import Packet, PacketKind

__all__ = ["FecConfig", "FecState", "FecSender", "FecReceiver"]


class FecConfig:
    """Coding-rate knobs; a :class:`~repro.experiments.common.ScenarioConfig`
    field value, so instances are picklable with a stable ``repr`` (the
    runner's ``config_fingerprint`` hashes config fields via ``repr``).

    Parameters
    ----------
    k : data segments per generation (the block length).
    r : repair segments per generation at rest (the base redundancy).
    r_max : ceiling the coordinator may raise redundancy to under loss
        (``None`` defaults to ``min(k - 1, max(r, 2))``).
    adaptive : when True the IQ coordinator re-adapts ``r`` from loss and
        stall telemetry; False pins the configured rate.
    """

    def __init__(self, *, k: int = 8, r: int = 1, r_max: int | None = None,
                 adaptive: bool = True):
        k = int(k)
        r = int(r)
        if not 2 <= k <= 64:
            raise ValueError(f"fec k must be in [2, 64], got {k}")
        if not 1 <= r < k:
            raise ValueError(f"fec r must be in [1, k), got r={r} k={k}")
        if r_max is None:
            r_max = min(k - 1, max(r, 2))
        r_max = int(r_max)
        if not r <= r_max < k:
            raise ValueError(f"fec r_max must be in [r, k), got "
                             f"r_max={r_max} r={r} k={k}")
        self.k = k
        self.r = r
        self.r_max = r_max
        self.adaptive = bool(adaptive)

    @classmethod
    def parse(cls, value: Any) -> "FecConfig | None":
        """Coerce a config-field value into a :class:`FecConfig`.

        Accepts ``None``/``"none"``/``"off"`` (disarmed), an existing
        instance, a mapping of constructor kwargs, or the compact string
        dialect ``"K/R"`` / ``"K/R/RMAX"`` (append ``"/static"`` to pin
        the rate) used by ``--set fec=8/2`` and campaign TOML ``fec``
        fields.
        """
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls(**value)
        if isinstance(value, str):
            text = value.strip().lower()
            if text in ("", "none", "off"):
                return None
            parts = text.split("/")
            adaptive = True
            if parts and parts[-1] in ("static", "adaptive"):
                adaptive = parts.pop() == "adaptive"
            try:
                nums = [int(p) for p in parts]
            except ValueError:
                nums = []
            if len(nums) == 2:
                return cls(k=nums[0], r=nums[1], adaptive=adaptive)
            if len(nums) == 3:
                return cls(k=nums[0], r=nums[1], r_max=nums[2],
                           adaptive=adaptive)
            raise ValueError(
                f"cannot parse fec spec {value!r}: expected 'none', 'K/R' "
                f"or 'K/R/RMAX' (optionally '/static', e.g. '8/2' or "
                f"'8/1/3/static'), a mapping of FecConfig fields, or a "
                f"FecConfig instance")
        raise TypeError(f"fec must be a FecConfig, spec string, mapping or "
                        f"None, got {type(value).__name__}")

    def __repr__(self) -> str:
        return (f"FecConfig(k={self.k!r}, r={self.r!r}, "
                f"r_max={self.r_max!r}, adaptive={self.adaptive!r})")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FecConfig)
                and self.__dict__ == other.__dict__)

    def __hash__(self) -> int:
        return hash((self.k, self.r, self.r_max, self.adaptive))


class FecState:
    """Shared coder state and lifetime counters for one connection.

    One object referenced by both endpoints' coders -- the same
    co-located-endpoint idiom the reliability policy already uses (a real
    implementation would piggyback the handful of shared scalars on ACKs).
    ``r`` is the *live* redundancy; the coordinator moves it within
    ``[cfg.r, cfg.r_max]`` through :meth:`set_redundancy`.
    """

    __slots__ = ("cfg", "r", "data_enrolled", "repairs_sent",
                 "repair_bytes", "recovered", "unrecoverable",
                 "repairs_unused", "pending_evicted")

    def __init__(self, cfg: FecConfig):
        self.cfg = cfg
        self.r = cfg.r
        self.data_enrolled = 0    # first-transmission segments coded over
        self.repairs_sent = 0     # repair segments emitted
        self.repair_bytes = 0     # payload bytes of emitted repairs
        self.recovered = 0        # segments rebuilt without retransmission
        self.unrecoverable = 0    # stripes that arrived >1 member short
        self.repairs_unused = 0   # repairs whose stripe was already whole
        self.pending_evicted = 0  # held stripes dropped at the bound

    def set_redundancy(self, r: int) -> int:
        """Clamp ``r`` into ``[cfg.r, cfg.r_max]`` and apply; returns the
        effective value (takes effect at the next generation flush)."""
        self.r = max(self.cfg.r, min(int(r), self.cfg.r_max))
        return self.r

    def conservation_violation(self) -> str | None:
        """Segment-accounting law for the invariant checker: pure reads."""
        if self.recovered > self.repairs_sent:
            return (f"fec accounting: recovered {self.recovered} segments "
                    f"from only {self.repairs_sent} repairs (each repair "
                    f"can rebuild at most one member)")
        if self.repairs_unused + self.unrecoverable > self.repairs_sent:
            return (f"fec accounting: classified outcomes "
                    f"(unused={self.repairs_unused} + "
                    f"unrecoverable={self.unrecoverable}) exceed repairs "
                    f"sent ({self.repairs_sent})")
        if self.r < self.cfg.r or self.r > self.cfg.r_max:
            return (f"fec redundancy {self.r} outside configured "
                    f"[{self.cfg.r}, {self.cfg.r_max}]")
        return None


class FecSender:
    """Sender-side coder: accumulates first transmissions, emits repairs.

    Driven from ``WindowedSender._pump`` (one ``on_data`` per first
    transmission -- retransmissions are ARQ's business) and ``finish()``
    (flush of the final partial generation).
    """

    def __init__(self, sender, state: FecState):
        self.sender = sender
        self.state = state
        self._members: list[tuple] = []
        self._gen_id = 0

    # ------------------------------------------------------------------
    def on_data(self, pkt: Packet) -> None:
        """Enroll a first-transmission data segment into the open
        generation; flushes when the generation reaches ``k``."""
        self.state.data_enrolled += 1
        self._members.append((pkt.seq, pkt.size, pkt.frame_id, pkt.marked,
                              pkt.tagged, pkt.last_of_frame, pkt.created_at))
        if len(self._members) >= self.state.cfg.k:
            self._flush_generation()

    def flush(self) -> None:
        """Flush a partial final generation (called from ``finish()``).
        A lone member still gets a repair: it protects the transfer tail,
        where an ARQ recovery is at its most expensive (no dup-ACK clock)."""
        if self._members:
            self._flush_generation()

    # ------------------------------------------------------------------
    def _flush_generation(self) -> None:
        members = self._members
        self._members = []
        gen_id = self._gen_id
        self._gen_id += 1
        snd = self.sender
        n_repair = min(self.state.r, len(members))
        for stripe in range(n_repair):
            covered = tuple(members[stripe::n_repair])
            self._send_repair(gen_id, stripe, covered)
        fl = snd.flight
        if fl is not None:
            fl.note("transport", "FEC_GEN", flow=snd.flow_id, gen=gen_id,
                    k=len(members), r=n_repair)

    def _send_repair(self, gen_id: int, stripe: int, covered: tuple) -> None:
        snd = self.sender
        state = self.state
        # An XOR parity is as long as its longest input.
        size = max(m[1] for m in covered)
        pkt = Packet(flow_id=snd.flow_id, kind=PacketKind.DATA, size=size,
                     src=snd.host.address, dst=snd.peer_addr,
                     sport=snd.port, dport=snd.peer_port,
                     created_at=snd.sim.now)
        pkt.frame_id = -1
        pkt.fec = (gen_id, stripe, covered)
        pkt.sent_at = snd.sim.now
        snd.host.send(pkt)
        state.repairs_sent += 1
        state.repair_bytes += size
        tr = snd.trace
        if tr.enabled:
            from ..obs.events import FEC_REPAIR
            tr.emit("transport", FEC_REPAIR, flow=snd.flow_id, gen=gen_id,
                    stripe=stripe, size=size,
                    covered=[m[0] for m in covered])


class FecReceiver:
    """Receiver-side decoder: rebuilds a stripe's single missing member.

    Driven from ``WindowedReceiver.receive``: repairs route here instead
    of the reorder buffer, and every ordinary data arrival re-checks the
    held stripes (compound ARQ+FEC recovery).
    """

    #: Bound on held unrecoverable stripes; beyond it the oldest is
    #: evicted (ARQ remains the backstop for its members).
    PENDING_LIMIT = 128

    def __init__(self, receiver, state: FecState):
        self.receiver = receiver
        self.state = state
        self.pending: list[tuple] = []   # held (gen_id, stripe, covered)
        self._busy = False

    # ------------------------------------------------------------------
    def _present(self, seq: int) -> bool:
        """A covered sequence number needs no rebuild once the receiver
        has consumed or buffered it (skips included -- the sender already
        abandoned that payload)."""
        reorder = self.receiver.reorder
        return seq < reorder.rcv_nxt or reorder.contains(seq)

    def _missing(self, covered: tuple) -> list[tuple]:
        return [m for m in covered if not self._present(m[0])]

    # ------------------------------------------------------------------
    def on_repair(self, pkt: Packet) -> None:
        """A repair segment arrived; recover, hold, or discard it."""
        gen_id, stripe, covered = pkt.fec
        missing = self._missing(covered)
        if not missing:
            self.state.repairs_unused += 1
            return
        if len(missing) == 1:
            self._recover(gen_id, stripe, missing[0])
            self.retry_pending()
            return
        # Beyond single-parity reach right now: hold for compound
        # recovery as ARQ fills holes; count the shortfall once.
        self.state.unrecoverable += 1
        fl = getattr(self.receiver, "flight", None)
        if fl is not None:
            fl.note("transport", "FEC_SHORT", flow=self.receiver.flow_id,
                    gen=gen_id, stripe=stripe, missing=len(missing))
        if len(self.pending) >= self.PENDING_LIMIT:
            self.pending.pop(0)
            self.state.pending_evicted += 1
        self.pending.append((gen_id, stripe, covered))

    def on_progress(self) -> None:
        """An ordinary data arrival advanced the receive state; re-check
        held stripes (called from the receive path only while armed)."""
        if self.pending:
            self.retry_pending()

    def retry_pending(self) -> None:
        """Recover every held stripe that is now one member short.  Each
        rebuild can unlock further stripes, so iterate to a fixed point;
        re-entrant calls (a rebuild re-enters the receive path) fold into
        the outer loop."""
        if self._busy:
            return
        self._busy = True
        try:
            progress = True
            while progress:
                progress = False
                still: list[tuple] = []
                for gen_id, stripe, covered in self.pending:
                    missing = self._missing(covered)
                    if not missing:
                        continue  # ARQ finished the stripe; drop the hold
                    if len(missing) == 1:
                        self._recover(gen_id, stripe, missing[0])
                        progress = True
                    else:
                        still.append((gen_id, stripe, covered))
                self.pending = still
        finally:
            self._busy = False

    # ------------------------------------------------------------------
    def _recover(self, gen_id: int, stripe: int, member: tuple) -> None:
        """Rebuild one missing member and inject it through the normal
        receive path (delivery log, spans, ACK generation and the sender's
        window all see an ordinary arrival)."""
        seq, size, frame_id, marked, tagged, last_of_frame, created_at \
            = member
        rcv = self.receiver
        pkt = Packet(flow_id=rcv.flow_id, kind=PacketKind.DATA, seq=seq,
                     size=size, src=rcv.peer_addr, dst=rcv.host.address,
                     sport=rcv.peer_port, dport=rcv.port,
                     created_at=created_at, marked=marked, tagged=tagged,
                     frame_id=frame_id)
        pkt.last_of_frame = last_of_frame
        pkt.sent_at = rcv.sim.now
        self.state.recovered += 1
        sp = rcv.spans
        if sp is not None:
            sp.on_recover(pkt)
        fl = getattr(rcv, "flight", None)
        if fl is not None:
            fl.note("transport", "FEC_RECOVERED", flow=rcv.flow_id,
                    gen=gen_id, stripe=stripe, pkt=seq)
        tr = getattr(rcv.sim, "bus", None)
        if tr is not None and tr.enabled:
            from ..obs.events import FEC_RECOVERED
            tr.emit("transport", FEC_RECOVERED, flow=rcv.flow_id,
                    gen=gen_id, stripe=stripe, pkt=seq, size=size)
        rcv.receive(pkt)
