"""Round-trip-time estimation (RFC 6298 style) with Karn's algorithm.

Shared by TCP and RUDP senders.  The retransmission timeout is the safety net
under both congestion-control laws; the smoothed RTT also feeds the LDA epoch
length and the delay metric IQ-RUDP exposes to applications.
"""

from __future__ import annotations

__all__ = ["RttEstimator"]


class RttEstimator:
    """SRTT/RTTVAR tracker producing a bounded retransmission timeout.

    ``min_rto`` defaults to 200 ms (modern-stack flavour; the RFC's 1 s floor
    would dominate the paper's 30 ms-RTT experiments and mask the effects
    being measured).
    """

    ALPHA = 0.125
    BETA = 0.25
    K = 4.0

    def __init__(self, *, min_rto: float = 0.2, max_rto: float = 5.0,
                 initial_rto: float = 1.0):
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError("need 0 < min_rto <= max_rto")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: float | None = None
        self.rttvar = 0.0
        self._rto = initial_rto
        self._backoff = 1.0
        self.samples = 0

    # ------------------------------------------------------------------
    def sample(self, rtt: float) -> None:
        """Feed one measurement from a never-retransmitted segment (Karn)."""
        if rtt < 0:
            raise ValueError("negative RTT sample")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = ((1 - self.BETA) * self.rttvar
                           + self.BETA * abs(self.srtt - rtt))
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self._rto = self.srtt + self.K * self.rttvar
        self._backoff = 1.0
        self.samples += 1

    def backoff(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self._backoff = min(self._backoff * 2.0, 16.0)

    @property
    def rto(self) -> float:
        """Current retransmission timeout, clamped to [min_rto, max_rto]."""
        return min(max(self._rto * self._backoff, self.min_rto), self.max_rto)

    @property
    def rtt(self) -> float:
        """Best RTT estimate (initial guess 0.1 s before any sample)."""
        return self.srtt if self.srtt is not None else 0.1
